"""The verification daemon: warm, concurrent, incremental, overload-safe.

One process hosts everything the prover keeps warm — the intern table,
the compiled proof plans, the symbolic memo caches and a shared
content-addressed proof store — and serves verification over a socket.
Clients hold *sessions*: a client submits kernel source, the daemon
parses it, computes fragment-level dependency digests, and the engine's
fragment-grained search re-proves only the obligations whose content
keys changed since that session's last submission; everything else is
served from the store after checker revalidation.

Concurrency model (deliberate, and load-bearing for soundness):

* one **connection thread per client** does framing I/O only — it never
  touches the intern table or any symbolic state;
* one **prover thread** owns all parsing and verification.  The
  symbolic layer (intern table, memo caches, compiled plans) is
  process-global and not thread-safe; funnelling every submission
  through one thread makes that a non-issue and gives request
  *batching* for free: the prover drains whatever is queued, groups
  identical sources, and coalesces them into one ``verify_all`` pass
  whose verdict fans out to every waiting session
  (``serve.batch.coalesced``);
* between batches — a quiescent point by construction — the
  :class:`~repro.serve.housekeeping.CacheGovernor` may start a new
  cache generation, so thousands of unrelated kernels cannot grow the
  process without bound.

Resilience model (the PR 9 layer):

* **admission control** (:mod:`repro.serve.admission`): the backlog of
  admitted-but-unanswered submissions is bounded daemon-wide and
  per-session; past either cap a submit is *shed* with an immediate
  terminal ``error``/``overloaded`` frame carrying ``retry_after_ms``,
  so a flood cannot grow ``_submissions`` — or daemon memory — without
  bound;
* **deadlines**: ``deadline_ms`` on a submit frame becomes an absolute
  :class:`~repro.prover.engine.ProverOptions` deadline; past it the
  engine condemns whatever is still in flight and the client gets a
  *partial* verdict whose residue marks the timed-out properties with
  status ``deadline`` — degraded answers, not hangs;
* **circuit breaking** (:mod:`repro.serve.breaker`): consecutive
  backend failures (worker deaths, abandoned pools, escaped crashes)
  open the breaker; while open, submissions are answered *degraded* —
  a cached verdict when this daemon has verified the identical source
  before, a residue-only answer otherwise — and a background probe
  checks whether worker processes can be spawned at all before the
  breaker closes;
* **pool hygiene**: ``pool_recycle_tasks`` / ``worker_rss_limit_mb``
  make the prover's process pool drain and rebuild periodically (see
  :mod:`repro.prover.parallel`), so one leaky verification cannot grow
  workers forever.

Responses stream obligation-progress events (the flight-recorder
envelope of PR 4) and terminate with a verdict carrying the *unproved
residue* (:mod:`repro.serve.residue`) rather than a bare boolean.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import queue
import socket
import tempfile
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..frontend import parse_program
from ..lang.errors import ReflexError
from ..obs.events import EventLog
from ..obs.export import prometheus_exposition
from ..obs.timeseries import Sampler, TimeSeries, registry_snapshot
from ..prover import DEADLINE_MESSAGE, ProverOptions, Verifier
from ..prover.incremental import (
    InvalidationMap,
    Part,
    changed_parts,
    fragment_digests,
)
from ..prover.proofstore import ProofStore
from .admission import (
    DEFAULT_MAX_QUEUED,
    DEFAULT_SESSION_INFLIGHT,
    AdmissionController,
    AdmissionTicket,
)
from .breaker import DEFAULT_COOLDOWN, DEFAULT_THRESHOLD, CircuitBreaker
from .housekeeping import DEFAULT_MAX_INTERN_TERMS, CacheGovernor
from .protocol import ProtocolError, recv_message, send_message
from .residue import degraded_residue, residue_for
from .session import Session, SessionRegistry
from .slo import HealthPolicy, compute_health

#: Protocol/revision tag answered in ``hello`` frames.
PROTOCOL_VERSION = 3

#: Schema tag stamped on ``stats``/``metrics``/``health`` frames and the
#: ``--stats-out`` payload; bumped whenever their shape changes so a
#: scraper can refuse payloads it does not understand.
STATS_SCHEMA_VERSION = 1

#: Verdicts cached for degraded (breaker-open) serving, keyed by source.
_VERDICT_CACHE_CAP = 128

#: Per-submission latency breakdowns retained for the stats payload
#: (``repro report`` renders them as the "recent submissions" table).
_RECENT_SUBMISSIONS = 32


def _env_float(name: str) -> Optional[float]:
    """An optional positive float from the environment."""
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def _env_int(name: str) -> Optional[int]:
    """An optional positive int from the environment."""
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass
class ServeOptions:
    """Daemon configuration (the CLI's ``repro serve`` flags)."""

    #: TCP bind host; ignored when ``socket_path`` is set
    host: str = "127.0.0.1"
    #: TCP bind port (0 = ephemeral; read the bound port off ``address``)
    port: int = 0
    #: UNIX-socket path (overrides host/port when set)
    socket_path: Optional[str] = None
    #: shared proof-store directory (``None`` disables persistence —
    #: warm reuse then rides on compiled plans only)
    store: Optional[str] = None
    #: worker processes per verification (1 = serial in the prover thread)
    jobs: int = 1
    #: intern-table budget for the cache governor
    max_intern_terms: int = DEFAULT_MAX_INTERN_TERMS
    #: write an aggregated run payload (for ``repro report``) here,
    #: atomically after every batch
    stats_out: Optional[str] = None
    #: bind the daemon's flight recorder to this JSONL path
    events_out: Optional[str] = None
    #: daemon-wide cap on admitted, unanswered submissions
    #: (``REPRO_SERVE_MAX_QUEUED``); past it submits are shed
    max_queued: int = DEFAULT_MAX_QUEUED
    #: per-session in-flight submission cap (``REPRO_SERVE_MAX_PER_SESSION``)
    session_inflight: int = DEFAULT_SESSION_INFLIGHT
    #: consecutive backend failures before the circuit breaker opens
    breaker_threshold: int = DEFAULT_THRESHOLD
    #: seconds an open breaker waits before probing/half-open trials
    breaker_cooldown: float = DEFAULT_COOLDOWN
    #: recycle the worker pool after this many completed tasks
    #: (``REPRO_SERVE_POOL_RECYCLE_TASKS``; ``None`` disables)
    pool_recycle_tasks: Optional[int] = field(
        default_factory=lambda: _env_int("REPRO_SERVE_POOL_RECYCLE_TASKS")
    )
    #: recycle the worker pool once a worker's peak RSS exceeds this
    #: many MiB (``REPRO_SERVE_WORKER_RSS_MB``; ``None`` disables)
    worker_rss_limit_mb: Optional[float] = field(
        default_factory=lambda: _env_float("REPRO_SERVE_WORKER_RSS_MB")
    )
    #: rolling time-series sampling interval, seconds
    #: (``REPRO_SERVE_SAMPLE_INTERVAL``)
    sample_interval: float = field(
        default_factory=lambda: (
            _env_float("REPRO_SERVE_SAMPLE_INTERVAL") or 1.0
        )
    )
    #: p99 latency objective for ``serve.verify.seconds``, milliseconds
    #: (``REPRO_SERVE_SLO_P99_MS``; ``None`` disables the SLO health
    #: check — see :mod:`repro.serve.slo`)
    slo_p99_ms: Optional[float] = field(
        default_factory=lambda: _env_float("REPRO_SERVE_SLO_P99_MS")
    )


@dataclass
class _Submission:
    """One queued verification request and where its answers go."""

    session: Session
    source: str
    replies: "queue.Queue[dict]"
    stream: bool = True
    #: the client's requested budget (echoed in the verdict), and its
    #: absolute ``time.monotonic()`` form fixed at admission time
    deadline_ms: Optional[int] = None
    deadline: Optional[float] = None
    #: admission capacity held until the terminal frame is delivered
    ticket: Optional[AdmissionTicket] = None
    #: request id assigned at admission, echoed on every frame this
    #: submission produces (and tagged onto spans/events it causes)
    submit_id: str = ""
    #: ``time.monotonic()`` trace stamps: frame received, admission
    #: granted, batch dequeued by the prover thread
    received_at: float = 0.0
    admitted_at: float = 0.0
    dequeued_at: Optional[float] = None

    def breakdown(self, group_start: Optional[float] = None,
                  fanout_start: Optional[float] = None) -> dict:
        """The per-phase latency split for this submission, in ms:
        admission wait → queue wait → verify → fan-out, plus the
        end-to-end total.

        The phases are *contiguous* stamps (queue wait ends where the
        group's prover work starts, which for a coalesced batch includes
        waiting behind earlier groups), so their sum tracks the client's
        observed wall time instead of undercounting parse/digest work.
        Robust to missing stamps — a submission built without them
        reports zeros for the untracked phases."""
        now = time.monotonic()
        received = self.received_at or now
        admitted = self.admitted_at or received
        queue_end = (group_start if group_start is not None
                     else (self.dequeued_at if self.dequeued_at
                           is not None else admitted))
        verify_end = (fanout_start if fanout_start is not None
                      else queue_end)
        phases = {
            "admission_ms": max(0.0, admitted - received) * 1000.0,
            "queue_ms": max(0.0, queue_end - admitted) * 1000.0,
            "verify_ms": (max(0.0, verify_end - group_start) * 1000.0
                          if group_start is not None else 0.0),
            "fanout_ms": (max(0.0, now - fanout_start) * 1000.0
                          if fanout_start is not None else 0.0),
        }
        total = (max(0.0, now - received) * 1000.0 if self.received_at
                 else sum(phases.values()))
        phases["total_ms"] = max(total, sum(phases.values()))
        return {name: round(ms, 3) for name, ms in phases.items()}

    def answer(self, frame: dict) -> None:
        """Deliver one frame; a *terminal* frame releases admission
        capacity (idempotently — terminal frames can race between the
        prover fan-out and the shutdown drain)."""
        self.replies.put(frame)
        if (frame.get("type") in ("verdict", "error")
                and self.ticket is not None):
            self.ticket.release()


class _StreamingEventLog(EventLog):
    """An event log that forwards each record to subscriber queues.

    The record itself is the PR 4 flight-recorder envelope
    (``seq``/``t``/``kind``/``worker`` + sorted fields); subscribers
    receive it wrapped as an ``event`` protocol frame while the log
    still accumulates normally for telemetry merging.
    """

    def __init__(self, subscribers: List["queue.Queue[dict]"],
                 run_id: Optional[str] = None,
                 worker: str = "serve") -> None:
        super().__init__(run_id=run_id, worker=worker)
        self._subscribers = list(subscribers)

    def emit(self, kind: str, /, **fields: object):
        """Append the event and fan its envelope out to subscribers."""
        event = super().emit(kind, **fields)
        if self._subscribers:
            frame = {"type": "event", "event": event.to_dict()}
            for subscriber in self._subscribers:
                subscriber.put(frame)
        return event


def _error_frame(code: str, message: str) -> dict:
    """A terminal ``error`` frame."""
    return {"type": "error", "code": code, "error": message}


def _jsonable_part(part: Part) -> Optional[List[str]]:
    """A fragment slice id as JSON: ``None`` for the base slice, a
    two-element list for an exchange."""
    return None if part is None else [part[0], part[1]]


def _probe_ok() -> str:
    """The breaker probe's worker-side task (module-level: picklable
    under the ``spawn`` start method)."""
    return "ok"


class _ClientGone(OSError):
    """The peer vanished while we were sending (already counted)."""


class VerificationServer:
    """The ``repro serve`` daemon (see the module docstring)."""

    def __init__(self, options: Optional[ServeOptions] = None,
                 prover_options: Optional[ProverOptions] = None) -> None:
        self.options = options or ServeOptions()
        base = prover_options or ProverOptions()
        if self.options.store is not None:
            base.proof_store = self.options.store
        if self.options.pool_recycle_tasks is not None:
            base.pool_recycle_tasks = self.options.pool_recycle_tasks
        if self.options.worker_rss_limit_mb is not None:
            base.worker_rss_limit_mb = self.options.worker_rss_limit_mb
        self.prover_options = base
        self.sessions = SessionRegistry()
        self.invalidation = InvalidationMap()
        self.governor = CacheGovernor(self.options.max_intern_terms)
        self.admission = AdmissionController(
            max_queued=self.options.max_queued,
            session_inflight=self.options.session_inflight,
        )
        self.breaker = CircuitBreaker(
            threshold=self.options.breaker_threshold,
            cooldown=self.options.breaker_cooldown,
        )
        self.telemetry = obs.Telemetry(
            metrics=True, events=bool(self.options.events_out),
        )
        self._telemetry_lock = threading.Lock()
        #: rolling time-series over the daemon's registry (counter
        #: rates, windowed histogram quantiles) fed by a background
        #: sampler; the health/SLO surface and ``metrics`` frames read it
        self.series = TimeSeries()
        self.sampler = Sampler(
            self._series_snapshot, series=self.series,
            interval=self.options.sample_interval,
        )
        self.health_policy = HealthPolicy(
            slo_p99_ms=self.options.slo_p99_ms,
        )
        self._started_mono = time.monotonic()
        #: monotonic sequence stamped on stats/metrics/health payloads
        #: so a scraper can detect stale or out-of-order reads
        self._stats_seq = itertools.count(1)
        self._submit_seq = itertools.count(1)
        self._recent: "deque[dict]" = deque(maxlen=_RECENT_SUBMISSIONS)
        self._submissions: "queue.Queue[Optional[_Submission]]" = \
            queue.Queue()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._batches = 0
        self._submitted = 0
        self._coalesced = 0
        self._flush_errors = 0
        self._client_drops = 0
        self._verdict_cache: "OrderedDict[str, dict]" = OrderedDict()
        self._probe_thread: Optional[threading.Thread] = None
        self._probe_lock = threading.Lock()
        #: chaos instrumentation: called with each batch before it is
        #: processed (see :mod:`repro.harness.chaos_serve`); failures
        #: are swallowed — the hook can observe, block or delay, never
        #: break the prover thread
        self.batch_hook: Optional[Callable[[List[_Submission]], None]] \
            = None
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Bind the socket and start the accept + prover threads.

        Raises :class:`OSError` when the address cannot be bound (the
        CLI maps that to its distinct bind-failure exit status).
        """
        if self.options.socket_path is not None:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.options.socket_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.options.host, self.options.port))
            self.address = listener.getsockname()[:2]
        listener.listen(128)
        self._listener = listener
        if self.options.events_out:
            self.telemetry.events.bind(self.options.events_out)
        if self.options.store is not None:
            # Reclaim temp files a crashed earlier writer left behind.
            ProofStore(self.options.store).sweep_temps()
        for target, name in ((self._accept_loop, "serve-accept"),
                             (self._prover_loop, "serve-prover")):
            thread = threading.Thread(target=target, name=name,
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        self.sampler.start()

    @property
    def address_str(self) -> str:
        """The bound address in client-usable form."""
        if self.options.socket_path is not None:
            return self.options.socket_path
        if self.address is None:
            return "(not bound)"
        host, port = self.address
        return f"{host}:{port}"

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon shuts down; returns whether it has."""
        return self._stopped.wait(timeout)

    def shutdown(self) -> None:
        """Begin an orderly shutdown (idempotent, thread-safe).

        Stops accepting new connections immediately; the prover thread
        finishes the batch in flight, sheds everything still queued with
        terminal ``shutting-down`` frames, and flushes the artifacts.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._submissions.put(None)  # wake the prover thread
        listener = self._listener
        if listener is not None:
            with contextlib.suppress(OSError):
                listener.close()

    def close(self) -> None:
        """Shut down, join the service threads, flush outputs."""
        self.shutdown()
        for thread in self._threads:
            thread.join(timeout=10)
        self.sampler.stop()  # final sample lands in the stats payload
        self._flush_outputs()
        if self.options.socket_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(self.options.socket_path)
        self._stopped.set()

    def __enter__(self) -> "VerificationServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- connection threads --------------------------------------------------

    def _accept_loop(self) -> None:
        """Accept clients until the listener is closed."""
        while not self._stopping.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break
            thread = threading.Thread(
                target=self._handle_conn, args=(conn,),
                name="serve-conn", daemon=True,
            )
            thread.start()

    def _send(self, conn: socket.socket, frame: dict) -> None:
        """Send one frame; a vanished peer becomes :class:`_ClientGone`
        after the dropped frame is counted (``serve.client_drop``)."""
        try:
            send_message(conn, frame)
        except OSError as error:
            self._note_client_drop(frame.get("type"))
            raise _ClientGone(str(error)) from error

    def _note_client_drop(self, frame_kind: Optional[str]) -> None:
        """Account one client that vanished mid-conversation."""
        self._client_drops += 1
        with self._telemetry_lock:
            self.telemetry.incr("serve.client_drop")
            if self.telemetry.events is not None:
                self.telemetry.events.emit(
                    "serve.client_drop",
                    frame_kind=frame_kind or "(none)",
                )

    def _handle_conn(self, conn: socket.socket) -> None:
        """One client's request loop: framing I/O only — all symbolic
        work happens on the prover thread.

        The session rides in a mutable holder rather than a local so a
        session created *inside* ``_dispatch`` (a submit with no hello)
        is still reaped when the send path raises mid-dispatch — the
        exception would otherwise outrun the assignment and leak it.
        """
        holder: Dict[str, Optional[Session]] = {"session": None}
        try:
            with contextlib.closing(conn):
                try:
                    while not self._stopping.is_set():
                        request = recv_message(conn)
                        if request is None:
                            break
                        if self._dispatch(conn, holder, request) is _CLOSE:
                            break
                except ProtocolError as error:
                    # A garbled or oversized frame: tell the client (it
                    # may still be reading) and hang up; the daemon is
                    # unharmed.  Handled while the socket is still open —
                    # outside ``closing`` the reply could never be sent.
                    with self._telemetry_lock:
                        self.telemetry.incr("serve.malformed_frame")
                    with contextlib.suppress(OSError):
                        send_message(conn,
                                     _error_frame("malformed", str(error)))
        except _ClientGone:
            pass  # counted at the send site, with the frame kind dropped
        except OSError:
            self._note_client_drop(None)  # vanished between frames
        finally:
            session = holder["session"]
            if session is not None:
                self.sessions.drop(session.sid)

    def _dispatch(self, conn: socket.socket,
                  holder: Dict[str, Optional[Session]],
                  request: dict):
        """Handle one request frame; returns the ``_CLOSE`` sentinel to
        end the connection.  Any session this dispatch attaches to is
        published in ``holder`` *before* the first reply frame is sent,
        so the caller can reap it on any exit path."""
        session = holder["session"]
        op = request.get("op")
        if op == "hello":
            if session is None:
                sid = request.get("session")
                if isinstance(sid, str):
                    # Resumption: re-attach to a live session (so a
                    # reconnecting client keeps its incremental history
                    # and its in-flight accounting identity).
                    session = self.sessions.get(sid)
            session = session or self.sessions.create()
            holder["session"] = session
            self._send(conn, {
                "type": "hello",
                "session": session.sid,
                "server": "repro-serve",
                "version": PROTOCOL_VERSION,
                "generation": self.governor.generation,
            })
            return None
        if op == "submit":
            received_at = time.monotonic()
            source = request.get("source")
            if not isinstance(source, str) or not source.strip():
                self._send(conn, _error_frame(
                    "bad-request", "submit requires a 'source' string"
                ))
                return None
            deadline_ms = request.get("deadline_ms")
            if deadline_ms is not None and (
                    isinstance(deadline_ms, bool)
                    or not isinstance(deadline_ms, int)
                    or deadline_ms <= 0):
                self._send(conn, _error_frame(
                    "bad-request",
                    "deadline_ms must be a positive integer",
                ))
                return None
            session = session or self.sessions.create()
            holder["session"] = session
            ticket, shed = self.admission.try_admit(session.sid)
            if ticket is None:
                with self._telemetry_lock:
                    self.telemetry.incr("serve.shed")
                    if self.telemetry.events is not None:
                        self.telemetry.events.emit(
                            "serve.shed", session=session.sid,
                            reason=shed.get("reason"),
                        )
                self._send(conn, shed)
                return None
            replies: "queue.Queue[dict]" = queue.Queue()
            self._submissions.put(_Submission(
                session=session,
                source=source,
                replies=replies,
                stream=bool(request.get("stream", True)),
                deadline_ms=deadline_ms,
                deadline=(None if deadline_ms is None
                          else time.monotonic() + deadline_ms / 1000.0),
                ticket=ticket,
                submit_id=f"sub-{next(self._submit_seq)}",
                received_at=received_at,
                admitted_at=time.monotonic(),
            ))
            while True:
                try:
                    frame = replies.get(timeout=0.5)
                except queue.Empty:
                    if self._stopped.is_set():
                        # The prover thread is gone and will never
                        # answer: refuse locally rather than strand the
                        # client (the ticket died with the controller).
                        self._send(conn, _error_frame(
                            "shutting-down",
                            "the daemon is shutting down",
                        ))
                        return None
                    continue
                self._send(conn, frame)
                if frame.get("type") in ("verdict", "error"):
                    break
            return None
        if op == "ping":
            self._send(conn, {"type": "ok", "op": "ping"})
            return None
        if op == "stats":
            self._send(conn, self._stats_frame())
            return None
        if op == "metrics":
            self._send(conn, self._metrics_frame(request))
            return None
        if op == "health":
            self._send(conn, self._health_frame())
            return None
        if op == "bye":
            self._send(conn, {"type": "ok", "op": "bye"})
            return _CLOSE
        if op == "shutdown":
            self._send(conn, {"type": "ok", "op": "shutdown"})
            self.shutdown()
            return _CLOSE
        self._send(conn, _error_frame(
            "unknown-op", f"unknown op {op!r}"
        ))
        return None

    # -- the prover thread ---------------------------------------------------

    def _prover_loop(self) -> None:
        """Drain submissions in batches until shutdown, then fail any
        stragglers cleanly so no connection thread blocks forever."""
        while True:
            try:
                first = self._submissions.get(timeout=0.25)
            except queue.Empty:
                if self._stopping.is_set():
                    break
                continue
            if first is None:
                break
            batch = [first]
            while True:
                try:
                    item = self._submissions.get_nowait()
                except queue.Empty:
                    break
                if item is None:
                    self._stopping.set()
                    break
                batch.append(item)
            # One bad batch must not kill the prover thread: an escaped
            # exception would strand every waiter on replies.get() and
            # wedge the daemon.  _verify_group converts per-group
            # failures into error frames; this backstop covers the
            # housekeeping and bookkeeping around it.  (A second
            # terminal frame to an already-answered waiter is harmless —
            # its connection loop stopped reading.)
            try:
                self._process_batch(batch)
            except Exception as error:  # noqa: BLE001
                frame = _error_frame(
                    "internal-error",
                    f"{type(error).__name__}: {error}",
                )
                for item in batch:
                    item.answer(frame)
            if self._stopping.is_set():
                break
        # Orderly refusal for anything still queued.
        while True:
            try:
                item = self._submissions.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                item.answer(_error_frame(
                    "shutting-down", "the daemon is shutting down"
                ))
        self._stopped.set()

    def _process_batch(self, batch: List[_Submission]) -> None:
        """One batch: group identical (source, deadline) pairs, verify
        each group once, fan verdicts out, then run housekeeping at the
        quiescent point."""
        hook = self.batch_hook
        if hook is not None:
            with contextlib.suppress(Exception):
                hook(batch)
        self._batches += 1
        self._submitted += len(batch)
        GroupKey = Tuple[str, Optional[float]]
        groups: Dict[GroupKey, List[_Submission]] = {}
        order: List[GroupKey] = []
        for submission in batch:
            key = (submission.source, submission.deadline)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(submission)
        dequeued_at = time.monotonic()
        for submission in batch:
            submission.dequeued_at = dequeued_at
        with self._telemetry_lock:
            self.telemetry.incr("serve.batch")
            self.telemetry.incr("serve.submissions", len(batch))
            if self.telemetry.metrics is not None:
                self.telemetry.metrics.gauge(
                    "serve.queue.depth", float(self.admission.inflight)
                )
                for submission in batch:
                    if not submission.received_at:
                        continue  # hand-built (tests): nothing to time
                    admitted = (submission.admitted_at
                                or submission.received_at)
                    self.telemetry.metrics.observe(
                        "serve.admission.seconds",
                        max(0.0, admitted - submission.received_at),
                    )
                    self.telemetry.metrics.observe(
                        "serve.queue.seconds",
                        max(0.0, dequeued_at - admitted),
                    )
            if self.telemetry.events is not None:
                self.telemetry.events.emit(
                    "serve.batch", size=len(batch), groups=len(order),
                )
        for key in order:
            source, deadline = key
            waiters = groups[key]
            if len(waiters) > 1:
                self._coalesced += len(waiters) - 1
                with self._telemetry_lock:
                    self.telemetry.incr("serve.batch.coalesced",
                                        len(waiters) - 1)
            self._verify_group(source, deadline, waiters)
        with self._telemetry_lock, obs.use(self.telemetry):
            self.governor.maybe_collect()
        self._flush_outputs()

    def _verify_group(self, source: str, deadline: Optional[float],
                      waiters: List[_Submission]) -> None:
        """Verify one distinct source once; stream events and fan the
        verdict out to every coalesced waiter.

        Never raises: a submission that blows up outside the expected
        parse-error path (``RecursionError`` on a pathological kernel,
        pool failures inside ``verify_all``, ...) becomes a terminal
        ``error`` frame for every waiter still owed one, so a single bad
        request cannot strand clients or kill the prover thread.
        """
        answered: set = set()
        try:
            self._verify_group_inner(source, deadline, waiters, answered)
        except Exception as error:  # noqa: BLE001 — see docstring
            self._note_backend_failure("escaped exception")
            with self._telemetry_lock:
                self.telemetry.incr("serve.internal_error")
                if self.telemetry.events is not None:
                    self.telemetry.events.emit(
                        "serve.internal_error",
                        error=type(error).__name__,
                    )
            for waiter in waiters:
                if id(waiter) not in answered:
                    frame = _error_frame(
                        "internal-error",
                        f"{type(error).__name__}: {error}",
                    )
                    breakdown = waiter.breakdown()
                    if waiter.submit_id:
                        frame["submit_id"] = waiter.submit_id
                    frame["breakdown"] = breakdown
                    waiter.answer(frame)
                    self._note_recent(waiter, "internal-error", breakdown)

    def _verify_group_inner(self, source: str, deadline: Optional[float],
                            waiters: List[_Submission],
                            answered: set) -> None:
        """The fallible body of :meth:`_verify_group`; records each
        waiter that received its terminal frame in ``answered``."""
        group_start = time.monotonic()
        try:
            spec = parse_program(source)
        except ReflexError as error:
            with self._telemetry_lock:
                self.telemetry.incr("serve.parse_error")
            for waiter in waiters:
                frame = _error_frame("parse-error", str(error))
                breakdown = waiter.breakdown(group_start=group_start)
                if waiter.submit_id:
                    frame["submit_id"] = waiter.submit_id
                frame["breakdown"] = breakdown
                waiter.answer(frame)
                self._note_recent(waiter, "parse-error", breakdown)
                answered.add(id(waiter))
            return
        if not self.breaker.allow():
            self._serve_degraded(spec, source, waiters, answered)
            return
        digests = fragment_digests(spec.program)
        options = self.prover_options
        if deadline is not None:
            options = replace(options, deadline=deadline)
        # Tag every span and event this group produces — including the
        # ones pool workers ship home — with the waiting submit ids, so
        # one submission's work is traceable end to end even through
        # coalescing.
        submit_ids = [w.submit_id for w in waiters if w.submit_id]
        sink = obs.Telemetry(
            metrics=True, events=True,
            tags=({"submit_id": ",".join(submit_ids[:8])}
                  if submit_ids else None),
        )
        sink.events = _StreamingEventLog(
            [w.replies for w in waiters if w.stream],
            run_id=sink.run_id,
        )
        started = time.perf_counter()
        with obs.use(sink):
            verifier = Verifier(spec, options)
            report = verifier.verify_all(
                jobs=self.options.jobs if self.options.jobs > 1 else None
            )
            program_digest = verifier.program_digest()
            self.invalidation.record_program(verifier, digests)
        wall = time.perf_counter() - started
        residue = residue_for(report)
        counters = dict(sink.counters)
        deadline_expired = any(
            DEADLINE_MESSAGE in (result.error or "")
            for result in report.results
        )
        if deadline_expired:
            with self._telemetry_lock:
                self.telemetry.incr("serve.deadline.expired")
        backend_failed = (
            counters.get("parallel.worker_died", 0) > 0
            or counters.get("parallel.task_abandoned", 0) > 0
        )
        if backend_failed:
            self._note_backend_failure("worker deaths or abandoned pool")
        else:
            self.breaker.record_success()
            if not deadline_expired:
                self._cache_verdict(source, spec, report, residue,
                                    program_digest)
        fanout_start = time.monotonic()
        for waiter in waiters:
            waiter.answer(self._verdict_frame(
                waiter, spec, report, residue, digests,
                program_digest, counters, wall, len(waiters),
                deadline_expired=deadline_expired,
                group_start=group_start,
                fanout_start=fanout_start,
            ))
            answered.add(id(waiter))
        with self._telemetry_lock:
            self.telemetry.merge_export(sink.export())
            if self.telemetry.metrics is not None:
                self.telemetry.metrics.observe("serve.verify.seconds",
                                               wall)

    def _note_recent(self, waiter: _Submission, outcome: str,
                     breakdown: dict) -> None:
        """Remember one finished submission's latency breakdown (the
        ``recent_submissions`` ring in the stats payload) and feed the
        end-to-end histogram."""
        self._recent.append({
            "submit_id": waiter.submit_id or "(untracked)",
            "session": waiter.session.sid,
            "outcome": outcome,
            "breakdown": breakdown,
        })
        with self._telemetry_lock:
            if self.telemetry.metrics is not None:
                self.telemetry.metrics.observe(
                    "serve.e2e.seconds",
                    breakdown.get("total_ms", 0.0) / 1000.0,
                )

    def _verdict_frame(self, waiter: _Submission, spec, report,
                       residue: List[dict], digests: Dict[Part, str],
                       program_digest: str, counters: Dict[str, int],
                       wall: float, coalesced: int,
                       deadline_expired: bool = False,
                       group_start: Optional[float] = None,
                       fanout_start: Optional[float] = None) -> dict:
        """The terminal verdict for one submission, with its
        session-scoped incremental diff (which slices changed, what got
        superseded) and its per-phase latency breakdown."""
        session = waiter.session
        breakdown = waiter.breakdown(group_start=group_start,
                                     fanout_start=fanout_start)
        outcome = "proved" if report.all_proved else "unproved"
        if deadline_expired:
            outcome = "deadline"
        self._note_recent(waiter, outcome, breakdown)
        if session.rounds:
            changed = changed_parts(session.digests, digests)
            invalidated = len(self.invalidation.invalidated_keys(
                session.digests, digests
            ))
            changed_json = [_jsonable_part(part) for part in changed]
        else:
            changed, invalidated, changed_json = None, 0, None
        session.note_round(digests, program_digest, spec.name,
                           report.all_proved)
        return {
            "type": "verdict",
            "session": session.sid,
            "submit_id": waiter.submit_id or None,
            "round": session.rounds,
            "program": spec.name,
            "program_digest": program_digest,
            "all_proved": report.all_proved,
            "report": report.to_dict(),
            "residue": residue,
            "changed_parts": changed_json,
            "fragments": {
                "total": len(digests),
                "changed": (len(changed) if changed is not None
                            else len(digests)),
            },
            "invalidated_keys": invalidated,
            "counters": counters,
            "seconds": round(wall, 6),
            "breakdown": breakdown,
            "coalesced": coalesced,
            "generation": self.governor.generation,
            "batch": self._batches,
            "deadline_ms": waiter.deadline_ms,
            "deadline_expired": deadline_expired,
        }

    # -- circuit breaking and degraded serving -------------------------------

    def _note_backend_failure(self, reason: str) -> None:
        """Feed one backend failure to the breaker; when it opens, start
        the background probe that will eventually close it."""
        self.breaker.record_failure()
        with self._telemetry_lock:
            self.telemetry.incr("serve.breaker.failure")
            if self.telemetry.events is not None:
                self.telemetry.events.emit(
                    "serve.breaker.failure", reason=reason,
                    state=self.breaker.state,
                )
        if self.breaker.state != "closed":
            self._start_probe()

    def _cache_verdict(self, source: str, spec, report,
                       residue: List[dict],
                       program_digest: str) -> None:
        """Remember a full verdict for degraded (breaker-open) serving."""
        self._verdict_cache[source] = {
            "program": spec.name,
            "program_digest": program_digest,
            "all_proved": report.all_proved,
            "report": report.to_dict(),
            "residue": residue,
        }
        self._verdict_cache.move_to_end(source)
        while len(self._verdict_cache) > _VERDICT_CACHE_CAP:
            self._verdict_cache.popitem(last=False)

    def _serve_degraded(self, spec, source: str,
                        waiters: List[_Submission],
                        answered: set) -> None:
        """Answer a group without running the prover (breaker open):
        a cached verdict for a source this daemon has fully verified
        before, a residue-only answer otherwise.  Degraded answers never
        advance session history — nothing was verified."""
        cached = self._verdict_cache.get(source)
        if cached is not None:
            self._verdict_cache.move_to_end(source)
        with self._telemetry_lock:
            self.telemetry.incr("serve.breaker.shed", len(waiters))
            if cached is not None:
                self.telemetry.incr("serve.breaker.cache_hit",
                                    len(waiters))
            if self.telemetry.events is not None:
                self.telemetry.events.emit(
                    "serve.degraded", program=spec.name,
                    cached=cached is not None, waiters=len(waiters),
                )
        reason = ("the prover backend is unavailable (circuit breaker "
                  "open); answering degraded while it heals")
        for waiter in waiters:
            breakdown = waiter.breakdown()
            if cached is not None:
                frame = {
                    "type": "verdict",
                    "session": waiter.session.sid,
                    "submit_id": waiter.submit_id or None,
                    "round": waiter.session.rounds,
                    "program": cached["program"],
                    "program_digest": cached["program_digest"],
                    "all_proved": cached["all_proved"],
                    "report": cached["report"],
                    "residue": cached["residue"],
                    "changed_parts": None,
                    "fragments": {"total": 0, "changed": 0},
                    "invalidated_keys": 0,
                    "counters": {},
                    "seconds": 0.0,
                    "breakdown": breakdown,
                    "coalesced": len(waiters),
                    "generation": self.governor.generation,
                    "batch": self._batches,
                    "deadline_ms": waiter.deadline_ms,
                    "deadline_expired": False,
                    "degraded": True,
                    "degraded_reason": reason,
                }
            else:
                frame = {
                    "type": "verdict",
                    "session": waiter.session.sid,
                    "submit_id": waiter.submit_id or None,
                    "round": waiter.session.rounds,
                    "program": spec.name,
                    "program_digest": None,
                    "all_proved": False,
                    "report": {"program": spec.name, "results": []},
                    "residue": degraded_residue(spec, reason),
                    "changed_parts": None,
                    "fragments": {"total": 0, "changed": 0},
                    "invalidated_keys": 0,
                    "counters": {},
                    "seconds": 0.0,
                    "breakdown": breakdown,
                    "coalesced": len(waiters),
                    "generation": self.governor.generation,
                    "batch": self._batches,
                    "deadline_ms": waiter.deadline_ms,
                    "deadline_expired": False,
                    "degraded": True,
                    "degraded_reason": reason,
                }
            waiter.answer(frame)
            self._note_recent(waiter, "degraded", breakdown)
            answered.add(id(waiter))

    def _start_probe(self) -> None:
        """Start (once) the background thread that probes the backend
        and closes the breaker when fresh workers spawn again."""
        with self._probe_lock:
            if (self._probe_thread is not None
                    and self._probe_thread.is_alive()):
                return
            self._probe_thread = threading.Thread(
                target=self._probe_loop, name="serve-probe", daemon=True,
            )
            self._probe_thread.start()

    def _probe_loop(self) -> None:
        """Periodically check that a worker process can be spawned and
        do trivial work; success closes the breaker."""
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        interval = max(0.1, min(self.breaker.cooldown, 2.0))
        while (not self._stopping.is_set()
               and self.breaker.state != "closed"):
            if self._stopping.wait(interval):
                return
            try:
                with ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=multiprocessing.get_context("spawn"),
                ) as pool:
                    ok = pool.submit(_probe_ok).result(timeout=30)
            except Exception:  # noqa: BLE001 - any failure = still sick
                ok = None
            if ok == "ok":
                self.breaker.record_success()
                with self._telemetry_lock:
                    self.telemetry.incr("serve.breaker.probe_ok")
                    if self.telemetry.events is not None:
                        self.telemetry.events.emit("serve.breaker.closed")
                return
            self.breaker.record_failure()
            with self._telemetry_lock:
                self.telemetry.incr("serve.breaker.probe_fail")

    # -- stats and artifacts -------------------------------------------------

    def _series_snapshot(self) -> dict:
        """The sampler's callback: one consistent registry snapshot,
        with daemon-level gauges injected so their last-values ride the
        same windows as the counters they explain."""
        with self._telemetry_lock:
            snapshot = registry_snapshot(
                dict(self.telemetry.counters),
                self.telemetry.metrics.export(),
            )
        snapshot["gauges"]["serve.admission.inflight"] = float(
            self.admission.inflight
        )
        snapshot["gauges"]["serve.sessions.active"] = float(
            len(self.sessions)
        )
        snapshot["gauges"]["serve.breaker.open"] = (
            0.0 if self.breaker.state == "closed" else 1.0
        )
        return snapshot

    def _uptime_s(self) -> float:
        return round(time.monotonic() - self._started_mono, 3)

    def _metrics_frame(self, request: dict) -> dict:
        """A ``metrics`` response: rolling-window rates and quantiles,
        lifetime totals, and the Prometheus text exposition of the
        totals (so one frame feeds both ``repro top`` and a scraper)."""
        over = request.get("over")
        if (isinstance(over, bool) or not isinstance(over, (int, float))
                or over <= 0):
            over = None
        snapshot = self._series_snapshot()
        return {
            "type": "metrics",
            "schema_version": STATS_SCHEMA_VERSION,
            "generated_at": next(self._stats_seq),
            "uptime_s": self._uptime_s(),
            "address": self.address_str,
            "window": self.series.to_dict(over=over),
            "totals": snapshot,
            "exposition": prometheus_exposition(snapshot),
        }

    def _health_frame(self) -> dict:
        """A ``health`` response: the SLO-aware verdict plus the same
        hygiene stamps the other observability frames carry."""
        frame = compute_health(
            self.health_policy,
            breaker=self.breaker.to_dict(),
            admission=self.admission.stats(),
            series=self.series,
        )
        frame.update({
            "type": "health",
            "schema_version": STATS_SCHEMA_VERSION,
            "generated_at": next(self._stats_seq),
            "uptime_s": self._uptime_s(),
            "address": self.address_str,
            "sampler": {"errors": self.sampler.errors,
                        **self.series.stats()},
        })
        return frame

    def _stats_frame(self) -> dict:
        """A point-in-time ``stats`` response."""
        with self._telemetry_lock:
            counters = dict(self.telemetry.counters)
        return {
            "type": "stats",
            "schema_version": STATS_SCHEMA_VERSION,
            "generated_at": next(self._stats_seq),
            "uptime_s": self._uptime_s(),
            "address": self.address_str,
            "batches": self._batches,
            "submissions": self._submitted,
            "coalesced": self._coalesced,
            "flush_errors": self._flush_errors,
            "client_drops": self._client_drops,
            "sessions": self.sessions.stats(),
            "governor": self.governor.to_dict(),
            "invalidation": self.invalidation.stats(),
            "admission": self.admission.stats(),
            "breaker": self.breaker.to_dict(),
            "verdict_cache": len(self._verdict_cache),
            "counters": counters,
        }

    def _flush_outputs(self) -> None:
        """Flush the flight recorder and rewrite the stats payload (both
        crash-safe: bound events append, the stats file replaces
        atomically) so a killed daemon still leaves artifacts.

        I/O failures (full disk, vanished directory) are counted, never
        raised: flushing artifacts must not take the prover thread —
        or ``close()`` — down with it.  The temp file is uniquely named
        so concurrent flushers (the prover thread racing ``close()``
        after a join timeout) never write through the same path.
        """
        with self._telemetry_lock:
            try:
                if self.telemetry.events is not None:
                    self.telemetry.events.flush()
                if self.options.stats_out:
                    self._write_stats(self.options.stats_out)
            except OSError:
                self._flush_errors += 1
                self.telemetry.incr("serve.flush_error")

    def _write_stats(self, out: str) -> None:
        """Atomically replace ``out`` with the current stats payload."""
        payload = {
            "serve": {
                "schema_version": STATS_SCHEMA_VERSION,
                "generated_at": next(self._stats_seq),
                "uptime_s": self._uptime_s(),
                "batches": self._batches,
                "submissions": self._submitted,
                "coalesced": self._coalesced,
                "flush_errors": self._flush_errors,
                "client_drops": self._client_drops,
                "sessions": self.sessions.stats(),
                "governor": self.governor.to_dict(),
                "invalidation": self.invalidation.stats(),
                "admission": self.admission.stats(),
                "breaker": self.breaker.to_dict(),
                "recent_submissions": list(self._recent),
            },
            "timeseries": self.series.to_dict(),
            "telemetry": self.telemetry.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(os.path.abspath(out)) or None,
            prefix=os.path.basename(out) + ".", suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, out)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise


#: Sentinel returned by ``_dispatch`` to end a connection loop.
_CLOSE = object()
