"""Generation-aware eviction for a long-lived prover process.

The one-shot CLI never worried about unbounded growth: the intern table,
the simplify/DNF/solver memos and the compiled-plan LRU all die with the
process.  A daemon verifying thousands of *unrelated* kernels would grow
them without bound — ``reset_interning()`` and ``clear_plans()`` exist
but nothing long-lived ever called them.

:class:`CacheGovernor` is that caller.  Between batches (never while a
verification is in flight — the caller guarantees quiescence) it checks
the intern-table population against a budget and, past it, starts a new
*generation*: the intern table is reset (which also drops the compiled
plans pinning its terms — the PR 6 stale-generation contract) and the
simplify/DNF/solver memos are cleared.  Warm reuse survives collection
through the persistent proof store: entries unpickle into the fresh
generation's table, so a collected daemon gets slower for exactly one
round per kernel, never wrong.
"""

from __future__ import annotations

import os

from .. import obs


def _env_budget(name: str, default: int) -> int:
    """An integer budget from the environment, tolerant of nonsense."""
    try:
        return max(1, int(os.environ.get(name, default)))
    except ValueError:
        return default


#: Default ceiling on interned-term population before a collection.
DEFAULT_MAX_INTERN_TERMS = _env_budget("REPRO_SERVE_MAX_INTERN_TERMS",
                                       1_000_000)


class CacheGovernor:
    """Bounds a long-lived process's symbolic caches by generation.

    ``maybe_collect()`` is cheap when under budget (one ``len`` of the
    intern table) and must only be called at a quiescent point: no
    verification in flight, no live :class:`~repro.prover.engine.Verifier`
    expected to survive the call (a Verifier's ``_step_cache`` pins its
    generation's terms; the serve daemon builds a fresh one per
    submission precisely so collection is safe between batches).
    """

    def __init__(self,
                 max_intern_terms: int = DEFAULT_MAX_INTERN_TERMS) -> None:
        self.max_intern_terms = max(1, int(max_intern_terms))
        #: completed collections (the current generation number)
        self.generation = 0

    def over_budget(self) -> bool:
        """Whether the intern table has outgrown its budget."""
        from ..symbolic.expr import intern_table_size

        return intern_table_size() > self.max_intern_terms

    def collect(self) -> None:
        """Start a new generation unconditionally: reset the intern
        table (dropping compiled plans with it) and clear the
        simplify/DNF/solver memos."""
        from ..symbolic import cache as symcache
        from ..symbolic.expr import intern_table_size, reset_interning

        before = intern_table_size()
        reset_interning()
        symcache.clear_all()
        self.generation += 1
        obs.incr("serve.generation.collected")
        obs.event("serve.collection", generation=self.generation,
                  terms_before=before,
                  terms_after=intern_table_size())

    def maybe_collect(self) -> bool:
        """Collect if over budget; returns whether a collection ran."""
        if not self.over_budget():
            return False
        self.collect()
        return True

    def to_dict(self) -> dict:
        """JSON-ready governor state (for ``stats`` responses)."""
        from ..symbolic.expr import intern_table_size

        return {
            "generation": self.generation,
            "max_intern_terms": self.max_intern_terms,
            "intern_terms": intern_table_size(),
        }
