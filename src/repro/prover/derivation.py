"""Proof objects (derivations).

The proof search (:mod:`repro.prover.trace_tactics`, :mod:`repro.prover
.invariants`) emits these data structures; the independent checker
(:mod:`repro.prover.checker`) re-validates them without trusting the
search.  This mirrors the paper's architecture, where Ltac tactics search
for a term that Coq's kernel then type-checks: the search may be arbitrarily
buggy, the checker decides.

A :class:`TracePropertyProof` is an induction over BehAbs: the base case
covers every trigger occurrence in the Init trace; each inductive case
covers every trigger occurrence in every symbolic path of one exchange.
Justifications say *why* an occurrence is fine:

* :class:`Vacuous` — the occurrence's match condition contradicts the path,
* :class:`ImmWitness` / :class:`EarlierWitness` / :class:`LaterWitness` —
  the required action is found at a specific index of the same action list,
* :class:`FoundBridge` — a ``lookup`` *found* fact plus the component-set /
  Spawn correspondence puts the required spawn in the past,
* :class:`HistoryInvariant` — a guard-implies-history invariant proved by a
  secondary induction (the paper's section 5.1 second induction),
* :class:`NoPriorMatch` — for ``Disables``: every earlier potential match is
  refuted, and the pre-state trace is clean by an absence invariant, a
  ``lookup`` *missing* fact bridge, or emptiness (base case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from ..props.spec import TraceProperty
from ..symbolic.expr import SVar, Term
from .obligations import InstPattern, Occurrence, Scheme

# ---------------------------------------------------------------------------
# Invariants (shared by justifications and their own proofs)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InvariantSpec:
    """A candidate inductive invariant.

    * ``kind == "history"``: whenever every ``guard`` literal holds of the
      state, the trace contains an action matching ``inst``.
    * ``kind == "absence"``: whenever every ``guard`` literal holds of the
      state, the trace contains **no** action matching ``inst``.

    Guards and the instantiated pattern range over pre-state variables and
    the universally quantified ``params``.
    """

    kind: str
    guard: Tuple[Term, ...]
    inst: InstPattern
    params: Tuple[SVar, ...]

    def __str__(self) -> str:
        guard = " and ".join(str(g) for g in self.guard) or "true"
        what = "exists" if self.kind == "history" else "no"
        return f"[{guard}] => {what} action matching {self.inst}"


#: Inductive-case tags of an invariant proof, in the order the search tries
#: them.  ``established`` carries the witnessing action index (history only).
@dataclass(frozen=True)
class CaseInfeasible:
    """Paper case (C): the branch conditions contradict the post-guard."""


@dataclass(frozen=True)
class CaseEstablished:
    """Paper case (A): the handler itself emits the required action."""

    action_index: int


@dataclass(frozen=True)
class CasePreserved:
    """Paper case (B): the guard already held before the exchange (and, for
    absence, the handler emits no matching action)."""

    refuted_indices: Tuple[int, ...] = ()


@dataclass(frozen=True)
class CaseSyntacticSkip:
    """The handler assigns none of the guard's variables and cannot emit a
    matching action — decided without symbolic evaluation (section 6.4's
    syntactic check)."""


InvariantCase = Union[
    CaseInfeasible, CaseEstablished, CasePreserved, CaseSyntacticSkip
]


@dataclass(frozen=True)
class BaseVacuous:
    """The guard is false of the Init state."""


@dataclass(frozen=True)
class BaseWitness:
    """Init itself emitted the required action (history invariants)."""

    action_index: int


@dataclass(frozen=True)
class BaseClean:
    """No Init action can match (absence invariants)."""

    refuted_indices: Tuple[int, ...] = ()


InvariantBase = Union[BaseVacuous, BaseWitness, BaseClean]


@dataclass(frozen=True)
class InvariantProof:
    """The full secondary induction for one invariant."""

    spec: InvariantSpec
    base: InvariantBase
    #: one entry per (exchange key, path index); syntactically skipped
    #: exchanges contribute a single entry with path index -1.
    cases: Tuple[Tuple[Tuple[str, str], int, InvariantCase], ...]


# ---------------------------------------------------------------------------
# Bounded-counter invariants
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BoundedSpec:
    """Every ``Spawn`` of a ``ctype`` component in the trace has
    ``config[config_index] < bound_var``, and ``bound_var`` only grows.

    This is the classic allocation-counter invariant: it is how uniqueness
    of counter-assigned identities (browser tab ids) is proved without a
    guarding ``lookup``.
    """

    ctype: str
    config_index: int
    bound_var: SVar

    def __str__(self) -> str:
        return (
            f"every Spawn({self.ctype}).config[{self.config_index}] < "
            f"{self.bound_var} (monotone)"
        )


@dataclass(frozen=True)
class BoundedProof:
    """Induction for a :class:`BoundedSpec`: the base case checks Init
    spawns; each inductive case checks monotonicity of the bound and the
    bound on newly spawned components (``"skip"`` marks exchanges the
    syntactic check discharges)."""

    spec: BoundedSpec
    cases: Tuple[Tuple[Tuple[str, str], int, str], ...]


# ---------------------------------------------------------------------------
# Occurrence justifications
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Vacuous:
    """The occurrence's match condition contradicts the path condition."""

    note: str = ""


@dataclass(frozen=True)
class ImmWitness:
    """The required action sits exactly at ``witness_index`` (the adjacent
    slot for the ``imm_*`` modes)."""

    witness_index: int


@dataclass(frozen=True)
class EarlierWitness:
    """The required action is emitted earlier in the same action list."""

    witness_index: int


@dataclass(frozen=True)
class LaterWitness:
    """The required action is emitted later in the same action list."""

    witness_index: int


@dataclass(frozen=True)
class FoundBridge:
    """`lookup` found a matching component; by the component-set/Spawn
    correspondence its spawn (Init or trace) precedes the lookup, which
    precedes the trigger."""

    fact_index: int


@dataclass(frozen=True)
class HistoryInvariant:
    """A guard-implies-history invariant supplies the past action.

    ``instantiation`` maps the invariant's universal parameters to the
    occurrence's terms; the checker verifies the instantiated guard holds
    under the occurrence's facts and that the instantiated pattern binding
    coincides with the trigger's binding."""

    proof: InvariantProof
    instantiation: Tuple[Tuple[SVar, Term], ...]


@dataclass(frozen=True)
class EmptyHistory:
    """Base case: there is no pre-state trace."""


@dataclass(frozen=True)
class AbsenceInvariant:
    """A guard-implies-absence invariant clears the pre-state trace."""

    proof: InvariantProof
    instantiation: Tuple[Tuple[SVar, Term], ...]


@dataclass(frozen=True)
class MissingBridge:
    """`lookup` observed no matching component; by the component-set/Spawn
    correspondence no matching spawn exists anywhere in the trace."""

    fact_index: int


@dataclass(frozen=True)
class BoundedBridge:
    """The trigger spawns a component whose counted configuration field is
    at least the current bound; the bounded invariant says every earlier
    spawn sits strictly below the bound, so none can collide."""

    proof: BoundedProof
    #: the term the forbidden pattern pins the counted field to
    field_term: Term


@dataclass(frozen=True)
class SenderChain:
    """Chain through the sender's own creation (used for properties like
    "files can only be requested after login"):

    1. the trigger's variables are bound to the *sender's* configuration
       (or constants),
    2. the sender is a member of the component set, hence — since no Init
       component has its type — was spawned in the pre-state trace,
    3. ``lemma`` proves that every such spawn is preceded by the required
       action, with the variables carried through the spawned component's
       configuration.
    """

    lemma: "TracePropertyProof"
    #: property variable → sender config index for the chained variables
    field_map: Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class NoPriorMatch:
    """Justification shape for ``Disables`` occurrences."""

    refuted_indices: Tuple[int, ...]
    history: Union[EmptyHistory, AbsenceInvariant, MissingBridge,
                   BoundedBridge]


Justification = Union[
    Vacuous,
    ImmWitness,
    EarlierWitness,
    LaterWitness,
    FoundBridge,
    HistoryInvariant,
    SenderChain,
    NoPriorMatch,
]


@dataclass(frozen=True)
class OccurrenceProof:
    occurrence: Occurrence
    justification: Justification


@dataclass(frozen=True)
class BaseProof:
    """Trigger coverage of the Init trace."""

    occurrence_proofs: Tuple[OccurrenceProof, ...]


@dataclass(frozen=True)
class PathProof:
    """Trigger coverage of one symbolic path of one exchange."""

    exchange_key: Tuple[str, str]
    path_index: int
    occurrence_proofs: Tuple[OccurrenceProof, ...]


@dataclass(frozen=True)
class SkippedExchange:
    """The whole exchange was discharged by the syntactic check."""

    exchange_key: Tuple[str, str]
    reason: str


StepProof = Union[PathProof, SkippedExchange]


@dataclass(frozen=True)
class TracePropertyProof:
    """The complete derivation for one trace property."""

    property: TraceProperty
    scheme: Scheme
    base: BaseProof
    steps: Tuple[StepProof, ...]

    def summary(self) -> str:
        """One-line account of the derivation's case analysis."""
        skipped = sum(1 for s in self.steps
                      if isinstance(s, SkippedExchange))
        detailed = len(self.steps) - skipped
        return (
            f"{self.property.name}: base with "
            f"{len(self.base.occurrence_proofs)} occurrence(s); "
            f"{detailed} path case(s), {skipped} exchange(s) skipped "
            f"syntactically"
        )
