"""Proof obligations for trace properties.

Each of the five primitives reduces to a *trigger/required/mode* scheme
(the table in :mod:`repro.props.tracepreds`):

=============  =========  =========  ==============================
Primitive       Trigger    Required   Mode
=============  =========  =========  ==============================
``ImmBefore``   B          A          ``imm_before``
``ImmAfter``    A          B          ``imm_after``
``Enables``     B          A          ``before``  (∃ strictly earlier)
``Ensures``     A          B          ``after``   (∃ strictly later)
``Disables``    B          A          ``never_before`` (∄ earlier)
=============  =========  =========  ==============================

An *occurrence* is a conditional match of the trigger pattern against one
action template of one symbolic path (or of the Init trace).  The proof of
a property is a justification for every occurrence; this module enumerates
occurrences and provides the static possibility checks behind the paper's
"simple syntactic check suffices" optimization (section 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang import ast
from ..lang.errors import ValidationError
from ..props.patterns import (
    ActionPattern,
    CallPat,
    RecvPat,
    SelectPat,
    SendPat,
    SpawnPat,
)
from ..props.spec import TraceProperty
from ..symbolic.expr import Term
from ..symbolic.templates import Template
from ..symbolic.unify import SymMatch, match_template

#: The discharge modes, see module docstring.
MODES = ("imm_before", "imm_after", "before", "after", "never_before")


@dataclass(frozen=True)
class Scheme:
    """Trigger/required/mode decomposition of one property."""

    trigger: ActionPattern
    required: ActionPattern
    mode: str


def scheme_of(prop: TraceProperty) -> Scheme:
    """The trigger/required/mode scheme of a property's primitive."""
    if prop.primitive == "ImmBefore":
        return Scheme(prop.b, prop.a, "imm_before")
    if prop.primitive == "ImmAfter":
        return Scheme(prop.a, prop.b, "imm_after")
    if prop.primitive == "Enables":
        return Scheme(prop.b, prop.a, "before")
    if prop.primitive == "Ensures":
        return Scheme(prop.a, prop.b, "after")
    if prop.primitive == "Disables":
        return Scheme(prop.b, prop.a, "never_before")
    raise ValidationError(f"unknown primitive {prop.primitive}")


@dataclass(frozen=True)
class Occurrence:
    """A conditional trigger match at ``index`` within an action-template
    list."""

    index: int
    match: SymMatch

    def __str__(self) -> str:
        return f"trigger at action #{self.index}: {self.match}"


def occurrences(trigger: ActionPattern,
                templates: Sequence[Template]) -> List[Occurrence]:
    """All conditional matches of ``trigger`` in ``templates``."""
    found: List[Occurrence] = []
    for i, template in enumerate(templates):
        m = match_template(trigger, template)
        if m is not None:
            found.append(Occurrence(i, m))
    return found


@dataclass(frozen=True)
class InstPattern:
    """A pattern with some variables pre-bound to terms — the instantiated
    "required" pattern carried into history/absence invariants."""

    pattern: ActionPattern
    binding: Tuple[Tuple[str, Term], ...]

    def binding_dict(self) -> Dict[str, Term]:
        return dict(self.binding)

    def match(self, template: Template) -> Optional[SymMatch]:
        return match_template(self.pattern, template, self.binding_dict())

    def __str__(self) -> str:
        bs = ", ".join(f"{k}={v}" for k, v in self.binding)
        return f"{self.pattern} [{bs}]"


# ---------------------------------------------------------------------------
# Static possibility (the syntactic skip check)
# ---------------------------------------------------------------------------


def handler_may_emit(pattern: ActionPattern, body: ast.Cmd) -> bool:
    """Could *any* path of ``body`` emit an action this pattern matches?

    Purely syntactic and conservative: ``True`` unless the AST rules a match
    out by action kind, message name, or component type.  Recv/Select
    patterns never match handler-emitted actions (only the exchange
    boundary, which :func:`boundary_may_match` covers).
    """
    if isinstance(pattern, SendPat):
        for cmd in ast.sub_cmds(body):
            if isinstance(cmd, ast.SendCmd) and cmd.msg == pattern.msg.name:
                if _target_may_have_type(cmd.target, pattern.comp.ctype,
                                         body):
                    return True
        return False
    if isinstance(pattern, SpawnPat):
        return any(
            isinstance(cmd, ast.SpawnCmd) and cmd.ctype == pattern.comp.ctype
            for cmd in ast.sub_cmds(body)
        )
    if isinstance(pattern, CallPat):
        return any(
            isinstance(cmd, ast.CallCmd) and cmd.func == pattern.func
            for cmd in ast.sub_cmds(body)
        )
    return False  # Recv / Select never appear inside a handler body


def _target_may_have_type(target: ast.Expr, ctype: str,
                          body: ast.Cmd) -> bool:
    """Could ``target`` denote a component of type ``ctype``?  We cannot
    type the expression without a context here, so only the trivially
    decidable cases answer ``False``; everything else conservatively says
    ``True`` (the full per-path analysis will refine it)."""
    return True


def boundary_may_match(pattern: ActionPattern, ctype: str,
                       msg: str) -> bool:
    """Could the Select/Recv boundary actions of a (``ctype``, ``msg``)
    exchange match ``pattern``?"""
    if isinstance(pattern, SelectPat):
        return pattern.comp.ctype == ctype
    if isinstance(pattern, RecvPat):
        return pattern.comp.ctype == ctype and pattern.msg.name == msg
    return False


def exchange_statically_silent(prop_patterns: Sequence[ActionPattern],
                               ctype: str, msg: str,
                               body: Optional[ast.Cmd]) -> bool:
    """True when no pattern of the property can match anything a
    (``ctype``, ``msg``) exchange produces — the exchange can then be
    skipped entirely for trigger enumeration.

    This is the reproduction of the paper's syntactic skip: sound because
    :func:`handler_may_emit` and :func:`boundary_may_match` are
    conservative.
    """
    for pattern in prop_patterns:
        if boundary_may_match(pattern, ctype, msg):
            return False
        if body is not None and handler_may_emit(pattern, body):
            return False
    return True
