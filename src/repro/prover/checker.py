"""The independent proof checker.

The proof *search* is allowed to be arbitrarily buggy; the checker decides.
Given a program and a derivation it re-validates, without consulting the
search:

* **structure** — the derivation's scheme matches the property, and there
  is an occurrence proof for every trigger occurrence of the Init trace and
  of every symbolic path of every exchange (omissions are rejected);
* **skips** — syntactically skipped exchanges really are statically silent;
* **justifications** — every entailment, witness index, lookup bridge and
  invariant use re-checks against the solver, including the full secondary
  induction of every invariant proof.

For non-interference records (where search and check coincide by
construction) the validation pass re-derives the base condition and the
*coverage* of the recorded verdicts — see :func:`ni_proof_complaints`.

The trusted base of the reproduction is therefore: the symbolic evaluator
(shared between search and checker — the analog of Coq's evaluation rules),
the solver, the matcher, and this module.  The search — the analog of the
paper's 1,768 lines of Ltac — is untrusted.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from ..lang.errors import ProofCheckFailure, ProofSearchFailure
from ..symbolic.behabs import GenericStep
from .derivation import (
    BaseProof,
    PathProof,
    SkippedExchange,
    TracePropertyProof,
)
from .ni import NIProof, build_labeling, check_ni_base, feasible_ni_triples
from .obligations import exchange_statically_silent, occurrences, scheme_of
from .trace_tactics import OccurrenceContext, validate_justification


def check_trace_proof(step: GenericStep,
                      proof: TracePropertyProof) -> None:
    """Raise :class:`ProofCheckFailure` unless the derivation is valid."""
    complaints = trace_proof_complaints(step, proof)
    if complaints:
        raise ProofCheckFailure(
            f"derivation for {proof.property.name} rejected: "
            + "; ".join(complaints)
        )


def trace_proof_complaints(step: GenericStep,
                           proof: TracePropertyProof) -> List[str]:
    """All reasons the derivation fails to validate (empty = valid)."""
    complaints: List[str] = []
    prop = proof.property
    expected_scheme = scheme_of(prop)
    if proof.scheme != expected_scheme:
        complaints.append("derivation scheme does not match the property")
        return complaints
    scheme = expected_scheme

    # Base case coverage + justification validity.
    complaints.extend(trace_base_complaints(step, scheme, proof.base))

    # Inductive coverage.
    recorded = record_step_proofs(proof.steps, complaints)
    for ex in step.exchanges:
        complaints.extend(
            trace_exchange_complaints(step, scheme, ex, recorded)
        )
    return complaints


def trace_base_complaints(step: GenericStep, scheme,
                          base: BaseProof) -> List[str]:
    """Validate the base case of a trace derivation in isolation.

    Shared between :func:`trace_proof_complaints` and the engine's
    fragment-grained proof reuse, which revalidates stored base-case
    fragments before accepting them."""
    base_ctx = OccurrenceContext(
        step=step,
        scheme=scheme,
        actions=step.init.actions,
        cond=(),
        lookup_facts=(),
        has_history=False,
    )
    return _check_occurrence_list(
        base_ctx, base.occurrence_proofs, "base case"
    )


def record_step_proofs(steps, complaints: List[str]) -> dict:
    """Index step proofs by ``(exchange_key, path_index-or-None)``,
    appending a complaint for records of unknown shape."""
    recorded: dict = {}
    for sp in steps:
        if isinstance(sp, SkippedExchange):
            recorded[(sp.exchange_key, None)] = sp
        elif isinstance(sp, PathProof):
            recorded[(sp.exchange_key, sp.path_index)] = sp
        else:
            complaints.append(f"unknown step proof {sp!r}")
    return recorded


def trace_exchange_complaints(step: GenericStep, scheme, ex,
                              recorded: dict) -> List[str]:
    """Validate one exchange's inductive case in isolation.

    ``recorded`` maps ``(exchange_key, path_index-or-None)`` to the
    step proofs on offer (see :func:`record_step_proofs`).  Shared
    between the whole-proof checker and the engine's fragment reuse."""
    complaints: List[str] = []
    skip = recorded.get((ex.key, None))
    if isinstance(skip, SkippedExchange):
        body = ex.handler.body if ex.handler is not None else None
        if not exchange_statically_silent(
            [scheme.trigger], ex.ctype, ex.msg, body
        ):
            complaints.append(
                f"invalid syntactic skip of {ex.ctype}=>{ex.msg}"
            )
        return complaints
    for path_index, path in enumerate(ex.paths):
        path_proof = recorded.get((ex.key, path_index))
        if not isinstance(path_proof, PathProof):
            complaints.append(
                f"missing case for {ex.ctype}=>{ex.msg} "
                f"path {path_index}"
            )
            continue
        ctx = OccurrenceContext(
            step=step,
            scheme=scheme,
            actions=path.actions,
            cond=path.cond,
            lookup_facts=path.lookup_facts,
            has_history=True,
            sender=ex.sender,
        )
        complaints.extend(_check_occurrence_list(
            ctx, path_proof.occurrence_proofs,
            f"{ex.ctype}=>{ex.msg} path {path_index}",
        ))
    return complaints


def check_ni_proof(step: GenericStep, proof: NIProof) -> None:
    """Raise :class:`ProofCheckFailure` unless the NI record is valid."""
    complaints = ni_proof_complaints(step, proof)
    if complaints:
        raise ProofCheckFailure(
            f"NI record for {proof.prop.name} rejected: "
            + "; ".join(complaints)
        )


def ni_proof_complaints(step: GenericStep, proof: NIProof) -> List[str]:
    """All reasons the NI record fails to validate (empty = valid).

    For non-interference the conditions are established *directly* during
    search — "proof" and "check" coincide (module docstring of
    :mod:`repro.prover.ni`) — so re-running the search as a validation
    pass would buy no independence at twice the cost.  What an
    independent pass *can* establish cheaply is **coverage**: the base
    condition is re-derived outright (it is a syntactic scan of the Init
    state), and the record must carry exactly one verdict for every
    feasible ``(exchange, path, sender-label case)`` triple of the
    current abstraction, in the canonical order — no triple silently
    dropped, no verdict for a case that does not exist.  This is the
    pipeline's check stage for NI obligations, including ones loaded
    from the persistent proof store.
    """
    complaints: List[str] = []
    labeling = build_labeling(step, proof.prop)

    # Base condition: cheap enough to re-establish in full.
    try:
        expected_base = tuple(check_ni_base(step, labeling))
    except ProofSearchFailure as failure:
        return [f"base condition fails: {failure}"]
    if expected_base != proof.base_notes:
        complaints.append(
            "recorded base notes differ from the Init determinism check"
        )

    # Coverage: the exact feasible triples, in the canonical order.
    expected: List[tuple] = []
    for ex in step.exchanges:
        expected.extend(feasible_ni_triples(labeling, ex))
    recorded = [
        (v.exchange_key, v.path_index, v.case) for v in proof.verdicts
    ]
    if expected != recorded:
        expected_counts = Counter(expected)
        recorded_counts = Counter(recorded)
        for triple, count in expected_counts.items():
            if recorded_counts.get(triple, 0) < count:
                (ctype, msg), path_index, case = triple
                complaints.append(
                    f"missing NI verdict for {ctype}=>{msg} "
                    f"path {path_index} ({case} sender)"
                )
        for triple, count in recorded_counts.items():
            if expected_counts.get(triple, 0) < count:
                (ctype, msg), path_index, case = triple
                complaints.append(
                    f"NI verdict for {ctype}=>{msg} path {path_index} "
                    f"({case} sender) does not correspond to a feasible "
                    f"case"
                )
        if not complaints:
            complaints.append(
                "NI verdicts recorded out of canonical order"
            )
    return complaints


def _check_occurrence_list(ctx: OccurrenceContext, occurrence_proofs,
                           where: str) -> List[str]:
    complaints: List[str] = []
    expected = occurrences(ctx.scheme.trigger, ctx.actions)
    proved = {op.occurrence.index: op for op in occurrence_proofs}
    for occ in expected:
        op = proved.get(occ.index)
        if op is None:
            complaints.append(
                f"{where}: trigger occurrence at action #{occ.index} has "
                f"no justification"
            )
            continue
        if op.occurrence != occ:
            complaints.append(
                f"{where}: recorded occurrence at #{occ.index} differs "
                f"from the actual match"
            )
            continue
        for complaint in validate_justification(ctx, occ, op.justification):
            complaints.append(f"{where} action #{occ.index}: {complaint}")
    return complaints
