"""The independent proof checker.

The proof *search* is allowed to be arbitrarily buggy; the checker decides.
Given a program and a derivation it re-validates, without consulting the
search:

* **structure** — the derivation's scheme matches the property, and there
  is an occurrence proof for every trigger occurrence of the Init trace and
  of every symbolic path of every exchange (omissions are rejected);
* **skips** — syntactically skipped exchanges really are statically silent;
* **justifications** — every entailment, witness index, lookup bridge and
  invariant use re-checks against the solver, including the full secondary
  induction of every invariant proof.

The trusted base of the reproduction is therefore: the symbolic evaluator
(shared between search and checker — the analog of Coq's evaluation rules),
the solver, the matcher, and this module.  The search — the analog of the
paper's 1,768 lines of Ltac — is untrusted.
"""

from __future__ import annotations

from typing import List

from ..lang.errors import ProofCheckFailure
from ..props.spec import TraceProperty
from ..symbolic.behabs import GenericStep
from .derivation import (
    PathProof,
    SkippedExchange,
    TracePropertyProof,
)
from .obligations import exchange_statically_silent, occurrences, scheme_of
from .trace_tactics import OccurrenceContext, validate_justification


def check_trace_proof(step: GenericStep,
                      proof: TracePropertyProof) -> None:
    """Raise :class:`ProofCheckFailure` unless the derivation is valid."""
    complaints = trace_proof_complaints(step, proof)
    if complaints:
        raise ProofCheckFailure(
            f"derivation for {proof.property.name} rejected: "
            + "; ".join(complaints)
        )


def trace_proof_complaints(step: GenericStep,
                           proof: TracePropertyProof) -> List[str]:
    """All reasons the derivation fails to validate (empty = valid)."""
    complaints: List[str] = []
    prop = proof.property
    expected_scheme = scheme_of(prop)
    if proof.scheme != expected_scheme:
        complaints.append("derivation scheme does not match the property")
        return complaints
    scheme = expected_scheme

    # Base case coverage + justification validity.
    base_ctx = OccurrenceContext(
        step=step,
        scheme=scheme,
        actions=step.init.actions,
        cond=(),
        lookup_facts=(),
        has_history=False,
    )
    complaints.extend(_check_occurrence_list(
        base_ctx, proof.base.occurrence_proofs, "base case"
    ))

    # Inductive coverage.
    recorded = {}
    for sp in proof.steps:
        if isinstance(sp, SkippedExchange):
            recorded[(sp.exchange_key, None)] = sp
        elif isinstance(sp, PathProof):
            recorded[(sp.exchange_key, sp.path_index)] = sp
        else:
            complaints.append(f"unknown step proof {sp!r}")

    for ex in step.exchanges:
        skip = recorded.get((ex.key, None))
        if isinstance(skip, SkippedExchange):
            body = ex.handler.body if ex.handler is not None else None
            if not exchange_statically_silent(
                [scheme.trigger], ex.ctype, ex.msg, body
            ):
                complaints.append(
                    f"invalid syntactic skip of {ex.ctype}=>{ex.msg}"
                )
            continue
        for path_index, path in enumerate(ex.paths):
            path_proof = recorded.get((ex.key, path_index))
            if not isinstance(path_proof, PathProof):
                complaints.append(
                    f"missing case for {ex.ctype}=>{ex.msg} "
                    f"path {path_index}"
                )
                continue
            ctx = OccurrenceContext(
                step=step,
                scheme=scheme,
                actions=path.actions,
                cond=path.cond,
                lookup_facts=path.lookup_facts,
                has_history=True,
                sender=ex.sender,
            )
            complaints.extend(_check_occurrence_list(
                ctx, path_proof.occurrence_proofs,
                f"{ex.ctype}=>{ex.msg} path {path_index}",
            ))
    return complaints


def _check_occurrence_list(ctx: OccurrenceContext, occurrence_proofs,
                           where: str) -> List[str]:
    complaints: List[str] = []
    expected = occurrences(ctx.scheme.trigger, ctx.actions)
    proved = {op.occurrence.index: op for op in occurrence_proofs}
    for occ in expected:
        op = proved.get(occ.index)
        if op is None:
            complaints.append(
                f"{where}: trigger occurrence at action #{occ.index} has "
                f"no justification"
            )
            continue
        if op.occurrence != occ:
            complaints.append(
                f"{where}: recorded occurrence at #{occ.index} differs "
                f"from the actual match"
            )
            continue
        for complaint in validate_justification(ctx, occ, op.justification):
            complaints.append(f"{where} action #{occ.index}: {complaint}")
    return complaints
