"""The staged obligation pipeline: plan → search → check.

Verifying a property decomposes into three stages, each observable and
separately cacheable:

* **plan** — enumerate the property's :class:`Obligation` list against
  the program.  Planning is *syntactic*: a trace property is one
  obligation; an NI property is a base obligation plus one obligation per
  ``(component type, message)`` exchange of the kernel (read off
  ``Program.exchange_keys()`` — no symbolic step needed), which is what
  lets the parallel driver fan NI work out before any worker has built
  the :class:`~repro.symbolic.behabs.GenericStep`.
* **search** — discharge one obligation, emitting a derivation fragment
  (a :class:`~repro.prover.derivation.TracePropertyProof`, the NI base
  notes, or one exchange's :class:`~repro.prover.ni.PathVerdict` group).
* **check** — validate the assembled derivation through
  :mod:`repro.prover.checker`, independently of how it was found.

Every obligation carries a stable content-addressed ``key`` (program AST
+ property + derivation-relevant options + part, see
:mod:`repro.prover.proofstore`), which is the identity under which the
persistent proof store files its result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from .. import obs
from ..lang.errors import ProofSearchFailure
from ..props.spec import NonInterference, Property, TraceProperty
from .proofstore import digest, obligation_key

#: Obligation kinds, in the order they are planned.
TRACE = "trace"
NI_BASE = "ni-base"
NI_EXCHANGE = "ni-exchange"


@dataclass(frozen=True)
class Obligation:
    """One independently dischargeable unit of proof work.

    ``part`` is ``None`` for whole-property obligations (a trace property,
    the NI base condition) and an exchange key ``(ctype, msg)`` for one
    NI exchange.  ``key`` is the obligation's content address.
    """

    kind: str  # TRACE | NI_BASE | NI_EXCHANGE
    property_name: str
    key: str
    part: Optional[Tuple[str, str]] = None

    def __str__(self) -> str:
        where = f" {self.part[0]}=>{self.part[1]}" if self.part else ""
        return f"{self.kind}:{self.property_name}{where} [{self.key[:12]}]"


def plan_property(program: object, prop: Property, options: object,
                  program_digest: Optional[str] = None,
                  key_for: Optional[
                      Callable[[Optional[Tuple[str, str]]], str]
                  ] = None) -> Tuple[Obligation, ...]:
    """Enumerate the obligations of ``prop`` against ``program``.

    ``program_digest`` (the :func:`repro.prover.proofstore.digest` of the
    program AST) may be passed in to avoid re-fingerprinting the program
    for every property; it is computed on demand otherwise.  ``key_for``
    may supply a memoized obligation-key computation (the compiled plan's
    key table — see :mod:`repro.symbolic.compile`); it must return
    exactly what :func:`~repro.prover.proofstore.obligation_key` would.
    """
    if key_for is None:
        if program_digest is None:
            program_digest = digest(program)
        pd = program_digest

        def key_for(part: Optional[Tuple[str, str]]) -> str:
            return obligation_key(pd, prop, options, part)

    if isinstance(prop, TraceProperty):
        obs.incr("plan.obligations")
        return (Obligation(TRACE, prop.name, key_for(None)),)
    if isinstance(prop, NonInterference):
        planned = [Obligation(NI_BASE, prop.name, key_for(None))]
        for part in program.exchange_keys():
            planned.append(Obligation(
                NI_EXCHANGE, prop.name, key_for(part), part,
            ))
        obs.incr("plan.obligations", len(planned))
        return tuple(planned)
    raise ProofSearchFailure(f"unknown property form {prop!r}")
