"""A shared read-only arena for pool workers.

``verify_all(jobs=N)`` used to make every worker rebuild the symbolic
:class:`~repro.symbolic.behabs.GenericStep` from scratch — the single
most expensive piece of per-worker start-up.  The parent now serializes
one snapshot (the step built by the compiled plan, plus the plan's hot
obligation results, keyed by the kernel's content digest) into a shared
read-only arena; workers attach, copy the bytes out, and unpickle into
their own fresh intern table instead of re-deriving everything.

Two backings, tried in order:

* ``multiprocessing.shared_memory`` — a named POSIX segment; zero
  filesystem traffic.  With the preferred ``fork`` pool context every
  process shares the parent's resource tracker, whose registry is a
  set — worker attachments are idempotent re-registrations, and the
  parent's ``unlink`` retires the name exactly once.
* a temporary file — the fallback when shared memory is unavailable
  (some containers mount no ``/dev/shm``).

The arena is an optimization, never a correctness dependency: any
failure to create, attach, or decode degrades to the legacy per-worker
rebuild.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional, Tuple

#: ``("shm", name, size)`` or ``("file", path, size)``.
ArenaRef = Tuple[str, str, int]


class SharedArena:
    """One read-only blob shared with pool workers.

    Created (and eventually unlinked) by the parent; workers use the
    :func:`load` module function with the picklable :data:`ArenaRef`.
    """

    def __init__(self, ref: ArenaRef, shm: Optional[object]) -> None:
        self.ref = ref
        self._shm = shm

    @classmethod
    def create(cls, data: bytes) -> "SharedArena":
        """Publish ``data``; raises :class:`OSError` when neither
        backing works."""
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=max(1, len(data))
            )
        except Exception:  # noqa: BLE001 - fall back to a temp file
            return cls._create_file(data)
        try:
            shm.buf[: len(data)] = data
        except Exception:  # noqa: BLE001 - never leak the segment
            shm.close()
            try:
                shm.unlink()
            except OSError:
                pass
            return cls._create_file(data)
        return cls(("shm", shm.name, len(data)), shm)

    @classmethod
    def _create_file(cls, data: bytes) -> "SharedArena":
        handle, path = tempfile.mkstemp(prefix="repro-arena-",
                                        suffix=".bin")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
        except Exception:
            try:
                os.unlink(path)
            except OSError:
                pass
            raise
        return cls(("file", path, len(data)), None)

    def close(self) -> None:
        """Release the arena (parent side, after the last generation)."""
        backing, name, _size = self.ref
        if backing == "shm" and self._shm is not None:
            try:
                self._shm.close()
            except Exception:  # noqa: BLE001
                pass
            try:
                self._shm.unlink()
            except Exception:  # noqa: BLE001 - already gone
                pass
            self._shm = None
        elif backing == "file":
            try:
                os.unlink(name)
            except OSError:
                pass


def load(ref: ArenaRef) -> bytes:
    """Copy the arena bytes out (worker side).  Raises on any failure;
    callers degrade to the legacy rebuild."""
    backing, name, size = ref
    if backing == "shm":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:
            return bytes(shm.buf[:size])
        finally:
            shm.close()
    if backing == "file":
        with open(name, "rb") as stream:
            data = stream.read(size)
        if len(data) != size:
            raise OSError(f"arena file truncated: {len(data)} < {size}")
        return data
    raise ValueError(f"unknown arena backing {backing!r}")
