"""Human-readable proof explanations.

A derivation is precise but dense; this module renders it as the argument
a colleague would give at a whiteboard: which exchanges matter, why each
trigger occurrence is fine, and — for the interesting cases — which
inductive invariant carries the history reasoning.  Exposed through the
CLI as ``repro verify --explain``.

The explainer is *presentation only*: it reads a checked derivation and
never influences verification.
"""

from __future__ import annotations

from typing import List

from ..props.spec import NonInterference, TraceProperty
from .derivation import (
    AbsenceInvariant,
    BoundedBridge,
    EarlierWitness,
    EmptyHistory,
    FoundBridge,
    HistoryInvariant,
    ImmWitness,
    InvariantProof,
    LaterWitness,
    MissingBridge,
    NoPriorMatch,
    PathProof,
    SenderChain,
    SkippedExchange,
    TracePropertyProof,
    Vacuous,
)
from .engine import PropertyResult, VerificationReport
from .ni import NIProof

_MODE_STORY = {
    "imm_before": "every occurrence must be immediately preceded by",
    "imm_after": "every occurrence must be immediately followed by",
    "before": "every occurrence must be preceded (somewhere earlier) by",
    "after": "every occurrence must be followed (within the same handler) "
             "by",
    "never_before": "no occurrence may be preceded by",
}


def explain_trace_proof(proof: TracePropertyProof) -> str:
    """Render one trace-property derivation as prose."""
    prop = proof.property
    lines = [
        f"{prop.name}: [{prop.a}] {prop.primitive} [{prop.b}]",
        f"  trigger {proof.scheme.trigger}; "
        f"{_MODE_STORY[proof.scheme.mode]} {proof.scheme.required}.",
    ]
    if proof.base.occurrence_proofs:
        lines.append("  base case (the Init trace):")
        for op in proof.base.occurrence_proofs:
            lines.append(
                f"    action #{op.occurrence.index}: "
                f"{_justification_story(op.justification)}"
            )
    else:
        lines.append("  base case: Init emits no trigger — nothing to "
                     "show.")

    skipped = [s for s in proof.steps if isinstance(s, SkippedExchange)]
    detailed = [s for s in proof.steps if isinstance(s, PathProof)]
    if skipped:
        keys = sorted({s.exchange_key for s in skipped})
        shown = ", ".join(f"{c}=>{m}" for c, m in keys[:6])
        if len(keys) > 6:
            shown += f", ... and {len(keys) - 6} more"
        lines.append(
            f"  {len(skipped)} exchange(s) discharged syntactically (they "
            f"cannot emit the trigger): {shown}."
        )
    interesting = [
        s for s in detailed if any(
            not isinstance(op.justification, Vacuous)
            for op in s.occurrence_proofs
        )
    ]
    boring = len(detailed) - len(interesting)
    if boring:
        lines.append(f"  {boring} analyzed path(s) have no feasible "
                     f"trigger occurrence.")
    for step in interesting:
        ctype, msg = step.exchange_key
        lines.append(f"  in {ctype}=>{msg} (path {step.path_index}):")
        for op in step.occurrence_proofs:
            lines.append(
                f"    trigger at action #{op.occurrence.index}: "
                f"{_justification_story(op.justification)}"
            )
    return "\n".join(lines)


def _justification_story(justification) -> str:
    if isinstance(justification, Vacuous):
        return "infeasible — the match contradicts the branch conditions."
    if isinstance(justification, ImmWitness):
        return (f"the adjacent action (#{justification.witness_index}) is "
                f"the required one.")
    if isinstance(justification, EarlierWitness):
        return (f"the handler already emitted the required action at "
                f"#{justification.witness_index}.")
    if isinstance(justification, LaterWitness):
        return (f"the handler goes on to emit the required action at "
                f"#{justification.witness_index}.")
    if isinstance(justification, FoundBridge):
        return ("the target was found by lookup, so its spawn — which "
                "matches the required pattern — already happened.")
    if isinstance(justification, HistoryInvariant):
        return ("by the inductive invariant: "
                + _invariant_story(justification.proof) + ".")
    if isinstance(justification, SenderChain):
        lemma = justification.lemma.property
        return ("by chaining through the sender's own creation: the "
                f"sender is in the component set, so it was spawned, and "
                f"the lemma [{lemma.a}] Enables [{lemma.b}] puts the "
                f"required action before that spawn's consequences.")
    if isinstance(justification, NoPriorMatch):
        return _no_prior_story(justification)
    return str(justification)


def _no_prior_story(justification: NoPriorMatch) -> str:
    parts: List[str] = []
    if justification.refuted_indices:
        parts.append(
            f"earlier same-handler candidates at "
            f"{list(justification.refuted_indices)} are refuted by the "
            f"branch conditions"
        )
    history = justification.history
    if isinstance(history, EmptyHistory):
        parts.append("and there is no earlier trace at the base case")
    elif isinstance(history, MissingBridge):
        parts.append(
            "and the lookup observed no matching component, so no "
            "matching spawn can be anywhere in the trace"
        )
    elif isinstance(history, BoundedBridge):
        spec = history.proof.spec
        parts.append(
            f"and every earlier Spawn({spec.ctype}) sits strictly below "
            f"the monotone counter {spec.bound_var}, which the new value "
            f"meets"
        )
    elif isinstance(history, AbsenceInvariant):
        parts.append("by the inductive invariant: "
                     + _invariant_story(history.proof))
    if not parts:
        return "trivially."
    return "; ".join(parts) + "."


def _invariant_story(proof: InvariantProof) -> str:
    spec = proof.spec
    guard = " and ".join(str(g) for g in spec.guard) or "always"
    what = ("the trace already contains an action matching"
            if spec.kind == "history"
            else "the trace contains no action matching")
    cases = {}
    for _key, _idx, case in proof.cases:
        cases[type(case).__name__] = cases.get(type(case).__name__, 0) + 1
    case_summary = ", ".join(
        f"{count}× {name.replace('Case', '').lower()}"
        for name, count in sorted(cases.items())
    )
    return (
        f"whenever [{guard}], {what} {spec.inst} — "
        f"proved by a secondary induction ({case_summary})"
    )


def explain_ni_proof(proof: NIProof) -> str:
    """Render a non-interference check as prose."""
    prop = proof.prop
    pats = ", ".join(str(p) for p in prop.high_patterns)
    quant = (f"for every {', '.join(prop.params)}: "
             if prop.params else "")
    lines = [
        f"{prop.name}: {quant}components matching [{pats}] are isolated "
        f"from everything else"
        + (f" (high variables: {sorted(prop.high_vars)})"
           if prop.high_vars else ""),
        "  Init gives every high variable and high component a "
        "deterministic value.",
    ]
    lows = [v for v in proof.verdicts if v.case == "low"]
    highs = [v for v in proof.verdicts if v.case == "high"]
    lines.append(
        f"  NIlo: across {len(lows)} low path case(s), no send or spawn "
        f"can target a high component and no high variable changes."
    )
    lines.append(
        f"  NIhi: across {len(highs)} high path case(s), every branch "
        f"decision and every high-visible output is built from shared "
        f"data (payloads, the sender, high state, call results)."
    )
    noted = sorted({
        note for v in proof.verdicts for note in v.notes
        if "high-only" in note
    })
    for note in noted:
        lines.append(f"    - {note}")
    return "\n".join(lines)


def explain_result(result: PropertyResult) -> str:
    """Explain one verification result (proved or failed)."""
    if not result.proved:
        lines = [f"{result.property.name}: NOT PROVED — {result.error}"]
        if result.counterexample is not None:
            lines.append(str(result.counterexample))
        return "\n".join(lines)
    if isinstance(result.proof, TracePropertyProof):
        return explain_trace_proof(result.proof)
    if isinstance(result.proof, NIProof):
        return explain_ni_proof(result.proof)
    return str(result)


def explain_report(report: VerificationReport) -> str:
    """Explain every result of a report."""
    chunks = [f"=== {report.program_name} ==="]
    chunks.extend(explain_result(r) for r in report.results)
    return "\n\n".join(chunks)
