"""Proof automation for the five trace primitives (paper section 5.1).

The tactic performs induction over BehAbs: the base case covers the Init
trace, the inductive case covers every symbolic path of every exchange.
Within each case it enumerates *trigger occurrences* and justifies each one
(see :mod:`repro.prover.derivation` for the justification algebra), using
the solver for entailments, ``lookup`` facts bridged through the
component-set/Spawn correspondence, and secondary-induction invariants from
:mod:`repro.prover.invariants`.

Both the search (:func:`prove_trace_property`) and the checker share
:func:`validate_justification`: the search proposes, validation decides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .. import obs
from ..lang.errors import ProofSearchFailure
from ..props.patterns import SpawnPat
from ..props.spec import TraceProperty
from ..symbolic.behabs import Exchange, GenericStep
from ..symbolic.expr import FreshNames, SComp, Term
from ..symbolic.seval import FoundFact, MissingFact, SymPath, eval_sexpr
from ..symbolic.solver import Facts, extend_facts
from ..symbolic.templates import Template
from ..symbolic.unify import match_comp_term, match_template
from .derivation import (
    AbsenceInvariant,
    BaseProof,
    BoundedBridge,
    BoundedProof,
    BoundedSpec,
    EarlierWitness,
    EmptyHistory,
    FoundBridge,
    HistoryInvariant,
    ImmWitness,
    InvariantProof,
    InvariantSpec,
    Justification,
    LaterWitness,
    MissingBridge,
    NoPriorMatch,
    OccurrenceProof,
    PathProof,
    SenderChain,
    SkippedExchange,
    StepProof,
    TracePropertyProof,
    Vacuous,
)
from .invariants import generalization_instantiation, generalize, instantiate
from .obligations import (
    Occurrence,
    Scheme,
    exchange_statically_silent,
    occurrences,
    scheme_of,
)

#: Supplied by the engine: proves (with caching) an invariant spec.
InvariantProver = Callable[[InvariantSpec], InvariantProof]
#: Supplied by the engine: proves (with caching) a bounded-counter spec.
BoundedProver = Callable[[BoundedSpec], BoundedProof]


@dataclass
class TacticContext:
    """The search's environment: the inductive step, the (cached) provers
    for auxiliary invariants, and a recursion budget for chained lemmas."""

    step: GenericStep
    invariant_prover: InvariantProver
    bounded_prover: BoundedProver
    syntactic_skip: bool = True
    lemma_depth: int = 2
    _depth: int = 0


@dataclass(frozen=True)
class OccurrenceContext:
    """Everything needed to justify or validate one occurrence."""

    step: GenericStep
    scheme: Scheme
    actions: Tuple[Template, ...]
    cond: Tuple[Term, ...]
    #: lookup facts of the surrounding path (empty at the base case)
    lookup_facts: Tuple[object, ...]
    #: False at the base case: there is no pre-state trace
    has_history: bool
    #: the exchange's sender component term (None at the base case)
    sender: Optional[SComp] = None

    def occurrence_facts(self, occ: Occurrence) -> Facts:
        """Solver facts: path condition plus the occurrence's match
        constraints.

        Paths sharing a condition prefix (the common case after ``dnf``)
        reuse the prefix-cached :class:`Facts` instead of re-asserting
        every literal from scratch.
        """
        return extend_facts(self.cond, occ.match.constraints)


# ---------------------------------------------------------------------------
# Search
# ---------------------------------------------------------------------------


def prove_trace_property(
    tc: TacticContext,
    prop: TraceProperty,
) -> TracePropertyProof:
    """Find a derivation for ``prop`` or raise :class:`ProofSearchFailure`."""
    scheme = scheme_of(prop)
    base = prove_trace_base(tc, prop, scheme)
    steps: List[StepProof] = []
    for ex in tc.step.exchanges:
        steps.extend(prove_trace_exchange(tc, prop, scheme, ex))
    return TracePropertyProof(
        property=prop, scheme=scheme, base=base, steps=tuple(steps),
    )


def prove_trace_base(tc: TacticContext, prop: TraceProperty,
                     scheme: Scheme) -> BaseProof:
    """The base case of the induction: justify every trigger occurrence
    of the Init trace (one storable derivation fragment)."""
    step = tc.step
    base_ctx = OccurrenceContext(
        step=step,
        scheme=scheme,
        actions=step.init.actions,
        cond=(),
        lookup_facts=(),
        has_history=False,
    )
    base_proofs = []
    for occ in occurrences(scheme.trigger, step.init.actions):
        try:
            base_proofs.append(OccurrenceProof(
                occ, _justify(tc, base_ctx, occ)
            ))
        except ProofSearchFailure as failure:
            from .counterexample import build_candidate

            candidate = failure.counterexample or build_candidate(
                exchange_name="Init",
                cond=(),
                match_constraints=occ.match.constraints,
                actions=step.init.actions,
                trigger_index=occ.index,
                reason=str(failure),
            )
            raise ProofSearchFailure(
                f"property {prop.name}: cannot justify {occ} in the Init "
                f"trace (base case): {failure}",
                residual=list(failure.residual),
                counterexample=candidate,
            ) from failure
    return BaseProof(tuple(base_proofs))


def prove_trace_exchange(tc: TacticContext, prop: TraceProperty,
                         scheme: Scheme,
                         ex: Exchange) -> List[StepProof]:
    """The inductive case for one exchange: a syntactic skip, or one
    :class:`PathProof` per symbolic path (one storable fragment)."""
    step = tc.step
    body = ex.handler.body if ex.handler is not None else None
    if tc.syntactic_skip and exchange_statically_silent(
        [scheme.trigger], ex.ctype, ex.msg, body
    ):
        obs.incr("tactic.exchange.skipped")
        return [SkippedExchange(
            ex.key, "trigger cannot match anything this exchange emits"
        )]
    obs.incr("tactic.exchange.expanded")
    steps: List[StepProof] = []
    for path_index, path in enumerate(ex.paths):
        obs.incr("tactic.path")
        ctx = OccurrenceContext(
            step=step,
            scheme=scheme,
            actions=path.actions,
            cond=path.cond,
            lookup_facts=path.lookup_facts,
            has_history=True,
            sender=ex.sender,
        )
        proofs = []
        for occ in occurrences(scheme.trigger, path.actions):
            try:
                proofs.append(OccurrenceProof(
                    occ, _justify(tc, ctx, occ)
                ))
            except ProofSearchFailure as failure:
                from .counterexample import build_candidate

                candidate = failure.counterexample or build_candidate(
                    exchange_name=f"{ex.ctype}=>{ex.msg}",
                    cond=path.cond,
                    match_constraints=occ.match.constraints,
                    actions=path.actions,
                    trigger_index=occ.index,
                    reason=str(failure),
                )
                raise ProofSearchFailure(
                    f"property {prop.name}: cannot justify {occ} in "
                    f"{ex.ctype}=>{ex.msg} path {path_index}: {failure}",
                    residual=[str(path)] + list(failure.residual),
                    counterexample=candidate,
                ) from failure
        steps.append(PathProof(ex.key, path_index, tuple(proofs)))
    return steps


def _justify(tc: TacticContext, ctx: OccurrenceContext,
             occ: Occurrence) -> Justification:
    facts = ctx.occurrence_facts(occ)
    if facts.inconsistent():
        return Vacuous("match condition contradicts path condition")
    mode = ctx.scheme.mode
    if mode == "imm_before":
        return _justify_imm(ctx, occ, facts, offset=-1)
    if mode == "imm_after":
        return _justify_imm(ctx, occ, facts, offset=+1)
    if mode == "before":
        return _justify_before(tc, ctx, occ, facts)
    if mode == "after":
        return _justify_after(ctx, occ, facts)
    return _justify_never_before(tc, ctx, occ, facts)


def _entailed_required_match(ctx: OccurrenceContext, occ: Occurrence,
                             facts: Facts, index: int) -> bool:
    m = match_template(ctx.scheme.required, ctx.actions[index],
                       occ.match.binding_dict())
    if m is None:
        return False
    results = facts.implies_all(m.constraints, stop_on_failure=True)
    return len(results) == len(m.constraints) and all(results)


def _justify_imm(ctx: OccurrenceContext, occ: Occurrence, facts: Facts,
                 offset: int) -> Justification:
    where = occ.index + offset
    direction = "before" if offset < 0 else "after"
    if not 0 <= where < len(ctx.actions):
        if offset < 0 and ctx.has_history:
            raise ProofSearchFailure(
                "the action immediately before the trigger lies in the "
                "opaque pre-state trace"
            )
        raise ProofSearchFailure(
            f"no action immediately {direction} the trigger"
        )
    if _entailed_required_match(ctx, occ, facts, where):
        return ImmWitness(where)
    raise ProofSearchFailure(
        f"action immediately {direction} the trigger "
        f"({ctx.actions[where]}) does not match {ctx.scheme.required}"
    )


def _justify_after(ctx: OccurrenceContext, occ: Occurrence,
                   facts: Facts) -> Justification:
    for j in range(occ.index + 1, len(ctx.actions)):
        if _entailed_required_match(ctx, occ, facts, j):
            return LaterWitness(j)
    raise ProofSearchFailure(
        f"no action after the trigger matches {ctx.scheme.required} "
        f"(Ensures obligations must be met within the same handler, since "
        f"the property must hold at every reachable state)"
    )


def _justify_before(tc: TacticContext, ctx: OccurrenceContext,
                    occ: Occurrence, facts: Facts) -> Justification:
    for j in range(occ.index):
        if _entailed_required_match(ctx, occ, facts, j):
            return EarlierWitness(j)

    required = ctx.scheme.required
    if isinstance(required, SpawnPat):
        for fact_index, fact in enumerate(ctx.lookup_facts):
            if not isinstance(fact, FoundFact):
                continue
            if fact.at_index > occ.index:
                continue
            m = match_comp_term(required.comp, fact.comp,
                                occ.match.binding_dict())
            if m is not None and all(facts.implies(c) for c in m.constraints):
                return FoundBridge(fact_index)

    if ctx.has_history:
        justification = _try_invariant(tc, ctx, occ, facts, kind="history")
        if justification is not None:
            return justification
        justification = _try_sender_chain(tc, ctx, occ, facts)
        if justification is not None:
            return justification
    raise ProofSearchFailure(
        f"no earlier action matches {required}, no lookup bridge applies, "
        f"and no guard-implies-history invariant could be inferred"
    )


def _justify_never_before(tc: TacticContext, ctx: OccurrenceContext,
                          occ: Occurrence, facts: Facts) -> Justification:
    required = ctx.scheme.required
    binding = occ.match.binding_dict()
    refuted: List[int] = []
    for j in range(occ.index):
        m = match_template(required, ctx.actions[j], binding)
        if m is None:
            continue
        probe = facts.copy()
        for c in m.constraints:
            probe.assert_term(c)
        if probe.inconsistent():
            refuted.append(j)
        else:
            raise ProofSearchFailure(
                f"action #{j} ({ctx.actions[j]}) earlier in the same "
                f"handler may match the forbidden pattern {required}"
            )

    if not ctx.has_history:
        return NoPriorMatch(tuple(refuted), EmptyHistory())

    if isinstance(required, SpawnPat):
        bridge = _find_missing_bridge(ctx, occ, facts)
        if bridge is not None:
            return NoPriorMatch(tuple(refuted), bridge)
        bounded = _find_bounded_bridge(tc, ctx, occ, facts)
        if bounded is not None:
            return NoPriorMatch(tuple(refuted), bounded)

    justification = _try_invariant(tc, ctx, occ, facts, kind="absence")
    if justification is not None:
        return NoPriorMatch(tuple(refuted), justification)
    raise ProofSearchFailure(
        f"cannot show the pre-state trace contains no action matching "
        f"{required}: no lookup-missing bridge, no bounded-counter bridge, "
        f"and no absence invariant"
    )


def _find_missing_bridge(ctx: OccurrenceContext, occ: Occurrence,
                         facts: Facts) -> Optional[MissingBridge]:
    for fact_index, fact in enumerate(ctx.lookup_facts):
        if not isinstance(fact, MissingFact):
            continue
        if missing_fact_covers(ctx, occ, facts, fact):
            return MissingBridge(fact_index)
    return None


def missing_fact_covers(ctx: OccurrenceContext, occ: Occurrence,
                        facts: Facts, fact: MissingFact) -> bool:
    """Does "no component of ``fact.ctype`` satisfies ``fact.pred``" rule
    out every component the forbidden spawn pattern could describe?

    We take an arbitrary candidate component of the type, assume it matches
    the (σ-instantiated) pattern, and require the lookup predicate to follow
    — then the missing fact excludes it from the component set, and the
    component-set/Spawn correspondence excludes the spawn from the trace.
    """
    required = ctx.scheme.required
    if not isinstance(required, SpawnPat):
        return False
    if fact.ctype != required.comp.ctype:
        return False
    decl = ctx.step.info.comp_table[fact.ctype]
    fresh = FreshNames()
    candidate = SComp(
        label="candidate",
        ctype=fact.ctype,
        config=tuple(
            fresh.var(f"cand_{f.name}", f.type, "config")
            for f in decl.config
        ),
        origin="lookup",
        seq=0,
    )
    m = match_comp_term(required.comp, candidate, occ.match.binding_dict())
    if m is None:
        return False
    probe = facts.copy()
    for c in m.constraints:
        probe.assert_term(c)
    pred_term = eval_sexpr(
        fact.pred, dict(fact.env), {fact.bind: candidate}, fact.sender,
        ctx.step.info,
    )
    return probe.implies(pred_term)


def _try_invariant(tc: TacticContext, ctx: OccurrenceContext,
                   occ: Occurrence, facts: Facts, kind: str):
    cube = tuple(ctx.cond) + occ.match.constraints
    spec = generalize(ctx.scheme.required, occ.match.binding_dict(), cube,
                      kind)
    if spec is None:
        return None
    instantiation = generalization_instantiation(
        spec, occ.match.binding_dict(), cube
    )
    for candidate in _guard_variants(spec):
        try:
            proof = tc.invariant_prover(candidate)
        except ProofSearchFailure:
            continue
        # The weakened guard must still hold at the occurrence (weakening
        # can only help, but re-check to keep the search honest).
        applied = instantiate(candidate.guard, instantiation)
        if not all(facts.implies(g) for g in applied):
            continue
        if kind == "history":
            return HistoryInvariant(proof, instantiation)
        return AbsenceInvariant(proof, instantiation)
    return None


def _guard_variants(spec: InvariantSpec) -> List[InvariantSpec]:
    """The exact guard first, then the eq→le weakening of its numeric
    equalities.

    The weakening matters for counting properties: "no second attempt has
    been forwarded" is inductive as ``attempts <= 1``, not as
    ``attempts == 1`` (the handler that *establishes* ``attempts == 1`` is
    only covered by the weaker guard).
    """
    from dataclasses import replace

    from ..lang import types as lang_types
    from ..symbolic.expr import SConst, SOp
    from ..symbolic.simplify import term_type

    variants = [spec]
    weakened = []
    changed = False
    for literal in spec.guard:
        if (
            isinstance(literal, SOp) and literal.op == "eq"
            and isinstance(literal.args[1], SConst)
            and term_type(literal.args[0]) == lang_types.NUM
        ):
            weakened.append(SOp("le", literal.args))
            changed = True
        else:
            weakened.append(literal)
    if changed:
        variants.append(replace(spec, guard=tuple(weakened)))
    return variants


# ---------------------------------------------------------------------------
# Bounded-counter bridge
# ---------------------------------------------------------------------------


def spawn_pattern_field_terms(required: SpawnPat, binding) -> List[tuple]:
    """(config index, pinned term) pairs of a spawn pattern under a
    binding: the positions the forbidden/required spawn constrains."""
    from ..props.patterns import PLit, PVar
    from ..symbolic.expr import lift_value

    if required.comp.config is None:
        return []
    pins: List[tuple] = []
    for k, fp in enumerate(required.comp.config):
        if isinstance(fp, PLit):
            pins.append((k, lift_value(fp.value)))
        elif isinstance(fp, PVar) and fp.name in binding:
            pins.append((k, binding[fp.name]))
    return pins


def _find_bounded_bridge(tc: TacticContext, ctx: OccurrenceContext,
                         occ: Occurrence,
                         facts: Facts) -> Optional[BoundedBridge]:
    from ..lang import types as lang_types
    from ..symbolic.expr import SOp, SVar
    from ..symbolic.simplify import term_type

    required = ctx.scheme.required
    if not isinstance(required, SpawnPat):
        return None
    binding = occ.match.binding_dict()
    for k, term in spawn_pattern_field_terms(required, binding):
        if term_type(term) != lang_types.NUM:
            continue
        for _name, pre_term in ctx.step.pre_env:
            if not isinstance(pre_term, SVar) \
                    or pre_term.type != lang_types.NUM:
                continue
            if not facts.implies(SOp("le", (pre_term, term))):
                continue
            spec = BoundedSpec(required.comp.ctype, k, pre_term)
            try:
                proof = tc.bounded_prover(spec)
            except ProofSearchFailure:
                continue
            return BoundedBridge(proof, term)
    return None


# ---------------------------------------------------------------------------
# Sender-spawn chain
# ---------------------------------------------------------------------------


def _chain_field_map(ctx: OccurrenceContext, binding) -> Optional[tuple]:
    """Split the trigger binding into (variable → sender config index) and
    (variable → constant); None when some variable is bound to anything
    else (chaining inapplicable)."""
    from ..symbolic.expr import SConst

    if ctx.sender is None:
        return None
    field_map: List[tuple] = []
    constants: List[tuple] = []
    used_indices = set()
    for var_name, term in sorted(binding.items()):
        if isinstance(term, SConst):
            constants.append((var_name, term))
            continue
        index = None
        for k, cfg in enumerate(ctx.sender.config):
            if cfg == term:
                index = k
                break
        if index is None or index in used_indices:
            return None
        used_indices.add(index)
        field_map.append((var_name, index))
    return tuple(field_map), tuple(constants)


def build_chain_lemma(ctx: OccurrenceContext, binding) -> Optional[tuple]:
    """Construct the auxiliary lemma ``[A'] Enables [Spawn(Sender(..))]``
    for the sender chain, or None when inapplicable.

    Returns ``(lemma_property, field_map)``.
    """
    from ..props.patterns import CompPat, PLit, PVar, PWild
    from ..props.spec import TraceProperty

    split = _chain_field_map(ctx, binding)
    if split is None:
        return None
    field_map, constants = split
    if not field_map:
        return None  # nothing links the trigger to the sender's identity
    const_map = {name: term for name, term in constants}
    rewritten = _pattern_with_constants(ctx.scheme.required, const_map)
    if rewritten is None:
        return None
    decl = ctx.step.info.comp_table[ctx.sender.ctype]
    by_index = {k: name for name, k in field_map}
    spawn_fields = tuple(
        PVar(by_index[k]) if k in by_index else PWild()
        for k in range(len(decl.config))
    )
    lemma = TraceProperty(
        name=f"__chain_{ctx.sender.ctype}",
        primitive="Enables",
        a=rewritten,
        b=SpawnPat(CompPat(ctx.sender.ctype, spawn_fields)),
        description="auxiliary sender-spawn chain lemma",
    )
    return lemma, field_map


def _pattern_with_constants(pattern, const_map):
    """Replace constant-bound variables in an action pattern by literals;
    None when a constant is not a plain value (tuples never occur in
    pattern fields)."""
    from ..props.patterns import (
        CallPat, CompPat, MsgPat, PLit, PVar, RecvPat, SelectPat, SendPat,
        SpawnPat,
    )
    from ..symbolic.expr import SConst

    def field(fp):
        if isinstance(fp, PVar) and fp.name in const_map:
            term = const_map[fp.name]
            if not isinstance(term, SConst):
                return None
            return PLit(term.value)
        return fp

    def fields(fps):
        out = []
        for fp in fps:
            rewritten = field(fp)
            if rewritten is None:
                return None
            out.append(rewritten)
        return tuple(out)

    def comp(cp: CompPat):
        if cp.config is None:
            return cp
        new = fields(cp.config)
        if new is None:
            return None
        return CompPat(cp.ctype, new)

    if isinstance(pattern, (SendPat, RecvPat)):
        new_comp = comp(pattern.comp)
        new_payload = fields(pattern.msg.payload)
        if new_comp is None or new_payload is None:
            return None
        return type(pattern)(new_comp,
                             MsgPat(pattern.msg.name, new_payload))
    if isinstance(pattern, (SpawnPat, SelectPat)):
        new_comp = comp(pattern.comp)
        if new_comp is None:
            return None
        return type(pattern)(new_comp)
    if isinstance(pattern, CallPat):
        new_args = fields(pattern.args)
        new_result = field(pattern.result)
        if new_args is None or new_result is None:
            return None
        return CallPat(pattern.func, new_args, new_result)
    return None


def _try_sender_chain(tc: TacticContext, ctx: OccurrenceContext,
                      occ: Occurrence,
                      facts: Facts) -> Optional[SenderChain]:
    if ctx.sender is None or tc._depth >= tc.lemma_depth:
        return None
    if any(c.ctype == ctx.sender.ctype for c in ctx.step.init.comps):
        return None  # an Init component of this type needs no spawn
    built = build_chain_lemma(ctx, occ.match.binding_dict())
    if built is None:
        return None
    lemma, field_map = built
    inner = TacticContext(
        step=tc.step,
        invariant_prover=tc.invariant_prover,
        bounded_prover=tc.bounded_prover,
        syntactic_skip=tc.syntactic_skip,
        lemma_depth=tc.lemma_depth,
        _depth=tc._depth + 1,
    )
    try:
        lemma_proof = prove_trace_property(inner, lemma)
    except ProofSearchFailure:
        return None
    return SenderChain(lemma_proof, field_map)


# ---------------------------------------------------------------------------
# Validation (shared with the checker)
# ---------------------------------------------------------------------------


def validate_justification(ctx: OccurrenceContext, occ: Occurrence,
                           justification: Justification) -> List[str]:
    """Re-check one occurrence proof; returns complaints (empty = valid)."""
    from .invariants import validate_invariant

    facts = ctx.occurrence_facts(occ)
    if isinstance(justification, Vacuous):
        if not facts.inconsistent():
            return ["claimed vacuous but the occurrence is feasible"]
        return []
    if facts.inconsistent():
        return []  # any justification is acceptable for an infeasible case

    mode = ctx.scheme.mode
    if isinstance(justification, ImmWitness):
        expected = occ.index + (-1 if mode == "imm_before" else +1)
        if mode not in ("imm_before", "imm_after"):
            return [f"ImmWitness used for mode {mode}"]
        if justification.witness_index != expected:
            return ["ImmWitness must point at the adjacent action"]
        if not _entailed_required_match(ctx, occ, facts, expected):
            return ["adjacent action does not match the required pattern"]
        return []
    if isinstance(justification, EarlierWitness):
        j = justification.witness_index
        if mode != "before" or not 0 <= j < occ.index:
            return ["EarlierWitness index out of range or wrong mode"]
        if not _entailed_required_match(ctx, occ, facts, j):
            return ["claimed earlier witness does not match"]
        return []
    if isinstance(justification, LaterWitness):
        j = justification.witness_index
        if mode != "after" or not occ.index < j < len(ctx.actions):
            return ["LaterWitness index out of range or wrong mode"]
        if not _entailed_required_match(ctx, occ, facts, j):
            return ["claimed later witness does not match"]
        return []
    if isinstance(justification, FoundBridge):
        return _validate_found_bridge(ctx, occ, facts, justification)
    if isinstance(justification, HistoryInvariant):
        if mode != "before":
            return ["HistoryInvariant used for wrong mode"]
        return _validate_invariant_use(ctx, occ, facts, justification.proof,
                                       justification.instantiation,
                                       "history")
    if isinstance(justification, SenderChain):
        return _validate_sender_chain(ctx, occ, facts, justification)
    if isinstance(justification, NoPriorMatch):
        return _validate_no_prior(ctx, occ, facts, justification)
    return [f"unknown justification {justification!r}"]


def _validate_sender_chain(ctx, occ, facts, justification) -> List[str]:
    from .checker import trace_proof_complaints

    if ctx.scheme.mode != "before":
        return ["SenderChain used for wrong mode"]
    if ctx.sender is None:
        return ["SenderChain used at the base case"]
    if any(c.ctype == ctx.sender.ctype for c in ctx.step.init.comps):
        return ["SenderChain invalid: an Init component has the sender's "
                "type, so membership does not imply a spawn in the trace"]
    built = build_chain_lemma(ctx, occ.match.binding_dict())
    if built is None:
        return ["SenderChain inapplicable: the trigger binding does not "
                "route through the sender's configuration"]
    expected_lemma, expected_map = built
    lemma_prop = justification.lemma.property
    if (lemma_prop.primitive, lemma_prop.a, lemma_prop.b) != (
        expected_lemma.primitive, expected_lemma.a, expected_lemma.b
    ):
        return ["SenderChain lemma does not match the occurrence"]
    if tuple(justification.field_map) != tuple(expected_map):
        return ["SenderChain field map does not match the occurrence"]
    return [
        f"chained lemma: {c}"
        for c in trace_proof_complaints(ctx.step, justification.lemma)
    ]


def _validate_bounded_bridge(ctx, occ, facts, history) -> List[str]:
    from ..lang import types as lang_types
    from ..symbolic.expr import SOp
    from ..symbolic.simplify import term_type
    from .invariants import validate_bounded

    required = ctx.scheme.required
    if not isinstance(required, SpawnPat):
        return ["BoundedBridge only applies to spawn patterns"]
    spec = history.proof.spec
    if spec.ctype != required.comp.ctype:
        return ["BoundedBridge invariant is about a different type"]
    pins = dict(spawn_pattern_field_terms(required,
                                          occ.match.binding_dict()))
    term = pins.get(spec.config_index)
    if term is None:
        return ["BoundedBridge: the forbidden pattern does not pin the "
                "counted configuration field"]
    if term_type(term) != lang_types.NUM:
        return ["BoundedBridge: counted field is not numeric"]
    if not facts.implies(SOp("le", (spec.bound_var, term))):
        return ["BoundedBridge: the pinned field is not provably at or "
                "above the current bound"]
    return validate_bounded(ctx.step, history.proof)


def _validate_found_bridge(ctx, occ, facts, justification) -> List[str]:
    required = ctx.scheme.required
    if ctx.scheme.mode != "before" or not isinstance(required, SpawnPat):
        return ["FoundBridge only discharges Enables of a Spawn pattern"]
    if not 0 <= justification.fact_index < len(ctx.lookup_facts):
        return ["FoundBridge fact index out of range"]
    fact = ctx.lookup_facts[justification.fact_index]
    if not isinstance(fact, FoundFact):
        return ["FoundBridge does not point at a found-fact"]
    if fact.at_index > occ.index:
        return ["lookup ran after the trigger"]
    m = match_comp_term(required.comp, fact.comp, occ.match.binding_dict())
    if m is None or not all(facts.implies(c) for c in m.constraints):
        return ["found component does not provably match the pattern"]
    return []


def _validate_no_prior(ctx, occ, facts, justification) -> List[str]:
    if ctx.scheme.mode != "never_before":
        return ["NoPriorMatch used for wrong mode"]
    required = ctx.scheme.required
    binding = occ.match.binding_dict()
    complaints: List[str] = []
    refuted = set(justification.refuted_indices)
    for j in range(occ.index):
        m = match_template(required, ctx.actions[j], binding)
        if m is None:
            continue
        probe = facts.copy()
        for c in m.constraints:
            probe.assert_term(c)
        if not probe.inconsistent():
            complaints.append(
                f"earlier action #{j} may match and was not refuted"
            )
        elif j not in refuted:
            # Acceptable: the proof did not record it, but it is refuted.
            pass
    history = justification.history
    if isinstance(history, EmptyHistory):
        if ctx.has_history:
            complaints.append("EmptyHistory used in an inductive case")
        return complaints
    if isinstance(history, MissingBridge):
        if not 0 <= history.fact_index < len(ctx.lookup_facts):
            return complaints + ["MissingBridge fact index out of range"]
        fact = ctx.lookup_facts[history.fact_index]
        if not isinstance(fact, MissingFact):
            return complaints + ["MissingBridge does not point at a "
                                 "missing-fact"]
        if not missing_fact_covers(ctx, occ, facts, fact):
            complaints.append("missing-fact does not cover the forbidden "
                              "pattern")
        return complaints
    if isinstance(history, AbsenceInvariant):
        return complaints + _validate_invariant_use(
            ctx, occ, facts, history.proof, history.instantiation, "absence"
        )
    if isinstance(history, BoundedBridge):
        return complaints + _validate_bounded_bridge(ctx, occ, facts,
                                                     history)
    return complaints + [f"unknown history justification {history!r}"]


def _validate_invariant_use(ctx, occ, facts, proof: InvariantProof,
                            instantiation, kind: str) -> List[str]:
    from ..symbolic.expr import SOp
    from .invariants import validate_invariant

    complaints = validate_invariant(ctx.step, proof)
    spec = proof.spec
    if spec.kind != kind:
        complaints.append(f"invariant kind {spec.kind} used as {kind}")
    # The instantiated guard must hold at the occurrence.
    for g in instantiate(spec.guard, instantiation):
        if not facts.implies(g):
            complaints.append(
                f"instantiated invariant guard {g} does not hold at the "
                f"occurrence"
            )
    # The instantiated pattern binding must agree with the trigger binding.
    sigma = occ.match.binding_dict()
    spec_binding = dict(spec.inst.binding)
    for name in sigma:
        if name not in spec_binding:
            complaints.append(
                f"invariant does not constrain property variable {name}"
            )
            continue
        inst_terms = instantiate([spec_binding[name]], instantiation)
        if not facts.implies(SOp("eq", (inst_terms[0], sigma[name]))):
            complaints.append(
                f"invariant instantiates {name} to {inst_terms[0]}, trigger "
                f"binds it to {sigma[name]}"
            )
    return complaints
