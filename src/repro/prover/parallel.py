"""Process-pool fan-out for ``Verifier.verify_all(jobs=N)``.

Task granularity follows the pipeline's obligations: each trace property
is one task; each NI property fans out into its base obligation plus one
task per exchange, assembled (in canonical exchange order) by the parent
and validated by a final coverage-check task.  Every worker hosts one
:class:`~repro.prover.engine.Verifier` built in the pool initializer, so
the symbolic :class:`~repro.symbolic.behabs.GenericStep` is computed
once per worker and shared by all tasks that land there; a configured
proof store is likewise shared (its writes are atomic).

Determinism: each task computes exactly what the serial engine computes
for the same obligation, and the parent reassembles NI verdicts in the
serial order, so verdicts, derivations and derivation keys are identical
to a serial run — asserted by the differential tests.

Each task runs under its own telemetry sink; the resulting counters and
spans travel back with the task result and are merged into the parent's
active sink.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..lang.errors import ProofSearchFailure
from ..props.spec import NonInterference, SpecifiedProgram
from .ni import NIProof, PathVerdict

#: The worker-global verifier, built once per process by :func:`_init_worker`.
_WORKER = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: build this worker's Verifier from the pickled
    ``(spec, options)`` pair."""
    global _WORKER
    from .engine import Verifier

    spec, options = pickle.loads(payload)
    _WORKER = Verifier(spec, options)


def _execute(task: tuple) -> tuple:
    """Run one task against the worker-global verifier."""
    kind = task[0]
    if kind == "prop":
        index = task[1]
        return ("result", _WORKER.prove_property(
            _WORKER.spec.properties[index]
        ))
    if kind == "ni-part":
        index, part = task[1], task[2]
        prop = _WORKER.spec.properties[index]
        start = time.perf_counter()
        try:
            payload, from_store = _WORKER.ni_part(prop, part)
        except ProofSearchFailure as failure:
            return ("fail", str(failure), time.perf_counter() - start)
        return ("ok", payload, from_store, time.perf_counter() - start)
    if kind == "ni-check":
        index, proof = task[1], task[2]
        start = time.perf_counter()
        complaints = tuple(_WORKER.check_ni_derivation(proof))
        return ("checked", complaints, time.perf_counter() - start)
    raise ValueError(f"unknown task {task!r}")


def _run_task(task: tuple) -> tuple:
    """Task entry point: execute under a private telemetry sink and ship
    the counters/spans back for the parent to merge."""
    telemetry = obs.Telemetry()
    with obs.use(telemetry):
        outcome = _execute(task)
    return task, outcome, telemetry.counters, telemetry.spans


def _pool_context():
    """Prefer ``fork`` (cheap start-up, shares the already-parsed
    modules); fall back to the platform default where unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return multiprocessing.get_context()


class _NIAssembly:
    """Parent-side state for one NI property's fanned-out obligations."""

    def __init__(self, index: int,
                 parts: Sequence[Optional[Tuple[str, str]]]) -> None:
        self.index = index
        self.parts = list(parts)
        self.payloads: Dict[Optional[Tuple[str, str]], tuple] = {}
        self.failures: Dict[Optional[Tuple[str, str]], str] = {}
        self.from_store = True
        self.seconds = 0.0

    def complete(self) -> bool:
        """Have all fanned-out obligations reported back?"""
        return (len(self.payloads) + len(self.failures)
                == len(self.parts))

    def first_error(self) -> Optional[str]:
        """The first failure in canonical part order (matches the error
        the serial engine would raise), or ``None``."""
        for part in self.parts:
            if part in self.failures:
                return self.failures[part]
        return None

    def assemble(self, prop: NonInterference) -> NIProof:
        """Rebuild the NI record in serial (canonical) order."""
        base_notes = tuple(self.payloads[None])
        verdicts: List[PathVerdict] = []
        for part in self.parts:
            if part is None:
                continue
            verdicts.extend(self.payloads[part])
        return NIProof(prop, base_notes, tuple(verdicts))


def verify_parallel(spec: SpecifiedProgram, options, jobs: int) -> List:
    """Verify every property of ``spec`` across a pool of ``jobs``
    workers; returns per-property results in specification order."""
    from .engine import PropertyResult

    exchange_parts = list(spec.program.exchange_keys())
    tasks: List[tuple] = []
    assemblies: Dict[int, _NIAssembly] = {}
    for index, prop in enumerate(spec.properties):
        if isinstance(prop, NonInterference):
            parts: List[Optional[Tuple[str, str]]] = [None]
            parts.extend(exchange_parts)
            assemblies[index] = _NIAssembly(index, parts)
            tasks.extend(("ni-part", index, part) for part in parts)
        else:
            tasks.append(("prop", index))

    telemetry = obs.active()
    results: Dict[int, PropertyResult] = {}
    payload = pickle.dumps((spec, options))
    with ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(payload,),
    ) as pool:
        pending = {pool.submit(_run_task, task) for task in tasks}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                task, outcome, counters, spans = future.result()
                if telemetry is not None:
                    telemetry.merge(counters, spans)
                kind = task[0]
                if kind == "prop":
                    results[task[1]] = outcome[1]
                elif kind == "ni-part":
                    index, part = task[1], task[2]
                    assembly = assemblies[index]
                    if outcome[0] == "fail":
                        assembly.failures[part] = outcome[1]
                        assembly.seconds += outcome[2]
                    else:
                        assembly.payloads[part] = outcome[1]
                        assembly.from_store = (
                            assembly.from_store and outcome[2]
                        )
                        assembly.seconds += outcome[3]
                    if assembly.complete():
                        finished = _finish_ni(
                            spec, options, assembly, pool, pending
                        )
                        if finished is not None:
                            results[index] = finished
                elif kind == "ni-check":
                    index = task[1]
                    results[index] = _finalize_checked_ni(
                        spec, assemblies[index], task[2], outcome
                    )
    return [results[index] for index in range(len(spec.properties))]


def _finish_ni(spec, options, assembly: _NIAssembly, pool, pending):
    """All obligations of one NI property are in: either produce the
    failed result, finalize unchecked, or submit the coverage-check
    task (returning ``None`` until it lands)."""
    from .engine import PropertyResult

    prop = spec.properties[assembly.index]
    error = assembly.first_error()
    if error is not None:
        return PropertyResult(
            property=prop,
            status="failed",
            seconds=assembly.seconds,
            error=error,
        )
    proof = assembly.assemble(prop)
    if not options.check_proofs:
        return PropertyResult(
            property=prop,
            status="proved",
            seconds=assembly.seconds,
            proof=proof,
            checked=False,
            source="store" if assembly.from_store else "searched",
        )
    pending.add(pool.submit(
        _run_task, ("ni-check", assembly.index, proof)
    ))
    return None


def _finalize_checked_ni(spec, assembly: _NIAssembly, proof: NIProof,
                         outcome: tuple):
    """Turn the coverage-check outcome into the property's result."""
    from .engine import PropertyResult

    prop = spec.properties[assembly.index]
    complaints, seconds = outcome[1], outcome[2]
    total = assembly.seconds + seconds
    if complaints:
        return PropertyResult(
            property=prop,
            status="failed",
            seconds=total,
            error="proof checker rejected the derivation: "
                  + "; ".join(complaints),
        )
    return PropertyResult(
        property=prop,
        status="proved",
        seconds=total,
        proof=proof,
        checked=True,
        source="store" if assembly.from_store else "searched",
    )
