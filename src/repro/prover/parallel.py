"""Process-pool fan-out for ``Verifier.verify_all(jobs=N)``.

Task granularity follows the pipeline's obligations: each trace property
is one task; each NI property fans out into its base obligation plus one
task per exchange, assembled (in canonical exchange order) by the parent
and validated by a final coverage-check task.  Every worker hosts one
:class:`~repro.prover.engine.Verifier` built in the pool initializer, so
the symbolic :class:`~repro.symbolic.behabs.GenericStep` is computed
once per worker and shared by all tasks that land there; a configured
proof store is likewise shared (its writes are atomic).

Determinism: each task computes exactly what the serial engine computes
for the same obligation, and the parent reassembles NI verdicts in the
serial order, so verdicts, derivations and derivation keys are identical
to a serial run — asserted by the differential tests.

Each task runs under its own telemetry sink (enabling whatever trace /
metrics / event-log subsystems the parent's sink enables — see
:mod:`repro.obs`); its exported snapshot travels back with the task
result and is folded into the parent's active sink with
:meth:`~repro.obs.Telemetry.merge_export`, which normalizes worker clock
offsets — for the *winning* attempt only (an attempt killed by the
timeout watchdog never returns a sink).  The one-off symbolic step build
is kept out of task sinks entirely: each worker captures its build under
a private sink (:func:`_instrumented_step`), ships it alongside every
result, and the parent merges exactly one copy per run — so totals match
a serial run even when retry generations rebuild pools and workers.

Robustness: a hung obligation (``ProverOptions.task_timeout``) or a
worker killed mid-task can no longer wedge ``verify_all`` — the parent
abandons the poisoned pool, rebuilds it, and retries the unresolved
tasks up to ``ProverOptions.task_retries`` times; a task that keeps
failing becomes a *diagnostic failure verdict* on its property rather
than an exception or a hang.  ``ProverOptions.deadline`` bounds the
whole run: once the absolute deadline passes, every task still in
flight is condemned (no retries — the budget is gone) with
:data:`~repro.prover.engine.DEADLINE_MESSAGE` in its diagnostic, so
callers always get a *partial* report rather than a late one.

Hygiene for long-lived parents (the serve daemon): the pool is
*recycled* — drained gracefully and rebuilt fresh — after
``ProverOptions.pool_recycle_tasks`` completed tasks, or as soon as any
worker reports a peak RSS above ``ProverOptions.worker_rss_limit_mb``,
bounding per-worker memory growth across thousands of verifications.

Chaos instrumentation (inert unless the ``REPRO_CHAOS_TASK_*``
environment variables are set — see :mod:`repro.harness.chaos_serve`):
workers can be told to SIGKILL themselves or hang at the start of a
matching task, exactly once across the pool, to exercise these
robustness paths from the outside.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import signal
import sys
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..lang.errors import ProofSearchFailure
from ..props.spec import NonInterference, SpecifiedProgram
from .ni import NIProof, PathVerdict

#: The worker-global verifier, built once per process by :func:`_init_worker`.
_WORKER = None

#: Exported sink of this worker's one-off symbolic step build, captured
#: outside any task sink; the parent merges exactly one worker's copy.
_STEP_TELEMETRY = None

#: Observability configuration inherited from the parent sink (which
#: subsystems its task sinks should enable, and the shared run id).
_OBS_CONFIG = None

#: The hot obligation results seeded from the parent's arena snapshot
#: (key → (kind, payload)); lets ``ni-part`` tasks ship a key reference
#: back instead of re-pickling the verdict payload.
_ARENA_RESULTS: Dict[str, tuple] = {}


def _init_worker(payload: bytes,
                 obs_config: Optional[dict] = None,
                 arena_ref: Optional[tuple] = None) -> None:
    """Pool initializer: build this worker's Verifier from the pickled
    ``(spec, options)`` pair, on a fresh intern table (terms unpickled
    from the payload re-intern into it) with the symbolic caches set per
    ``options.term_cache``; remember the parent's observability config
    for the per-task sinks.

    With ``arena_ref`` the worker attaches the parent's shared arena
    (see :mod:`repro.prover.shared`) and seeds its compiled plan from
    the snapshot — symbolic step and hot obligation results — instead
    of re-deriving them; any attach or decode failure silently degrades
    to the legacy rebuild."""
    global _WORKER, _STEP_TELEMETRY, _OBS_CONFIG, _ARENA_RESULTS
    from ..symbolic import cache as symcache
    from ..symbolic import solver as symsolver
    from ..symbolic.expr import reset_interning
    from .engine import Verifier

    reset_interning()
    symcache.clear_all()
    spec, options = pickle.loads(payload)
    symcache.set_enabled(getattr(options, "term_cache", True))
    symsolver.set_prefix_enabled(
        getattr(options, "compile_plans", True)
    )
    _WORKER = Verifier(spec, options)
    _STEP_TELEMETRY = None
    _OBS_CONFIG = obs_config
    _ARENA_RESULTS = {}
    if arena_ref is not None:
        _attach_arena(arena_ref)
    # Route the verifier's step accessor through the instrumented build so
    # its one-off cost lands in _STEP_TELEMETRY, not in some task's sink.
    _WORKER.generic_step = _instrumented_step


def _attach_arena(arena_ref: tuple) -> None:
    """Seed this worker from the parent's arena snapshot (best effort).

    Unpickling re-interns every term of the snapshot into this worker's
    fresh intern table; the digest guard makes a stale or foreign arena
    a no-op rather than a wrong answer."""
    global _ARENA_RESULTS
    from . import shared

    try:
        snapshot = pickle.loads(shared.load(arena_ref))
        digest = snapshot["digest"]
        step = snapshot["step"]
        results = dict(snapshot.get("results") or {})
    except Exception:  # noqa: BLE001 - arena is an optimization only
        return
    if digest != _WORKER.program_digest():
        return
    _WORKER._step_cache = step
    plan = _WORKER.compiled_plan()
    plan.seed_step(step)
    if results:
        plan.seed_results(results)
        _ARENA_RESULTS = results
        # Tasks run under per-task telemetry sinks, which would
        # normally suppress hot-result serving; the arena seed is
        # explicitly sanctioned by the parent.
        _WORKER._hot_results_override = True


def _task_sink() -> "obs.Telemetry":
    """A fresh sink for one task, enabling whatever subsystems the
    parent sink enabled and attributed to this worker process."""
    cfg = _OBS_CONFIG or {}
    return obs.Telemetry(
        trace=bool(cfg.get("trace")),
        metrics=bool(cfg.get("metrics")),
        events=bool(cfg.get("events")),
        run_id=cfg.get("run_id"),
        tags=cfg.get("tags"),
        worker=f"w{os.getpid()}",
    )


def _instrumented_step():
    """The worker's :meth:`Verifier.generic_step`, with the first (memoized)
    build captured under a private telemetry sink.

    Without this, the build lands inside whichever task happens to run
    first on each worker — and since every retry generation spawns fresh
    workers, the parent's merged counters would double-count it (once per
    worker per generation) relative to a serial run.
    """
    global _STEP_TELEMETRY
    from .engine import Verifier

    if _WORKER.options.memoize_step and _WORKER._step_cache is None:
        build_sink = _task_sink()
        with obs.use(build_sink):
            step = Verifier.generic_step(_WORKER)
        _STEP_TELEMETRY = build_sink.export()
        return step
    return Verifier.generic_step(_WORKER)


def _execute(task: tuple) -> tuple:
    """Run one task against the worker-global verifier."""
    kind = task[0]
    if kind == "prop":
        index = task[1]
        return ("result", _WORKER.prove_property(
            _WORKER.spec.properties[index]
        ))
    if kind == "ni-part":
        index, part = task[1], task[2]
        prop = _WORKER.spec.properties[index]
        start = time.perf_counter()
        try:
            payload, from_store = _WORKER.ni_part(prop, part)
        except ProofSearchFailure as failure:
            return ("fail", str(failure), time.perf_counter() - start)
        if _ARENA_RESULTS:
            # Ship a verdict summary instead of re-pickling the payload
            # when the parent's arena already holds the identical one.
            key = _WORKER.obligation_key_for(prop, part)
            hit = _ARENA_RESULTS.get(key)
            if hit is not None and hit[1] == payload:
                return ("okref", key, from_store,
                        time.perf_counter() - start)
        return ("ok", payload, from_store, time.perf_counter() - start)
    if kind == "ni-check":
        index, proof = task[1], task[2]
        start = time.perf_counter()
        complaints = tuple(_WORKER.check_ni_derivation(proof))
        return ("checked", complaints, time.perf_counter() - start)
    raise ValueError(f"unknown task {task!r}")


def _maybe_inject_chaos(task: tuple) -> None:
    """Service-level fault injection (chaos harness only).

    ``REPRO_CHAOS_TASK_FAULT`` names the fault (``sigkill`` — the worker
    kills itself with SIGKILL, as an OOM killer would; ``hang`` — the
    task sleeps ``REPRO_CHAOS_TASK_SECONDS``, default effectively
    forever).  ``REPRO_CHAOS_TASK_MATCH`` restricts it to tasks whose
    label contains the substring; ``REPRO_CHAOS_TASK_LATCH`` names a
    file created with ``O_CREAT|O_EXCL`` so the fault fires exactly once
    across every process of the pool (and across retry generations).
    Without the environment variables this is a no-op.
    """
    fault = os.environ.get("REPRO_CHAOS_TASK_FAULT")
    if not fault:
        return
    match = os.environ.get("REPRO_CHAOS_TASK_MATCH")
    if match and (_WORKER is None
                  or match not in _task_label(_WORKER.spec, task)):
        return
    latch = os.environ.get("REPRO_CHAOS_TASK_LATCH")
    if latch:
        try:
            os.close(os.open(latch, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except OSError:
            return  # latch already taken (or unwritable): fault spent
    if fault == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault == "hang":
        time.sleep(float(os.environ.get("REPRO_CHAOS_TASK_SECONDS",
                                        "3600")))


def _worker_rss_mb() -> float:
    """This process's peak RSS in MiB (0.0 when unreadable).

    ``ru_maxrss`` is KiB on Linux, bytes on macOS."""
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except Exception:  # noqa: BLE001 - telemetry only, never fatal
        return 0.0
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _run_task(task: tuple) -> tuple:
    """Task entry point: execute under a private telemetry sink and ship
    its :meth:`~repro.obs.Telemetry.export` snapshot back for the parent
    to merge, along with this worker's (separately captured) step-build
    telemetry, the wall-clock start (for the queue-wait metric), and the
    worker's peak RSS (for the parent's pool-recycling policy)."""
    _maybe_inject_chaos(task)
    telemetry = _task_sink()
    start_wall = time.time()
    with obs.use(telemetry):
        with obs.span("parallel.task", kind=task[0]):
            outcome = _execute(task)
    return (task, outcome, telemetry.export(), _STEP_TELEMETRY,
            start_wall, _worker_rss_mb())


def _forking_is_risky() -> bool:
    """Whether forking from this process can deadlock the children.

    ``fork`` snapshots every lock in whatever state some *other* thread
    holds it — a child forked from a multi-threaded parent (the serve
    daemon's prover thread, any embedding application) can inherit a
    locked allocator or logging lock with no thread left to release it,
    and leaks the parent's descriptors besides.  The tell is the caller:
    verification fanned out from anywhere but the main thread means the
    process is running a threaded event loop of some kind.  (A global
    ``active_count()`` probe is deliberately *not* used — the pool's own
    just-shut-down executor threads would flip retry generations to
    ``spawn`` and make the choice depend on scheduler timing.)
    """
    return threading.current_thread() is not threading.main_thread()


def _pool_context():
    """Pick the pool start method.

    ``fork`` is preferred for its cheap start-up (workers share the
    already-parsed modules) but only from a single-threaded parent; in a
    threaded or daemonized process (:func:`_forking_is_risky`) the pool
    falls back to ``spawn``, which is slower to boot but immune to
    inherited-lock deadlocks — every worker rebuilds from the pickled
    ``(spec, options)`` payload either way, so results are identical.
    ``REPRO_POOL_START_METHOD`` overrides the choice outright.
    """
    override = os.environ.get("REPRO_POOL_START_METHOD")
    if override:
        try:
            return multiprocessing.get_context(override)
        except ValueError:
            pass  # unknown method name: fall through to the heuristic
    method = "spawn" if _forking_is_risky() else "fork"
    try:
        return multiprocessing.get_context(method)
    except ValueError:
        return multiprocessing.get_context()


class _NIAssembly:
    """Parent-side state for one NI property's fanned-out obligations."""

    def __init__(self, index: int,
                 parts: Sequence[Optional[Tuple[str, str]]]) -> None:
        self.index = index
        self.parts = list(parts)
        self.payloads: Dict[Optional[Tuple[str, str]], tuple] = {}
        self.failures: Dict[Optional[Tuple[str, str]], str] = {}
        self.from_store = True
        self.seconds = 0.0

    def complete(self) -> bool:
        """Have all fanned-out obligations reported back?"""
        return (len(self.payloads) + len(self.failures)
                == len(self.parts))

    def first_error(self) -> Optional[str]:
        """The first failure in canonical part order (matches the error
        the serial engine would raise), or ``None``."""
        for part in self.parts:
            if part in self.failures:
                return self.failures[part]
        return None

    def assemble(self, prop: NonInterference) -> NIProof:
        """Rebuild the NI record in serial (canonical) order."""
        base_notes = tuple(self.payloads[None])
        verdicts: List[PathVerdict] = []
        for part in self.parts:
            if part is None:
                continue
            verdicts.extend(self.payloads[part])
        return NIProof(prop, base_notes, tuple(verdicts))


def _task_label(spec, task: tuple) -> str:
    """A human-readable identity for one task, for flight-recorder
    events (``prop:name``, ``ni-part:name:base``, ``ni-check:name``)."""
    kind = task[0]
    name = spec.properties[task[1]].name
    if kind == "ni-part":
        part = task[2]
        where = "base" if part is None else f"{part[0]}=>{part[1]}"
        return f"{kind}:{name}:{where}"
    return f"{kind}:{name}"


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool whose workers can no longer be trusted: kill the
    processes outright (a hung task never returns on its own) and discard
    the executor without waiting."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # pragma: no cover - already dead
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def verify_parallel(spec: SpecifiedProgram, options, jobs: int) -> List:
    """Verify every property of ``spec`` across a pool of ``jobs``
    workers; returns per-property results in specification order.

    Tasks that hang past ``options.task_timeout`` or whose worker dies
    are retried in a fresh pool up to ``options.task_retries`` times,
    then resolved as diagnostic failure verdicts — ``verify_all`` always
    returns one result per property.
    """
    from .engine import DEADLINE_MESSAGE, PropertyResult

    timeout = getattr(options, "task_timeout", None)
    retries = max(0, getattr(options, "task_retries", 1))
    deadline = getattr(options, "deadline", None)
    recycle_tasks = getattr(options, "pool_recycle_tasks", None)
    rss_limit = getattr(options, "worker_rss_limit_mb", None)

    def deadline_expired() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    exchange_parts = list(spec.program.exchange_keys())
    ids = itertools.count()
    tasks: Dict[int, tuple] = {}
    assemblies: Dict[int, _NIAssembly] = {}
    for index, prop in enumerate(spec.properties):
        if isinstance(prop, NonInterference):
            parts: List[Optional[Tuple[str, str]]] = [None]
            parts.extend(exchange_parts)
            assemblies[index] = _NIAssembly(index, parts)
            for part in parts:
                tasks[next(ids)] = ("ni-part", index, part)
            # The parent enumerates NI obligations directly (the serial
            # engine counts them inside plan_property, which workers
            # never call for NI properties) — keep the counter exact.
            obs.incr("plan.obligations", len(parts))
        else:
            tasks[next(ids)] = ("prop", index)

    telemetry = obs.active()
    obs_config = None if telemetry is None else {
        "trace": telemetry.tracer is not None,
        "metrics": telemetry.metrics is not None,
        "events": telemetry.events is not None,
        "run_id": telemetry.run_id,
        # Request-context tags (the serve daemon's submit/group ids)
        # ride along so worker spans and events stay attributable to
        # the submission that caused them.
        "tags": dict(telemetry.tags) if telemetry.tags else None,
    }
    # The one-off symbolic step build happens once per run in a serial
    # prover; merge exactly one worker's copy, across ALL generations.
    step_merged = [False]
    results: Dict[int, PropertyResult] = {}
    attempts: Dict[int, int] = {tid: 0 for tid in tasks}
    unresolved: Set[int] = set(tasks)
    payload = pickle.dumps((spec, options))
    arena, arena_results = _build_arena(spec, options, telemetry)
    arena_ref = None if arena is None else arena.ref

    def settle_assembly(index: int) -> None:
        """An NI assembly with every obligation reported: produce the
        result, or enqueue its coverage-check task."""
        finished = _finish_ni(spec, options, assemblies[index])
        if finished[0] == "result":
            results[index] = finished[1]
        else:
            tid = next(ids)
            tasks[tid] = finished[1]
            attempts[tid] = 0
            unresolved.add(tid)

    def handle_outcome(tid: int, task: tuple, outcome: tuple) -> None:
        """Fold one completed task into the parent-side state."""
        unresolved.discard(tid)
        kind = task[0]
        if kind == "prop":
            results[task[1]] = outcome[1]
        elif kind == "ni-part":
            index, part = task[1], task[2]
            assembly = assemblies[index]
            if outcome[0] == "fail":
                assembly.failures[part] = outcome[1]
                assembly.seconds += outcome[2]
            else:
                if outcome[0] == "okref":
                    # Verdict summary: the worker confirmed its payload
                    # equals the arena entry, so rehydrate locally.
                    obs.incr("parallel.arena.okref")
                    assembly.payloads[part] = arena_results[outcome[1]][1]
                else:
                    assembly.payloads[part] = outcome[1]
                assembly.from_store = (
                    assembly.from_store and outcome[2]
                )
                assembly.seconds += outcome[3]
            if assembly.complete():
                settle_assembly(index)
        elif kind == "ni-check":
            index = task[1]
            results[index] = _finalize_checked_ni(
                spec, assemblies[index], task[2], outcome
            )

    def condemn(tid: int, reason: str) -> None:
        """Out of retries: resolve the task as a diagnostic failure."""
        unresolved.discard(tid)
        task = tasks[tid]
        message = (
            f"obligation abandoned after {attempts[tid]} attempt(s): "
            f"{reason}"
        )
        if reason == DEADLINE_MESSAGE:
            # The caller's budget ran out — the backend is fine.  Kept
            # distinct from task_abandoned so the serve layer's circuit
            # breaker never mistakes an impatient client for a sick pool.
            obs.incr("parallel.task_deadline")
        else:
            obs.incr("parallel.task_abandoned")
        obs.event("task.abandoned", task=_task_label(spec, task),
                  reason=reason, attempts=attempts[tid])
        kind = task[0]
        if kind == "prop":
            index = task[1]
            results[index] = PropertyResult(
                property=spec.properties[index],
                status="failed",
                seconds=0.0,
                error=message,
            )
        elif kind == "ni-part":
            index, part = task[1], task[2]
            assembly = assemblies[index]
            assembly.failures[part] = message
            if assembly.complete():
                settle_assembly(index)
        elif kind == "ni-check":
            index = task[1]
            results[index] = PropertyResult(
                property=spec.properties[index],
                status="failed",
                seconds=assemblies[index].seconds,
                error=message,
            )

    def run_generation() -> Dict[int, str]:
        """One pool lifetime: submit every unresolved task, fold in
        completions, and stop early on a hang, a worker death, or the
        run deadline.  Returns the tasks to penalize (id → reason);
        everything else still unresolved is retried free of charge in
        the next generation.  A *recycle* trigger (completed-task or
        worker-RSS budget) ends the generation gracefully — queued
        futures are cancelled and retried, penalty-free, in a fresh
        pool."""
        penalized: Dict[int, str] = {}
        pool = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=(payload, obs_config, arena_ref),
        )
        pending: Dict[object, int] = {}
        scheduled: Set[int] = set()
        submitted: Dict[int, float] = {}
        for tid in sorted(unresolved):
            scheduled.add(tid)
            pending[pool.submit(_run_task, tasks[tid])] = tid
            submitted[tid] = time.time()
        running_since: Dict[object, float] = {}
        broken = False
        completed = 0
        peak_rss = 0.0
        recycle_reason: Optional[str] = None
        # Always bounded, even with no task timeout: the loop must get
        # regular turns to notice a broken pool whose cleanup thread
        # died before failing every future (see the _broken check).
        poll = 0.25 if timeout is None else min(timeout / 4.0, 0.1)
        try:
            while pending:
                wait_timeout = poll
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                    wait_timeout = (remaining if wait_timeout is None
                                    else min(wait_timeout, remaining))
                done, _ = wait(set(pending), timeout=wait_timeout,
                               return_when=FIRST_COMPLETED)
                now = time.monotonic()
                for future in pending:
                    if (future not in done and future.running()
                            and future not in running_since):
                        running_since[future] = now
                for future in done:
                    tid = pending.pop(future)
                    running_since.pop(future, None)
                    try:
                        (task, outcome, exported, step_telemetry,
                         start_wall, rss_mb) = future.result()
                    except BrokenExecutor:
                        penalized[tid] = "its worker process died"
                        obs.incr("parallel.worker_died")
                        obs.event("task.worker_died",
                                  task=_task_label(spec, tasks[tid]))
                        broken = True
                        continue
                    except Exception as error:  # noqa: BLE001
                        penalized[tid] = f"it raised {error!r}"
                        obs.event("task.error",
                                  task=_task_label(spec, tasks[tid]),
                                  error=repr(error))
                        continue
                    completed += 1
                    peak_rss = max(peak_rss, rss_mb)
                    if telemetry is not None:
                        if step_telemetry is not None and not step_merged[0]:
                            step_merged[0] = True
                            telemetry.merge_export(step_telemetry)
                        telemetry.merge_export(exported)
                        queued = submitted.get(tid)
                        if (telemetry.metrics is not None
                                and queued is not None):
                            telemetry.metrics.observe(
                                "parallel.queue_wait.seconds",
                                max(0.0, start_wall - queued),
                            )
                    handle_outcome(tid, task, outcome)
                    # a settled NI assembly may have enqueued its check
                    if recycle_reason is None:
                        for new_tid in sorted(unresolved - scheduled):
                            try:
                                future = pool.submit(
                                    _run_task, tasks[new_tid]
                                )
                            except BrokenExecutor:
                                # pool died under us: the task stays
                                # unresolved and runs next generation
                                broken = True
                                break
                            scheduled.add(new_tid)
                            pending[future] = new_tid
                            submitted[new_tid] = time.time()
                if (not broken and pending
                        and getattr(pool, "_broken", False)):
                    # The pool broke, but its management thread can die
                    # mid-cleanup without failing every future (on
                    # CPython 3.11 a cancelled work item — recycling
                    # cancels queued futures — raises InvalidStateError
                    # inside terminate_broken).  Never wait on futures
                    # that can no longer complete.
                    for future in list(pending):
                        if future.done():
                            continue
                        tid = pending.pop(future)
                        penalized[tid] = "its worker process died"
                        obs.incr("parallel.worker_died")
                        obs.event("task.worker_died",
                                  task=_task_label(spec, tasks[tid]))
                    broken = True
                if broken:
                    return penalized  # survivors retried next generation
                if deadline is not None and now >= deadline and pending:
                    # The budget is gone: condemn everything still in
                    # flight (queued or running) and kill the workers.
                    for future in list(pending):
                        tid = pending.pop(future)
                        penalized[tid] = DEADLINE_MESSAGE
                        obs.event("task.deadline",
                                  task=_task_label(spec, tasks[tid]))
                    broken = True
                    return penalized
                if timeout is not None:
                    hung = [future for future, since
                            in running_since.items()
                            if now - since >= timeout]
                    if hung:
                        for future in hung:
                            tid = pending.pop(future)
                            penalized[tid] = (
                                f"it exceeded the {timeout:g}s "
                                f"task timeout"
                            )
                            obs.event("task.timeout",
                                      task=_task_label(spec, tasks[tid]),
                                      timeout=timeout)
                        broken = True
                        return penalized
                if recycle_reason is None and completed > 0:
                    if (recycle_tasks is not None
                            and completed >= recycle_tasks):
                        recycle_reason = (
                            f"{completed} tasks >= budget {recycle_tasks}"
                        )
                    elif (rss_limit is not None
                            and peak_rss > rss_limit):
                        recycle_reason = (
                            f"worker RSS {peak_rss:.0f} MiB > "
                            f"ceiling {rss_limit:g} MiB"
                        )
                    if recycle_reason is not None:
                        obs.incr("parallel.pool_recycled")
                        obs.event("pool.recycled",
                                  reason=recycle_reason,
                                  completed=completed,
                                  peak_rss_mb=round(peak_rss, 1))
                        # Cancelled (never-started) futures run in the
                        # next generation's fresh pool; running ones
                        # finish here first.
                        for future in list(pending):
                            if future.cancel():
                                pending.pop(future)
        finally:
            if broken:
                _abandon_pool(pool)
            else:
                pool.shutdown(wait=True)
        return penalized

    # Every generation either resolves a task or penalizes one, and each
    # task survives at most ``retries`` penalties — so this terminates;
    # the cap is a belt-and-braces backstop against scheduler bugs.
    generation_cap = len(tasks) * (retries + 2) + 2
    try:
        for _ in range(generation_cap):
            if not unresolved:
                break
            if deadline_expired():
                # The budget ran out between generations: whatever is
                # still unresolved becomes deadline diagnostics now —
                # retrying work with no time left only delays the
                # partial report the caller is owed.
                for tid in sorted(unresolved):
                    attempts[tid] += 1
                    condemn(tid, DEADLINE_MESSAGE)
                break
            for tid, reason in sorted(run_generation().items()):
                if tid not in unresolved:
                    continue
                attempts[tid] += 1
                if reason == DEADLINE_MESSAGE:
                    condemn(tid, reason)
                    continue
                obs.incr("parallel.task_retry")
                if attempts[tid] > retries:
                    condemn(tid, reason)
                else:
                    obs.event("task.retry",
                              task=_task_label(spec, tasks[tid]),
                              reason=reason, attempt=attempts[tid])
    finally:
        if arena is not None:
            arena.close()
    for tid in sorted(unresolved):  # pragma: no cover - backstop only
        condemn(tid, "the scheduler gave up")
    return [results[index] for index in range(len(spec.properties))]


def _build_arena(spec, options, telemetry):
    """Publish the parent's snapshot — compiled symbolic step plus hot
    obligation results — for workers to attach (see
    :mod:`repro.prover.shared`).  Returns ``(arena, results)``;
    ``(None, {})`` disables seeding (plans off, or arena creation
    failed).

    Hot results ride along only when the parent runs uninstrumented:
    under a telemetry sink, workers serving pre-cooked verdicts would
    skip their search stages and break the serial/parallel counter
    parity the telemetry differential tests pin down.  The step itself
    always ships — with a sink active the parent builds it under the
    same ``step.build`` span a serial run records (and seeded workers
    skip their own builds, so the build still lands exactly once).
    """
    if not (getattr(options, "compile_plans", False)
            and getattr(options, "memoize_step", True)):
        # The step ablation (memoize_step=False) measures per-use build
        # cost; seeding workers would defeat the measurement.
        return None, {}
    from ..symbolic import cache as symcache
    from ..symbolic import solver as symsolver
    from . import shared
    from .engine import Verifier

    parent = Verifier(spec, options)
    # The same cache scopes the serial engine applies around its step
    # build: without them the parent build emits cache counters a
    # serial run (term_cache=False) would not.
    with symcache.scope(getattr(options, "term_cache", True)), \
            symsolver.prefix_scope(
                getattr(options, "compile_plans", True)):
        step = parent.generic_step()
    results = {}
    if telemetry is None:
        results = parent.compiled_plan().exportable_results()
    blob = pickle.dumps({
        "digest": parent.program_digest(),
        "step": step,
        "results": results,
    })
    try:
        arena = shared.SharedArena.create(blob)
    except Exception:  # noqa: BLE001 - workers rebuild instead
        obs.incr("parallel.arena.error")
        return None, {}
    obs.incr("parallel.arena.build")
    obs.event("arena.built", bytes=len(blob),
              backing=arena.ref[0], results=len(results))
    return arena, results


def _finish_ni(spec, options, assembly: _NIAssembly):
    """All obligations of one NI property are in: either produce the
    failed result (``("result", r)``), finalize unchecked, or hand back
    the coverage-check task to schedule (``("task", t)``)."""
    from .engine import PropertyResult

    prop = spec.properties[assembly.index]
    error = assembly.first_error()
    if error is not None:
        return ("result", PropertyResult(
            property=prop,
            status="failed",
            seconds=assembly.seconds,
            error=error,
        ))
    proof = assembly.assemble(prop)
    if not options.check_proofs:
        return ("result", PropertyResult(
            property=prop,
            status="proved",
            seconds=assembly.seconds,
            proof=proof,
            checked=False,
            source="store" if assembly.from_store else "searched",
        ))
    return ("task", ("ni-check", assembly.index, proof))


def _finalize_checked_ni(spec, assembly: _NIAssembly, proof: NIProof,
                         outcome: tuple):
    """Turn the coverage-check outcome into the property's result."""
    from .engine import PropertyResult

    prop = spec.properties[assembly.index]
    complaints, seconds = outcome[1], outcome[2]
    total = assembly.seconds + seconds
    if complaints:
        return PropertyResult(
            property=prop,
            status="failed",
            seconds=total,
            error="proof checker rejected the derivation: "
                  + "; ".join(complaints),
        )
    return PropertyResult(
        property=prop,
        status="proved",
        seconds=total,
        proof=proof,
        checked=True,
        source="store" if assembly.from_store else "searched",
    )
