"""The verification engine: REFLEX's pushbutton entry point.

``Verifier(spec).verify_all()`` is the reproduction of the paper's headline
workflow: the user writes a program and its properties, presses the button,
and every property is either *proved* (with a machine-checked derivation)
or *rejected* with a diagnostic explaining which obligation got stuck —
the paper's section 6.3 recounts how exactly these diagnostics exposed two
false web-server policies.

The engine also hosts the optimizations of paper section 6.4, each behind a
:class:`ProverOptions` switch so that the ablation benchmark can measure
their effect:

* ``memoize_step`` — compute the symbolic :class:`GenericStep` once per
  program instead of once per property;
* ``syntactic_skip`` — discharge exchanges/invariant cases by the cheap
  syntactic check where possible;
* ``cache_subproofs`` — reuse invariant proofs across occurrences and
  properties (the paper's "saving subproofs at key cut points").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from ..lang.errors import ProofCheckFailure, ProofError, ProofSearchFailure
from ..props.spec import NonInterference, Property, SpecifiedProgram, TraceProperty
from ..symbolic.behabs import GenericStep, generic_step
from .checker import check_trace_proof
from .derivation import (
    BoundedProof,
    BoundedSpec,
    InvariantProof,
    InvariantSpec,
    TracePropertyProof,
)
from .invariants import prove_bounded, prove_invariant
from .ni import NIProof, prove_noninterference
from .trace_tactics import TacticContext, prove_trace_property


@dataclass
class ProverOptions:
    """Switches for the section-6.4 optimizations plus proof checking."""

    syntactic_skip: bool = True
    memoize_step: bool = True
    cache_subproofs: bool = True
    check_proofs: bool = True


@dataclass
class PropertyResult:
    """The outcome of verifying one property."""

    property: Property
    status: str  # "proved" | "failed"
    seconds: float
    proof: Optional[Union[TracePropertyProof, NIProof]] = None
    error: Optional[str] = None
    checked: bool = False
    #: for failed trace properties: an instantiation of the stuck goal
    #: (see :mod:`repro.prover.counterexample`), when the model finder
    #: succeeds
    counterexample: Optional[object] = None

    @property
    def proved(self) -> bool:
        return self.status == "proved"

    def __str__(self) -> str:
        mark = "✓" if self.proved else "✗"
        extra = "" if self.proved else f" — {self.error}"
        return f"{mark} {self.property.name} ({self.seconds:.3f}s){extra}"


@dataclass
class VerificationReport:
    """Results for every property of one program."""

    program_name: str
    results: List[PropertyResult] = field(default_factory=list)

    @property
    def all_proved(self) -> bool:
        return all(r.proved for r in self.results)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.results)

    def result_named(self, name: str) -> PropertyResult:
        for r in self.results:
            if r.property.name == name:
                return r
        raise KeyError(name)

    def __str__(self) -> str:
        lines = [f"verification report for {self.program_name}:"]
        lines.extend(f"  {r}" for r in self.results)
        verdict = "all proved" if self.all_proved else "FAILURES PRESENT"
        lines.append(
            f"  {len(self.results)} properties, {verdict}, "
            f"{self.total_seconds:.3f}s total"
        )
        return "\n".join(lines)


class Verifier:
    """Verifies the properties of one specified program."""

    def __init__(self, spec: SpecifiedProgram,
                 options: Optional[ProverOptions] = None) -> None:
        self.spec = spec
        self.options = options or ProverOptions()
        self._step_cache: Optional[GenericStep] = None
        self._invariant_cache: Dict[InvariantSpec, InvariantProof] = {}
        self._bounded_cache: Dict[BoundedSpec, BoundedProof] = {}

    # -- building blocks -------------------------------------------------------

    def generic_step(self) -> GenericStep:
        """The symbolic inductive step (memoized per section 6.4)."""
        if self.options.memoize_step:
            if self._step_cache is None:
                self._step_cache = generic_step(self.spec.info)
            return self._step_cache
        return generic_step(self.spec.info)

    def _invariant_prover(self, spec: InvariantSpec) -> InvariantProof:
        if self.options.cache_subproofs:
            cached = self._invariant_cache.get(spec)
            if cached is not None:
                return cached
        proof = prove_invariant(
            self.generic_step(), spec,
            syntactic_skip=self.options.syntactic_skip,
        )
        if self.options.cache_subproofs:
            self._invariant_cache[spec] = proof
        return proof

    def _bounded_prover(self, spec: BoundedSpec) -> BoundedProof:
        if self.options.cache_subproofs:
            cached = self._bounded_cache.get(spec)
            if cached is not None:
                return cached
        proof = prove_bounded(self.generic_step(), spec)
        if self.options.cache_subproofs:
            self._bounded_cache[spec] = proof
        return proof

    def _tactic_context(self) -> TacticContext:
        return TacticContext(
            step=self.generic_step(),
            invariant_prover=self._invariant_prover,
            bounded_prover=self._bounded_prover,
            syntactic_skip=self.options.syntactic_skip,
        )

    # -- per-property verification ----------------------------------------------

    def prove_property(self, prop: Property) -> PropertyResult:
        """Prove (and check) one property, timing the whole pipeline."""
        start = time.perf_counter()
        try:
            if isinstance(prop, TraceProperty):
                proof = prove_trace_property(self._tactic_context(), prop)
                checked = False
                if self.options.check_proofs:
                    check_trace_proof(self.generic_step(), proof)
                    checked = True
            elif isinstance(prop, NonInterference):
                proof = prove_noninterference(self.generic_step(), prop)
                checked = False
                if self.options.check_proofs:
                    # The NI conditions are checked directly (search and
                    # check coincide); re-run them as the validation pass.
                    prove_noninterference(self.generic_step(), prop)
                    checked = True
            else:
                raise ProofSearchFailure(f"unknown property form {prop!r}")
        except ProofSearchFailure as failure:
            return PropertyResult(
                property=prop,
                status="failed",
                seconds=time.perf_counter() - start,
                error=str(failure),
                counterexample=failure.counterexample,
            )
        except ProofCheckFailure as failure:
            return PropertyResult(
                property=prop,
                status="failed",
                seconds=time.perf_counter() - start,
                error=f"proof checker rejected the derivation: {failure}",
            )
        return PropertyResult(
            property=prop,
            status="proved",
            seconds=time.perf_counter() - start,
            proof=proof,
            checked=checked,
        )

    def verify_all(self) -> VerificationReport:
        """Verify every property of the program."""
        report = VerificationReport(self.spec.name)
        for prop in self.spec.properties:
            report.results.append(self.prove_property(prop))
        return report


def verify(spec: SpecifiedProgram,
           options: Optional[ProverOptions] = None) -> VerificationReport:
    """One-shot convenience: verify all properties of ``spec``."""
    return Verifier(spec, options).verify_all()


def prove(spec: SpecifiedProgram, property_name: str,
          options: Optional[ProverOptions] = None) -> PropertyResult:
    """One-shot convenience: verify a single named property."""
    verifier = Verifier(spec, options)
    return verifier.prove_property(spec.property_named(property_name))
