"""The verification engine: REFLEX's pushbutton entry point.

``Verifier(spec).verify_all()`` is the reproduction of the paper's headline
workflow: the user writes a program and its properties, presses the button,
and every property is either *proved* (with a machine-checked derivation)
or *rejected* with a diagnostic explaining which obligation got stuck —
the paper's section 6.3 recounts how exactly these diagnostics exposed two
false web-server policies.

Verification runs as a staged pipeline (see :mod:`repro.prover.pipeline`):

* **plan** — enumerate the property's obligations, each with a stable
  content-addressed key;
* **search** — discharge each obligation (consulting the persistent
  :mod:`proof store <repro.prover.proofstore>` first when one is
  configured), emitting a derivation;
* **check** — validate the assembled derivation through the independent
  :mod:`checker <repro.prover.checker>`.

``verify_all(jobs=N)`` fans properties — and, independently, the NI
obligations within a property — across a process pool (see
:mod:`repro.prover.parallel`); each worker memoizes the symbolic
:class:`GenericStep` once.  Every stage reports counters and spans to
:mod:`repro.obs` when a telemetry sink is installed.

The engine also hosts the optimizations of paper section 6.4, each behind a
:class:`ProverOptions` switch so that the ablation benchmark can measure
their effect:

* ``memoize_step`` — compute the symbolic :class:`GenericStep` once per
  program instead of once per property;
* ``syntactic_skip`` — discharge exchanges/invariant cases by the cheap
  syntactic check where possible;
* ``cache_subproofs`` — reuse invariant proofs across occurrences and
  properties (the paper's "saving subproofs at key cut points").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .. import obs
from ..lang.errors import ProofCheckFailure, ProofSearchFailure
from ..props.spec import (
    NonInterference,
    Property,
    SpecifiedProgram,
    TraceProperty,
)
from ..symbolic import cache as symcache
from ..symbolic import compile as symcompile
from ..symbolic import solver as symsolver
from ..symbolic.behabs import GenericStep, generic_step
from .checker import (
    check_ni_proof,
    check_trace_proof,
    ni_proof_complaints,
    record_step_proofs,
    trace_base_complaints,
    trace_exchange_complaints,
    trace_proof_complaints,
)
from .derivation import (
    BaseProof,
    BoundedProof,
    BoundedSpec,
    InvariantProof,
    InvariantSpec,
    StepProof,
    TracePropertyProof,
)
from .invariants import prove_bounded, prove_invariant
from .ni import (
    Labeling,
    NIProof,
    PathVerdict,
    build_labeling,
    check_ni_base,
    check_ni_exchange,
)
from .obligations import scheme_of
from .pipeline import Obligation, plan_property
from .proofstore import (
    ProofStore,
    StoreEntry,
    dependency_digest,
    derivation_key,
    digest,
    obligation_key,
)
from .trace_tactics import (
    TacticContext,
    prove_trace_base,
    prove_trace_exchange,
    prove_trace_property,
)


@dataclass
class ProverOptions:
    """Switches for the section-6.4 optimizations plus proof checking.

    ``proof_store`` names a directory for the persistent content-addressed
    proof cache; ``None`` (the default) disables it.
    """

    syntactic_skip: bool = True
    memoize_step: bool = True
    cache_subproofs: bool = True
    check_proofs: bool = True
    #: consult the process-wide symbolic caches (interned-term simplify
    #: memo, DNF memo, solver query cache — see docs/performance.md);
    #: semantically invisible, so it does not shape obligation keys
    term_cache: bool = True
    #: execute compiled proof plans: the per-kernel compiled symbolic
    #: step (closure form, reused across Verifier instances via
    #: :mod:`repro.symbolic.compile`), the memoized obligation-key
    #: table, the hot in-process result cache, and the solver's
    #: prefix-batched fact construction.  Semantically invisible —
    #: verdicts, derivations and obligation keys are bit-for-bit
    #: identical with it off (``--no-compile`` on the CLI, asserted by
    #: the compile differential tests) — so it does not shape
    #: obligation keys.
    compile_plans: bool = True
    proof_store: Optional[str] = None
    #: parallel runs only: wall-clock budget per obligation task, in
    #: seconds (``None`` disables the watchdog)
    task_timeout: Optional[float] = None
    #: parallel runs only: how many times a timed-out or crashed task is
    #: retried before it becomes a diagnostic failure verdict
    task_retries: int = 1
    #: absolute ``time.monotonic()`` deadline for the whole run; a
    #: property (serial) or obligation task (parallel) not finished by
    #: then becomes a diagnostic failure verdict carrying
    #: :data:`DEADLINE_MESSAGE`, so callers get a *partial* report —
    #: whatever was proved inside the budget — instead of a hang.
    #: ``None`` (the default) disables the budget.  Execution policy
    #: only: it never shapes obligation keys or derivations.
    deadline: Optional[float] = None
    #: parallel runs only: retire the pool after this many completed
    #: tasks (a fresh pool serves the remainder); ``None`` disables
    pool_recycle_tasks: Optional[int] = None
    #: parallel runs only: retire the pool once any worker reports a
    #: peak RSS above this many MiB; ``None`` disables
    worker_rss_limit_mb: Optional[float] = None


#: Diagnostic-error prefix for work condemned by ``ProverOptions.deadline``
#: (the serve layer's residue rendering keys off it).
DEADLINE_MESSAGE = "deadline expired before this proof completed"


@dataclass
class PropertyResult:
    """The outcome of verifying one property."""

    property: Property
    status: str  # "proved" | "failed"
    seconds: float
    proof: Optional[Union[TracePropertyProof, NIProof]] = None
    error: Optional[str] = None
    checked: bool = False
    #: for failed trace properties: an instantiation of the stuck goal
    #: (see :mod:`repro.prover.counterexample`), when the model finder
    #: succeeds
    counterexample: Optional[object] = None
    #: where the derivation came from: "searched", "store" (every
    #: obligation served by the persistent proof store), or
    #: "revalidated" (incremental reuse)
    source: str = "searched"

    @property
    def proved(self) -> bool:
        return self.status == "proved"

    def derivation_key(self) -> Optional[str]:
        """Content address of the derivation (``None`` for failures).

        Identical across serial/parallel and cold/warm-store runs — the
        differential tests assert exactly that.
        """
        if self.proof is None:
            return None
        return derivation_key(self.proof)

    def to_dict(self) -> dict:
        """JSON-ready form of the result."""
        return {
            "property": self.property.name,
            "status": self.status,
            "seconds": round(self.seconds, 6),
            "checked": self.checked,
            "source": self.source,
            "derivation_key": self.derivation_key(),
            "error": self.error,
        }

    def __str__(self) -> str:
        mark = "✓" if self.proved else "✗"
        extra = "" if self.proved else f" — {self.error}"
        return f"{mark} {self.property.name} ({self.seconds:.3f}s){extra}"


@dataclass
class VerificationReport:
    """Results for every property of one program.

    ``total_seconds`` sums the per-property (CPU-side) times;
    ``wall_seconds`` is the report-level elapsed time.  The two diverge
    under ``verify_all(jobs=N)``.
    """

    program_name: str
    results: List[PropertyResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def all_proved(self) -> bool:
        return all(r.proved for r in self.results)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.results)

    def result_named(self, name: str) -> PropertyResult:
        """The result for property ``name``; raises :class:`KeyError`
        naming the available properties otherwise."""
        for r in self.results:
            if r.property.name == name:
                return r
        available = ", ".join(
            sorted(r.property.name for r in self.results)
        ) or "(none)"
        raise KeyError(
            f"no result for property {name!r}; available: {available}"
        )

    def to_dict(self) -> dict:
        """JSON-ready form of the report."""
        return {
            "program": self.program_name,
            "all_proved": self.all_proved,
            "wall_seconds": round(self.wall_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "results": [r.to_dict() for r in self.results],
        }

    def __str__(self) -> str:
        lines = [f"verification report for {self.program_name}:"]
        lines.extend(f"  {r}" for r in self.results)
        verdict = "all proved" if self.all_proved else "FAILURES PRESENT"
        lines.append(
            f"  {len(self.results)} properties, {verdict}, "
            f"{self.total_seconds:.3f}s total"
        )
        return "\n".join(lines)


class Verifier:
    """Verifies the properties of one specified program."""

    def __init__(self, spec: SpecifiedProgram,
                 options: Optional[ProverOptions] = None) -> None:
        self.spec = spec
        self.options = options or ProverOptions()
        self._step_cache: Optional[GenericStep] = None
        self._invariant_cache: Dict[InvariantSpec, InvariantProof] = {}
        self._bounded_cache: Dict[BoundedSpec, BoundedProof] = {}
        self._labeling_cache: Dict[str, Labeling] = {}
        self._program_digest: Optional[str] = None
        self._plan: Optional[symcompile.CompiledPlan] = None
        #: set by the parallel worker initializer: workers serve hot
        #: results seeded from the shared arena even though they run
        #: under a telemetry sink (see :meth:`_hot_results`)
        self._hot_results_override: Optional[bool] = None
        self._store: Optional[ProofStore] = (
            ProofStore(self.options.proof_store)
            if self.options.proof_store else None
        )

    # -- building blocks -------------------------------------------------------

    def compiled_plan(self) -> symcompile.CompiledPlan:
        """The process-wide compiled plan for this kernel (keyed by the
        program content digest — see :mod:`repro.symbolic.compile`)."""
        if self._plan is None:
            self._plan = symcompile.plan_for(self.program_digest())
        return self._plan

    def _hot_results(self) -> bool:
        """Whether the compiled plan's hot result cache may serve and
        record obligation results.

        Disabled while a telemetry sink is installed (unless a parallel
        worker overrides it after arena seeding): serving a result
        without re-running the search would silently change the
        search-stage counters that the telemetry differential tests pin
        down.
        """
        if not self.options.compile_plans:
            return False
        if self._hot_results_override is not None:
            return self._hot_results_override
        return obs.active() is None

    def generic_step(self) -> GenericStep:
        """The symbolic inductive step (memoized per section 6.4).

        With ``compile_plans`` the step is built by the compiled
        executor and shared across Verifier instances through the
        process-wide plan cache; plan-level reuse is bypassed under an
        active telemetry sink so instrumented runs still observe the
        build."""
        if self.options.memoize_step:
            if self._step_cache is None:
                if self.options.compile_plans and obs.active() is None:
                    self._step_cache = \
                        self.compiled_plan().step_for(self.spec.info)
                else:
                    with obs.span("step.build", program=self.spec.name):
                        self._step_cache = self._build_step()
            return self._step_cache
        return self._build_step()

    def _build_step(self) -> GenericStep:
        if self.options.compile_plans:
            executor = symcompile.compiled_executor(self.spec.info)
            return generic_step(self.spec.info, executor=executor)
        return generic_step(self.spec.info)

    def program_digest(self) -> str:
        """Content digest of the program AST (computed once, shared by
        every obligation key)."""
        if self._program_digest is None:
            self._program_digest = digest(self.spec.program)
        return self._program_digest

    def _invariant_prover(self, spec: InvariantSpec) -> InvariantProof:
        if self.options.cache_subproofs:
            cached = self._invariant_cache.get(spec)
            if cached is not None:
                obs.incr("subproof.invariant.hit")
                return cached
        obs.incr("subproof.invariant.miss")
        proof = prove_invariant(
            self.generic_step(), spec,
            syntactic_skip=self.options.syntactic_skip,
        )
        if self.options.cache_subproofs:
            self._invariant_cache[spec] = proof
        return proof

    def _bounded_prover(self, spec: BoundedSpec) -> BoundedProof:
        if self.options.cache_subproofs:
            cached = self._bounded_cache.get(spec)
            if cached is not None:
                obs.incr("subproof.bounded.hit")
                return cached
        obs.incr("subproof.bounded.miss")
        proof = prove_bounded(self.generic_step(), spec)
        if self.options.cache_subproofs:
            self._bounded_cache[spec] = proof
        return proof

    def _tactic_context(self) -> TacticContext:
        return TacticContext(
            step=self.generic_step(),
            invariant_prover=self._invariant_prover,
            bounded_prover=self._bounded_prover,
            syntactic_skip=self.options.syntactic_skip,
        )

    # -- pipeline: plan --------------------------------------------------------

    def obligation_key_for(self, prop: Property,
                           part: Optional[Tuple[str, str]]) -> str:
        """The content address of one obligation, served from the
        compiled plan's memo table when plans are enabled (the
        fingerprint is the hot path of planning; the memoized value is
        bit-for-bit the uncached one)."""
        if self.options.compile_plans:
            return self.compiled_plan().obligation_key_for(
                prop, self.options.syntactic_skip, part,
                lambda: obligation_key(
                    self.program_digest(), prop, self.options, part
                ),
            )
        return obligation_key(
            self.program_digest(), prop, self.options, part
        )

    def plan(self, prop: Property) -> Tuple[Obligation, ...]:
        """Pipeline stage one: the obligations of ``prop``, each with its
        content-addressed key."""
        return plan_property(
            self.spec.program, prop, self.options, self.program_digest(),
            key_for=lambda part: self.obligation_key_for(prop, part),
        )

    def ni_labeling(self, prop: NonInterference) -> Labeling:
        """The (memoized) executable labeling θc/θv for ``prop``."""
        cached = self._labeling_cache.get(prop.name)
        if cached is None:
            cached = build_labeling(self.generic_step(), prop)
            self._labeling_cache[prop.name] = cached
        return cached

    # -- pipeline: search ------------------------------------------------------

    def ni_part(self, prop: NonInterference,
                part: Optional[Tuple[str, str]]
                ) -> Tuple[object, bool]:
        """Discharge one NI obligation (the base condition when ``part``
        is ``None``, one exchange otherwise), consulting the proof store
        first.  Returns ``(payload, from_store)``; raises
        :class:`ProofSearchFailure` on violation."""
        kind = "ni-base" if part is None else "ni-exchange"
        where = "base" if part is None else f"{part[0]}=>{part[1]}"
        obs.event("obligation.start", property=prop.name,
                  obligation=kind, part=where)
        registry = obs.metrics_active()
        started = time.perf_counter() if registry is not None else 0.0
        with obs.span("obligation", property=prop.name, kind=kind,
                      part=where):
            try:
                payload, from_store = self._ni_part_inner(
                    prop, part, kind, where
                )
            except ProofSearchFailure:
                obs.event("obligation.finish", property=prop.name,
                          obligation=kind, part=where, verdict="failed",
                          store_hit=False)
                raise
        if registry is not None:
            registry.observe("obligation.seconds",
                             time.perf_counter() - started)
        obs.event("obligation.finish", property=prop.name,
                  obligation=kind, part=where, verdict="ok",
                  store_hit=from_store)
        return payload, from_store

    def _ni_part_inner(self, prop: NonInterference,
                       part: Optional[Tuple[str, str]], kind: str,
                       where: str) -> Tuple[object, bool]:
        """The uninstrumented body of :meth:`ni_part`."""
        key = self.obligation_key_for(prop, part)
        if self._store is not None:
            entry = self._store.get(key)
            if (entry is not None and entry.kind == kind
                    and entry.checked):
                return entry.payload, True
        if self._hot_results():
            hit = self.compiled_plan().cached_result(key)
            if hit is not None and hit[0] == kind:
                if self._store is not None:
                    # Hot entries come from successful searches, whose
                    # search *is* the check (see repro.prover.ni).
                    self._store.put(
                        StoreEntry(key, kind, hit[1], checked=True)
                    )
                return hit[1], False
        labeling = self.ni_labeling(prop)
        step = self.generic_step()
        with obs.span("search", property=prop.name, part=where):
            if part is None:
                payload: object = tuple(check_ni_base(step, labeling))
            else:
                payload = tuple(check_ni_exchange(
                    step, labeling, step.exchange(*part)
                ))
        if self._store is not None:
            # NI search *is* the check (see repro.prover.ni), so the
            # entry records checker approval in-band.
            self._store.put(StoreEntry(key, kind, payload, checked=True))
        if self._hot_results():
            self.compiled_plan().record_result(key, kind, payload)
        return payload, False

    # -- pipeline: check -------------------------------------------------------

    def check_trace_derivation(self,
                               proof: TracePropertyProof) -> List[str]:
        """Pipeline check stage for a trace derivation: replay it through
        the independent checker against the current abstraction."""
        return trace_proof_complaints(self.generic_step(), proof)

    def check_ni_derivation(self, proof: NIProof) -> List[str]:
        """Pipeline check stage for an NI record: re-derive the base
        condition and validate verdict coverage."""
        return ni_proof_complaints(self.generic_step(), proof)

    # -- per-property verification ----------------------------------------------

    def _prove_trace(self, prop: TraceProperty
                     ) -> Tuple[TracePropertyProof, bool, str]:
        """Plan, search (store first) and check one trace property (the
        property's single pipeline obligation, instrumented as such)."""
        obs.event("obligation.start", property=prop.name,
                  obligation="trace")
        registry = obs.metrics_active()
        started = time.perf_counter() if registry is not None else 0.0
        with obs.span("obligation", property=prop.name, kind="trace"):
            try:
                proof, checked, source = self._prove_trace_inner(prop)
            except (ProofSearchFailure, ProofCheckFailure):
                obs.event("obligation.finish", property=prop.name,
                          obligation="trace", verdict="failed",
                          store_hit=False)
                raise
        if registry is not None:
            registry.observe("obligation.seconds",
                             time.perf_counter() - started)
        obs.event("obligation.finish", property=prop.name,
                  obligation="trace", verdict="ok",
                  store_hit=(source == "store"))
        return proof, checked, source

    def _prove_trace_inner(self, prop: TraceProperty
                           ) -> Tuple[TracePropertyProof, bool, str]:
        """The uninstrumented body of :meth:`_prove_trace`."""
        with obs.span("plan", property=prop.name):
            (ob,) = self.plan(prop)
        if self._store is not None:
            entry = self._store.get(ob.key)
            if (entry is not None and entry.kind == "trace"
                    and isinstance(entry.payload, TracePropertyProof)
                    and entry.payload.property == prop):
                proof = entry.payload
                if self.options.check_proofs:
                    with obs.span("check", property=prop.name):
                        complaints = self.check_trace_derivation(proof)
                    if not complaints:
                        return proof, True, "store"
                    obs.incr("store.invalid")
                elif entry.checked:
                    # Checker approval recorded in-band at store time.
                    return proof, False, "store"
        if self._hot_results():
            hit = self.compiled_plan().cached_result(ob.key)
            if hit is not None and hit[0] == "trace" \
                    and isinstance(hit[1], TracePropertyProof) \
                    and hit[1].property == prop:
                proof = hit[1]
                checked = False
                if self.options.check_proofs:
                    with obs.span("check", property=prop.name):
                        check_trace_proof(self.generic_step(), proof)
                    checked = True
                if self._store is not None:
                    self._store.put(
                        StoreEntry(ob.key, "trace", proof, checked)
                    )
                    self._put_trace_fragments(prop, proof)
                return proof, checked, "searched"
        proof = self._search_trace(prop)
        checked = False
        if self.options.check_proofs:
            with obs.span("check", property=prop.name):
                check_trace_proof(self.generic_step(), proof)
            checked = True
        if self._store is not None:
            # The fragment-grained search already filed the per-fragment
            # entries; the whole derivation is filed under the
            # obligation key.
            self._store.put(StoreEntry(ob.key, "trace", proof, checked))
        if self._hot_results():
            self.compiled_plan().record_result(ob.key, "trace", proof)
        return proof, checked, "searched"

    # -- fragment-grained trace search -----------------------------------------

    def _fragment_key(self, prop: TraceProperty,
                      part: Optional[Tuple[str, str]]) -> str:
        """The content address of one trace-proof *fragment* (the base
        case for ``part=None``, one exchange's inductive case
        otherwise).  Scoped by :func:`dependency_digest` instead of the
        whole-program digest, so editing one handler only re-keys the
        fragments that syntactically depend on it.  Distinct from every
        whole-obligation key: the ``part`` tag carries a ``trace-frag``
        marker."""
        tag = ("trace-frag",) if part is None \
            else ("trace-frag",) + tuple(part)
        return obligation_key(
            dependency_digest(self.spec.program, part),
            prop, self.options, tag,
        )

    def fragment_keys(self, prop: TraceProperty
                      ) -> Dict[Optional[Tuple[str, str]], str]:
        """Every fragment's dependency-scoped content address for
        ``prop``: the base case under ``None`` plus one entry per
        exchange of the kernel.

        Purely syntactic (no symbolic step is built), so callers — the
        incremental invalidation map, the serve daemon — can enumerate
        what an edit invalidates without paying for verification.
        """
        out: Dict[Optional[Tuple[str, str]], str] = {
            None: self._fragment_key(prop, None),
        }
        for part in self.spec.program.exchange_keys():
            out[part] = self._fragment_key(prop, part)
        return out

    def _search_trace(self, prop: TraceProperty) -> TracePropertyProof:
        """The search stage for a trace property.

        Without a proof store this is one monolithic
        :func:`prove_trace_property` call.  With a store, the derivation
        is searched *fragment by fragment* (base case + one fragment per
        exchange), and each fragment is first looked up under its
        dependency-scoped key and revalidated through the independent
        checker before reuse — so an incremental edit to one handler
        re-proves only the fragments whose dependency slice changed (or
        whose revalidation fails, e.g. a stale secondary-induction
        invariant)."""
        if self._store is None:
            with obs.span("search", property=prop.name):
                return prove_trace_property(self._tactic_context(), prop)
        scheme = scheme_of(prop)
        step = self.generic_step()
        tc = self._tactic_context()
        with obs.span("search", property=prop.name):
            base = self._fragment_base(tc, prop, scheme, step)
            steps: List[StepProof] = []
            for ex in step.exchanges:
                steps.extend(
                    self._fragment_exchange(tc, prop, scheme, step, ex)
                )
        return TracePropertyProof(
            property=prop, scheme=scheme, base=base, steps=tuple(steps),
        )

    def _fragment_base(self, tc, prop: TraceProperty, scheme,
                       step: GenericStep) -> BaseProof:
        key = self._fragment_key(prop, None)
        entry = self._store.get(key)
        if (entry is not None and entry.kind == "trace-base"
                and isinstance(entry.payload, BaseProof)):
            if not trace_base_complaints(step, scheme, entry.payload):
                obs.incr("trace.fragment.hit")
                return entry.payload
            obs.incr("trace.fragment.invalid")
        obs.incr("trace.fragment.searched")
        base = prove_trace_base(tc, prop, scheme)
        self._store.put(StoreEntry(key, "trace-base", base, True))
        return base

    def _fragment_exchange(self, tc, prop: TraceProperty, scheme,
                           step: GenericStep, ex) -> List[StepProof]:
        key = self._fragment_key(prop, ex.key)
        entry = self._store.get(key)
        if (entry is not None and entry.kind == "trace-step"
                and isinstance(entry.payload, tuple)):
            complaints: List[str] = []
            recorded = record_step_proofs(entry.payload, complaints)
            if not complaints and not trace_exchange_complaints(
                step, scheme, ex, recorded
            ):
                obs.incr("trace.fragment.hit")
                return list(entry.payload)
            obs.incr("trace.fragment.invalid")
        obs.incr("trace.fragment.searched")
        part = prove_trace_exchange(tc, prop, scheme, ex)
        self._store.put(StoreEntry(key, "trace-step", tuple(part), True))
        return part

    def _put_trace_fragments(self, prop: TraceProperty,
                             proof: TracePropertyProof) -> None:
        """File a whole trace derivation's fragments under their
        dependency-scoped keys (used when the proof was obtained without
        the fragment search: hot-cache replays and incremental
        revalidation adoption)."""
        if self._store is None:
            return
        self._store.put(StoreEntry(
            self._fragment_key(prop, None), "trace-base",
            proof.base, True,
        ))
        by_exchange: Dict[Tuple[str, str], List[StepProof]] = {}
        for sp in proof.steps:
            by_exchange.setdefault(sp.exchange_key, []).append(sp)
        for ex_key, parts in by_exchange.items():
            self._store.put(StoreEntry(
                self._fragment_key(prop, ex_key), "trace-step",
                tuple(parts), True,
            ))

    def adopt_trace_proof(self, prop: TraceProperty,
                          proof: TracePropertyProof,
                          checked: bool) -> None:
        """Persist an externally validated derivation (the incremental
        harness's revalidation path) under the current obligation and
        fragment keys, so later runs serve it from the store."""
        if self._store is None:
            return
        (ob,) = self.plan(prop)
        self._store.put(StoreEntry(ob.key, "trace", proof, checked))
        self._put_trace_fragments(prop, proof)

    def _prove_ni(self, prop: NonInterference
                  ) -> Tuple[NIProof, bool, str]:
        """Plan, search (store first) and check one NI property.

        The check stage validates the *recorded* conditions (base
        re-derivation + verdict coverage) through the checker rather than
        re-running the whole NI search, halving the cost of the slowest
        property class.
        """
        with obs.span("plan", property=prop.name):
            obligations = self.plan(prop)
        all_from_store = True
        base_notes: Tuple[str, ...] = ()
        verdicts: List[PathVerdict] = []
        for ob in obligations:
            payload, from_store = self.ni_part(prop, ob.part)
            all_from_store = all_from_store and from_store
            if ob.part is None:
                base_notes = tuple(payload)
            else:
                verdicts.extend(payload)
        proof = NIProof(prop, base_notes, tuple(verdicts))
        checked = False
        if self.options.check_proofs:
            with obs.span("check", property=prop.name):
                check_ni_proof(self.generic_step(), proof)
            checked = True
        return proof, checked, "store" if all_from_store else "searched"

    def prove_property(self, prop: Property) -> PropertyResult:
        """Prove (and check) one property, timing the whole pipeline.

        Runs under the symbolic-cache scope selected by
        ``ProverOptions.term_cache``; caching never changes the verdict,
        the derivation, or its key (asserted by the differential tests).
        """
        with symcache.scope(self.options.term_cache), \
                symsolver.prefix_scope(self.options.compile_plans):
            with obs.span("property", property=prop.name):
                result = self._prove_property_inner(prop)
        registry = obs.metrics_active()
        if registry is not None:
            registry.observe("property.seconds", result.seconds)
        return result

    def _prove_property_inner(self, prop: Property) -> PropertyResult:
        start = time.perf_counter()
        try:
            if isinstance(prop, TraceProperty):
                proof, checked, source = self._prove_trace(prop)
            elif isinstance(prop, NonInterference):
                proof, checked, source = self._prove_ni(prop)
            else:
                raise ProofSearchFailure(f"unknown property form {prop!r}")
        except ProofSearchFailure as failure:
            return PropertyResult(
                property=prop,
                status="failed",
                seconds=time.perf_counter() - start,
                error=str(failure),
                counterexample=failure.counterexample,
            )
        except ProofCheckFailure as failure:
            return PropertyResult(
                property=prop,
                status="failed",
                seconds=time.perf_counter() - start,
                error=f"proof checker rejected the derivation: {failure}",
            )
        return PropertyResult(
            property=prop,
            status="proved",
            seconds=time.perf_counter() - start,
            proof=proof,
            checked=checked,
            source=source,
        )

    def _deadline_expired(self) -> bool:
        deadline = self.options.deadline
        return deadline is not None and time.monotonic() >= deadline

    def _deadline_result(self, prop: Property) -> PropertyResult:
        obs.incr("prover.deadline_skipped")
        obs.event("property.deadline", property=prop.name)
        return PropertyResult(
            property=prop,
            status="failed",
            seconds=0.0,
            error=DEADLINE_MESSAGE,
        )

    def verify_all(self, jobs: Optional[int] = None) -> VerificationReport:
        """Verify every property of the program.

        With ``jobs > 1`` the properties (and the NI obligations within
        them) fan out across a process pool; verdicts, derivations and
        checker approvals are identical to the serial run.
        """
        start = time.perf_counter()
        report = VerificationReport(self.spec.name)
        with obs.span("verify", program=self.spec.name,
                      jobs=jobs if jobs is not None else 1):
            if jobs is not None and jobs > 1 and self.spec.properties:
                from .parallel import verify_parallel

                report.results.extend(
                    verify_parallel(self.spec, self.options, jobs)
                )
            else:
                for prop in self.spec.properties:
                    if self._deadline_expired():
                        report.results.append(self._deadline_result(prop))
                        continue
                    report.results.append(self.prove_property(prop))
        report.wall_seconds = time.perf_counter() - start
        return report


def verify(spec: SpecifiedProgram,
           options: Optional[ProverOptions] = None,
           jobs: Optional[int] = None) -> VerificationReport:
    """One-shot convenience: verify all properties of ``spec``."""
    return Verifier(spec, options).verify_all(jobs=jobs)


def prove(spec: SpecifiedProgram, property_name: str,
          options: Optional[ProverOptions] = None) -> PropertyResult:
    """One-shot convenience: verify a single named property."""
    verifier = Verifier(spec, options)
    return verifier.prove_property(spec.property_named(property_name))
