"""Persistent, content-addressed storage of checked derivations.

Every proof obligation of the pipeline carries a stable key: the SHA-256
of a canonical rendering of (program AST, property, derivation-relevant
:class:`~repro.prover.engine.ProverOptions`, obligation part).  The store
is a directory of pickled :class:`StoreEntry` files, one per key, so
repeated ``verify``/``bench`` runs — and the incremental harness — reuse
checked subproofs across processes.

Canonicalization matters: ``repr`` of a ``frozenset`` (e.g. an NI
property's ``high_vars``) depends on ``PYTHONHASHSEED``, so
:func:`fingerprint` renders sets and dict keys in sorted order.  Two
processes therefore always agree on the key of the same obligation.

Trust story (see DESIGN.md): the store is *outside* the trusted base.
Trace derivations loaded from the store are replayed through the
independent checker against the current abstraction before they are
accepted; NI records (whose search *is* the check) carry the checker
approval in-band (``StoreEntry.checked``) and are re-validated for
coverage by :func:`repro.prover.checker.ni_proof_complaints`.  A corrupt
or truncated entry is treated as a miss and re-proved, never trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from .. import obs

#: Bump to invalidate every stored entry on a format change.
FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Canonical fingerprints
# ---------------------------------------------------------------------------


def fingerprint(value: object) -> str:
    """A canonical, process-stable rendering of a value tree.

    Dataclasses render as ``Name(field=...)`` over their declared fields;
    dict items and set/frozenset members are emitted in sorted order so
    the result never depends on ``PYTHONHASHSEED`` or insertion order.
    """
    parts: List[str] = []
    _render(value, parts.append)
    return "".join(parts)


def _render(value: object, emit: Callable[[str], None]) -> None:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        emit(type(value).__name__)
        emit("(")
        for field_ in dataclasses.fields(value):
            emit(field_.name)
            emit("=")
            _render(getattr(value, field_.name), emit)
            emit(",")
        emit(")")
    elif isinstance(value, dict):
        emit("{")
        for key in sorted(value, key=fingerprint):
            _render(key, emit)
            emit(":")
            _render(value[key], emit)
            emit(",")
        emit("}")
    elif isinstance(value, (set, frozenset)):
        emit("{")
        for item in sorted(fingerprint(member) for member in value):
            emit(item)
            emit(",")
        emit("}")
    elif isinstance(value, tuple):
        emit("(")
        for item in value:
            _render(item, emit)
            emit(",")
        emit(")")
    elif isinstance(value, list):
        emit("[")
        for item in value:
            _render(item, emit)
            emit(",")
        emit("]")
    else:
        emit(repr(value))


def digest(value: object) -> str:
    """SHA-256 hex digest of :func:`fingerprint` of ``value``."""
    return hashlib.sha256(fingerprint(value).encode("utf-8")).hexdigest()


def obligation_key(program_digest: str, prop: object, options: object,
                   part: Optional[Tuple[str, str]] = None) -> str:
    """The content address of one proof obligation.

    ``program_digest`` is :func:`digest` of the program AST (computed
    once per program and shared by every obligation); ``part`` names a
    sub-obligation within the property — ``None`` for a whole trace
    property or the NI base condition, an exchange key ``(ctype, msg)``
    for one NI exchange.  Only the derivation-relevant options
    (``syntactic_skip``, which changes the shape of the emitted proof)
    participate.
    """
    material = "\x1f".join([
        f"reflex-obligation-v{FORMAT_VERSION}",
        program_digest,
        fingerprint(prop),
        f"syntactic_skip={getattr(options, 'syntactic_skip', True)}",
        f"part={part!r}",
    ])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def dependency_digest(program: object, part: Optional[Tuple[str, str]]) -> str:
    """Digest of the program slice one trace-proof *fragment* depends on.

    Fragment keys (see ``Verifier._fragment_key``) substitute this for
    the whole-program digest so that editing one handler only re-keys the
    fragments whose slice actually changed: the base case depends on the
    declarations and the Init block; an exchange's inductive case depends
    on those plus its own handler.

    This is an *invalidation heuristic*, not a soundness boundary — a
    fragment may also lean on other handlers through secondary-induction
    invariants, which is why every fragment loaded from the store is
    replayed through the independent checker against the current
    abstraction before it is accepted (and re-proved when rejected).
    """
    components = getattr(program, "components", ())
    messages = getattr(program, "messages", ())
    init = getattr(program, "init", None)
    name = getattr(program, "name", "")
    if part is None:
        scope: Tuple[object, ...] = (
            "scope", "base", name, components, messages, init,
        )
    else:
        ctype, msg = part
        scope = (
            "scope", ctype, msg, name, components, messages, init,
            program.handler_for(ctype, msg),
        )
    return digest(scope)


def derivation_key(proof: object) -> str:
    """The content address of a derivation (any proof object).

    Bitwise-identical derivations — across serial/parallel and cold/warm
    runs — have identical keys; the differential tests assert exactly
    that.
    """
    return digest(proof)


# ---------------------------------------------------------------------------
# The on-disk store
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """One stored derivation: the keyed payload plus in-band approval.

    ``checked`` records whether the independent checker approved the
    payload when it was produced; loaders that skip re-validation (e.g.
    ``check_proofs=False``) only accept approved entries.
    """

    key: str
    kind: str  # "trace" | "ni-base" | "ni-exchange" | "trace-base" | "trace-step"
    payload: object
    checked: bool


class ProofStore:
    """A directory of pickled :class:`StoreEntry` files, one per key.

    Corruption tolerant: an unreadable, truncated or mismatched entry is
    counted (``store.corrupt``), unlinked best-effort, and reported as a
    miss — the obligation is simply re-proved.  Writes are atomic
    (temp file + ``os.replace``) so concurrent workers never observe a
    partial entry.
    """

    def __init__(self, root: object) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: keys this process has already persisted *checked* — repeat
        #: puts (coalesced daemon batches, retried parallel tasks) are
        #: idempotent no-ops instead of redundant temp-file churn
        self._seen: set = set()

    def path_for(self, key: str) -> Path:
        """The file backing ``key``."""
        return self.root / f"{key}.proof"

    def get(self, key: str) -> Optional[StoreEntry]:
        """Load the entry for ``key``; ``None`` on miss or corruption."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                stat = os.fstat(handle.fileno())
                raw = handle.read()
        except OSError:
            obs.incr("store.miss")
            return None
        try:
            entry = pickle.loads(raw)
            if not isinstance(entry, StoreEntry) or entry.key != key:
                raise ValueError("store entry does not match its key")
        except Exception:
            obs.incr("store.corrupt")
            self._unlink_if_same(path, stat)
            return None
        obs.incr("store.hit")
        return entry

    @staticmethod
    def _unlink_if_same(path: Path, stat: os.stat_result) -> None:
        """Remove ``path`` only while it is still the very file object we
        just read (matched by device + inode).

        A blind ``unlink`` here races with concurrent writers: between
        reading a truncated entry and removing it, another worker may
        have atomically replaced the file with a fresh *good* entry — a
        blind unlink would then destroy that worker's write and every
        later reader re-proves an obligation the store already held.
        """
        try:
            current = os.stat(path)
            if (current.st_dev, current.st_ino) == (stat.st_dev,
                                                    stat.st_ino):
                path.unlink()
        except OSError:
            pass

    def put(self, entry: StoreEntry) -> None:
        """Atomically persist ``entry``, idempotently under concurrency.

        Best effort: a full disk, permission error or unpicklable
        payload never fails the proof that produced it — the failed
        write is counted as ``store.write_error`` and the run continues
        without the cache entry.  The temp file and its descriptor are
        reclaimed on every failure path.

        Multi-writer discipline: a key this process already persisted
        checked is skipped outright, and an *unchecked* entry never
        lands on a key that already has a file — replacing a checked
        entry with an unchecked one would downgrade what
        ``check_proofs=False`` loaders may trust.  Both skips count as
        ``store.put_skipped``.
        """
        if entry.key in self._seen:
            obs.incr("store.put_skipped")
            return
        if not entry.checked and self.path_for(entry.key).exists():
            obs.incr("store.put_skipped")
            return
        try:
            if os.environ.get("REPRO_CHAOS_STORE_FULL"):
                # Chaos instrumentation (harness/chaos_serve.py): behave
                # exactly as a full disk would at the first write.
                raise OSError(28, "No space left on device (injected)")
            handle, tmp = tempfile.mkstemp(
                dir=str(self.root), suffix=".tmp"
            )
        except OSError:
            obs.incr("store.write_error")
            return
        try:
            stream = os.fdopen(handle, "wb")
        except Exception:  # noqa: BLE001 - the raw fd must not leak
            os.close(handle)
            obs.incr("store.write_error")
            self._discard(tmp)
            return
        try:
            with stream:
                pickle.dump(entry, stream)
            os.replace(tmp, self.path_for(entry.key))
        except Exception:  # noqa: BLE001 - pickle errors are not OSErrors
            obs.incr("store.write_error")
            self._discard(tmp)
            return
        obs.incr("store.put")
        if entry.checked:
            self._seen.add(entry.key)

    @staticmethod
    def _discard(tmp: str) -> None:
        """Best-effort removal of a failed write's temp file."""
        try:
            os.unlink(tmp)
        except OSError:
            pass

    def sweep_temps(self, older_than: float = 0.0) -> int:
        """Reclaim ``*.tmp`` files a crashed writer left behind.

        ``put`` discards its temp file on every failure path, but a
        process killed mid-write (SIGKILL, OOM, power loss) cannot —
        over a daemon's lifetime orphans would accumulate forever.
        Removes temp files last modified more than ``older_than``
        seconds ago; returns how many.  Deleting a *live* writer's temp
        is harmless (its ``os.replace`` fails and is counted as a
        ``store.write_error``; the proof itself is unaffected), so the
        default sweeps everything.
        """
        cutoff = time.time() - older_than
        swept = 0
        for path in self.root.glob("*.tmp"):
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    swept += 1
            except OSError:
                pass
        if swept:
            obs.incr("store.temp_swept", swept)
        return swept

    def clear(self) -> None:
        """Remove every entry (and any orphaned temp files)."""
        for pattern in ("*.proof", "*.tmp"):
            for path in self.root.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        self._seen.clear()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.proof"))
