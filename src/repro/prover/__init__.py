"""The REFLEX proof automation: obligations, tactics, invariants,
non-interference checks, the verification engine, and the independent
proof checker.
"""

from .checker import check_trace_proof, trace_proof_complaints
from .counterexample import CandidateCounterexample, find_model
from .derivation import (
    BoundedSpec,
    InvariantProof,
    InvariantSpec,
    TracePropertyProof,
)
from .engine import (
    PropertyResult,
    ProverOptions,
    VerificationReport,
    Verifier,
    prove,
    verify,
)
from .incremental import IncrementalReport, IncrementalVerifier
from .invariants import generalize, prove_invariant, validate_invariant
from .ni import Labeling, NIProof, build_labeling, prove_noninterference
from .obligations import InstPattern, Occurrence, Scheme, scheme_of
from .trace_tactics import prove_trace_property, validate_justification

__all__ = [
    "check_trace_proof",
    "trace_proof_complaints",
    "CandidateCounterexample",
    "find_model",
    "BoundedSpec",
    "IncrementalReport",
    "IncrementalVerifier",
    "InvariantProof",
    "InvariantSpec",
    "TracePropertyProof",
    "PropertyResult",
    "ProverOptions",
    "VerificationReport",
    "Verifier",
    "prove",
    "verify",
    "generalize",
    "prove_invariant",
    "validate_invariant",
    "Labeling",
    "NIProof",
    "build_labeling",
    "prove_noninterference",
    "InstPattern",
    "Occurrence",
    "Scheme",
    "scheme_of",
    "prove_trace_property",
    "validate_justification",
]
