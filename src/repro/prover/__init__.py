"""The REFLEX proof automation: obligations, tactics, invariants,
non-interference checks, the staged verification pipeline (plan → search
→ check), the persistent proof store, and the independent proof checker.
"""

from .checker import (
    check_ni_proof,
    check_trace_proof,
    ni_proof_complaints,
    trace_proof_complaints,
)
from .counterexample import CandidateCounterexample, find_model
from .derivation import (
    BoundedSpec,
    InvariantProof,
    InvariantSpec,
    TracePropertyProof,
)
from .engine import (
    DEADLINE_MESSAGE,
    PropertyResult,
    ProverOptions,
    VerificationReport,
    Verifier,
    prove,
    verify,
)
from .incremental import (
    IncrementalReport,
    IncrementalVerifier,
    InvalidationMap,
    changed_parts,
    fragment_digests,
)
from .invariants import generalize, prove_invariant, validate_invariant
from .ni import (
    Labeling,
    NIProof,
    PathVerdict,
    build_labeling,
    check_ni_base,
    check_ni_exchange,
    prove_noninterference,
)
from .obligations import InstPattern, Occurrence, Scheme, scheme_of
from .pipeline import Obligation, plan_property
from .proofstore import (
    ProofStore,
    StoreEntry,
    derivation_key,
    fingerprint,
    obligation_key,
)
from .trace_tactics import prove_trace_property, validate_justification

__all__ = [
    "check_ni_proof",
    "check_trace_proof",
    "ni_proof_complaints",
    "trace_proof_complaints",
    "CandidateCounterexample",
    "find_model",
    "BoundedSpec",
    "IncrementalReport",
    "IncrementalVerifier",
    "InvalidationMap",
    "changed_parts",
    "fragment_digests",
    "InvariantProof",
    "InvariantSpec",
    "TracePropertyProof",
    "DEADLINE_MESSAGE",
    "PropertyResult",
    "ProverOptions",
    "VerificationReport",
    "Verifier",
    "prove",
    "verify",
    "generalize",
    "prove_invariant",
    "validate_invariant",
    "Labeling",
    "NIProof",
    "PathVerdict",
    "build_labeling",
    "check_ni_base",
    "check_ni_exchange",
    "prove_noninterference",
    "InstPattern",
    "Occurrence",
    "Scheme",
    "scheme_of",
    "Obligation",
    "plan_property",
    "ProofStore",
    "StoreEntry",
    "derivation_key",
    "fingerprint",
    "obligation_key",
    "prove_trace_property",
    "validate_justification",
]
