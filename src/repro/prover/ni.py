"""Automatic non-interference verification (paper sections 4.2 and 5.2).

The user supplies θc (patterns selecting the *high* components, possibly
parameterized — e.g. every ``Tab`` and ``CookieProc`` of domain ``d`` for a
universally quantified ``d``) and θv (the *high* globals).  Theorem 1 of the
paper reduces non-interference to two conditions, each checked here by
symbolic evaluation of every handler path:

* ``NIlo`` — on every path where the sender may be **low**, the handler
  never sends to or spawns a provably-high component and never changes a
  high variable.
* ``NIhi`` — on every path where the sender may be **high**, the two
  executions of the relational definition stay in lock-step: every branch
  decision (including ``lookup`` outcomes) depends only on *shared* data,
  and every high-visible effect (sends to high components, spawns of high
  components, writes to high variables) is built from shared data.

Shared ("untainted") data in a high exchange:

* the message payload and the sender's identity/configuration — equal by
  the equal-high-inputs hypothesis (they are part of πi);
* high globals — equal by the NIinv induction hypothesis;
* labeling parameters — universally quantified, fixed;
* external call results — equal by construction: the paper factors them
  into ghost context trees that follow the handler's code structure and are
  part of the (equal) inputs;
* components found by a *high-only* ``lookup`` (predicate provably
  restricted to high components, itself computed from shared data) — the
  executions agree on the high portion of the component set, hence on the
  lookup's outcome.

Everything else — low globals, low-lookup results — is tainted.  Unlike the
trace tactics there is no search here: the conditions are checked directly,
so "proof" and "check" coincide; the emitted :class:`NIProof` records every
path verdict for reporting and re-validation.

Base condition (implicit in the paper's setting, enforced here): the Init
state must give high variables and high spawns deterministic values — an
Init whose external ``call`` results flow into high state would break the
induction at its root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .. import obs
from ..lang import types as ty
from ..lang.errors import ProofSearchFailure, ValidationError
from ..props.spec import NonInterference
from ..symbolic.behabs import Exchange, GenericStep
from ..symbolic.expr import (
    S_FALSE,
    SComp,
    SOp,
    SVar,
    Term,
    free_vars,
    sand,
    snot,
    sor,
)
from ..symbolic.seval import FoundFact, MissingFact, SymPath, eval_sexpr
from ..symbolic.simplify import dnf, simplify
from ..symbolic.solver import (
    Facts,
    entail_batch,
    extend_facts,
    prefix_enabled,
)
from ..symbolic.templates import TSend, TSpawn
from ..symbolic.unify import match_comp_term


@dataclass(frozen=True)
class Labeling:
    """θc / θv made executable over terms."""

    prop: NonInterference
    params: Tuple[Tuple[str, SVar], ...]

    def param_map(self) -> Dict[str, Term]:
        return dict(self.params)

    def high_condition(self, comp: SComp) -> Term:
        """A boolean term: the component is labeled high."""
        cases: List[Term] = []
        binding = self.param_map()
        for pattern in self.prop.high_patterns:
            m = match_comp_term(pattern, comp, binding)
            if m is None:
                continue
            cases.append(sand(*m.constraints))
        return simplify(sor(*cases)) if cases else S_FALSE

    def is_high_var(self, name: str) -> bool:
        return name in self.prop.high_vars


def build_labeling(step: GenericStep, prop: NonInterference) -> Labeling:
    """Materialize the labeling parameters with their inferred types."""
    param_types: Dict[str, ty.Type] = {}
    for pattern in prop.high_patterns:
        decl = step.info.comp_table[pattern.ctype]
        if pattern.config is None:
            continue
        from ..props.patterns import PVar

        for fp, cf in zip(pattern.config, decl.config):
            if isinstance(fp, PVar):
                prior = param_types.get(fp.name)
                if prior is not None and prior != cf.type:
                    raise ValidationError(
                        f"labeling parameter {fp.name} used at types "
                        f"{prior} and {cf.type}"
                    )
                param_types[fp.name] = cf.type
    params = tuple(
        (name, SVar(f"ni:{name}", param_types.get(name, ty.STR), "param"))
        for name in prop.params
    )
    return Labeling(prop, params)


# ---------------------------------------------------------------------------
# Proof objects (verdict records)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PathVerdict:
    exchange_key: Tuple[str, str]
    path_index: int
    case: str  # "low" | "high"
    notes: Tuple[str, ...]


@dataclass(frozen=True)
class NIProof:
    """The record of a successful NIlo/NIhi check (every path verdict)."""

    prop: NonInterference
    base_notes: Tuple[str, ...]
    verdicts: Tuple[PathVerdict, ...]

    def summary(self) -> str:
        """One-line account of the NI case analysis."""
        lows = sum(1 for v in self.verdicts if v.case == "low")
        highs = len(self.verdicts) - lows
        return (
            f"{self.prop.name}: init deterministic; {lows} low path "
            f"case(s) satisfy NIlo, {highs} high path case(s) satisfy NIhi"
        )


# ---------------------------------------------------------------------------
# The check
# ---------------------------------------------------------------------------


def prove_noninterference(step: GenericStep,
                          prop: NonInterference) -> NIProof:
    """Check NIlo/NIhi for every exchange path; raise
    :class:`ProofSearchFailure` on the first violation.

    This is the serial composition of the pipeline's NI obligations: the
    base condition (:func:`check_ni_base`) followed by every exchange
    (:func:`check_ni_exchange`) in program order.  The engine and the
    parallel driver call the pieces directly so each obligation can be
    cached and fanned out on its own.
    """
    labeling = build_labeling(step, prop)
    base_notes = check_ni_base(step, labeling)
    verdicts: List[PathVerdict] = []
    for ex in step.exchanges:
        verdicts.extend(check_ni_exchange(step, labeling, ex))
    return NIProof(prop, tuple(base_notes), tuple(verdicts))


def check_ni_base(step: GenericStep, labeling: Labeling) -> List[str]:
    """Init must determine high variables and high spawns."""
    notes: List[str] = []
    init_env = step.init.env_dict()
    for name in sorted(labeling.prop.high_vars):
        term = init_env[name]
        nondet = [v for v in free_vars(term) if v.origin == "init_call"]
        if nondet:
            raise ProofSearchFailure(
                f"{labeling.prop.name}: high variable {name} is initialized "
                f"from non-deterministic call result(s) "
                f"{[str(v) for v in nondet]}"
            )
        notes.append(f"high var {name} deterministic at Init")
    for comp in step.init.comps:
        cond = labeling.high_condition(comp)
        if cond == S_FALSE:
            continue
        nondet = [v for v in free_vars(comp) if v.origin == "init_call"]
        if nondet:
            raise ProofSearchFailure(
                f"{labeling.prop.name}: possibly-high Init component "
                f"{comp} has non-deterministic configuration"
            )
        notes.append(f"init component {comp.label} deterministic")
    return notes


def ni_case_cubes(labeling: Labeling,
                  ex: Exchange) -> List[Tuple[str, Tuple[Term, ...]]]:
    """The sender-label case split of one exchange: ``(case, cube)``
    pairs, low cases first, in the canonical order shared by the search
    (:func:`check_ni_exchange`) and the coverage validation
    (:func:`repro.prover.checker.ni_proof_complaints`)."""
    high_cond = labeling.high_condition(ex.sender)
    low_cond = simplify(snot(high_cond))
    cases: List[Tuple[str, Tuple[Term, ...]]] = []
    for case, condition in (("low", low_cond), ("high", high_cond)):
        for cube in dnf(condition):
            cases.append((case, cube))
    return cases


def feasible_ni_triples(labeling: Labeling,
                        ex: Exchange) -> List[Tuple[Tuple[str, str],
                                                    int, str]]:
    """Every ``(exchange key, path index, case)`` triple of ``ex`` whose
    path condition is consistent with its sender-label cube — exactly the
    triples :func:`check_ni_exchange` emits verdicts for, in the same
    order."""
    triples: List[Tuple[Tuple[str, str], int, str]] = []
    for case, cube in ni_case_cubes(labeling, ex):
        for path_index, path in enumerate(ex.paths):
            facts = extend_facts(path.cond, cube)
            if facts.inconsistent():
                continue
            triples.append((ex.key, path_index, case))
    return triples


def check_ni_exchange(step: GenericStep, labeling: Labeling,
                      ex: Exchange) -> List[PathVerdict]:
    """Check NIlo/NIhi on every feasible path case of one exchange — the
    pipeline's per-exchange NI obligation."""
    verdicts: List[PathVerdict] = []
    for case, cube in ni_case_cubes(labeling, ex):
        for path_index, path in enumerate(ex.paths):
            facts = extend_facts(path.cond, cube)
            if facts.inconsistent():
                continue
            obs.incr("ni.path_case")
            prefix = tuple(path.cond) + tuple(cube)
            if case == "low":
                notes = _check_nilo(step, labeling, ex, path, facts,
                                    prefix)
            else:
                notes = _check_nihi(step, labeling, ex, path, facts)
            verdicts.append(PathVerdict(
                ex.key, path_index, case, tuple(notes)
            ))
    return verdicts


# -- NIlo ---------------------------------------------------------------------


def _check_nilo(step: GenericStep, labeling: Labeling, ex: Exchange,
                path: SymPath, facts: Facts,
                prefix: Tuple[Term, ...] = ()) -> List[str]:
    """A low sender's handler must not touch anything high."""
    notes: List[str] = []
    where = f"{labeling.prop.name}: NIlo at {ex.ctype}=>{ex.msg}"
    pre_env = step.pre_env_dict()
    frame = [
        (name, SOp("eq", (post, pre_env[name])))
        for name, post in path.env if labeling.is_high_var(name)
    ]
    if frame:
        queries = [query for _name, query in frame]
        # The high-variable frame conditions of one path form one query
        # batch over the path's asserted prefix; without the prefix
        # cache the shared Facts discharges them directly (identical
        # answers either way — pinned by the batch equivalence test).
        if prefix and prefix_enabled():
            results = entail_batch(prefix, queries,
                                   stop_on_failure=True)
        else:
            results = facts.implies_all(queries, stop_on_failure=True)
        for (name, _query), entailed in zip(frame, results):
            if not entailed:
                raise ProofSearchFailure(
                    f"{where}: low handler may update high variable "
                    f"{name}"
                )
    for action in path.actions:
        if isinstance(action, TSend):
            if not facts.implies(snot(labeling.high_condition(action.comp))):
                raise ProofSearchFailure(
                    f"{where}: low handler may send {action.msg} to a "
                    f"high component ({action.comp})"
                )
            notes.append(f"send {action.msg} provably targets low")
        elif isinstance(action, TSpawn):
            if not facts.implies(snot(labeling.high_condition(action.comp))):
                raise ProofSearchFailure(
                    f"{where}: low handler may spawn a high component "
                    f"({action.comp})"
                )
            notes.append("spawn provably low")
    return notes


# -- NIhi ---------------------------------------------------------------------


def _check_nihi(step: GenericStep, labeling: Labeling, ex: Exchange,
                path: SymPath, facts: Facts) -> List[str]:
    """A high sender's handler must stay in relational lock-step."""
    notes: List[str] = []
    where = f"{labeling.prop.name}: NIhi at {ex.ctype}=>{ex.msg}"
    untainted = _initial_untainted(step, labeling, ex)

    # Lookups, in execution order, may add their candidate's configuration
    # to the shared set — or taint the whole path.
    for fact in path.lookup_facts:
        candidate = fact.comp if isinstance(fact, FoundFact) \
            else _arbitrary_candidate(step, fact)
        candidate_vars = set(free_vars(candidate))
        pred_term = eval_sexpr(
            fact.pred, dict(fact.env), {fact.bind: candidate},
            fact.sender, step.info,
        )
        foreign = {
            v for v in free_vars(pred_term) if v not in candidate_vars
        }
        if not foreign.issubset(untainted):
            raise ProofSearchFailure(
                f"{where}: lookup predicate reads low data "
                f"({[str(v) for v in sorted(foreign - untainted, key=str)]})"
            )
        if not _lookup_high_only(step, labeling, fact, facts):
            raise ProofSearchFailure(
                f"{where}: lookup over components that may be low — the "
                f"executions may disagree on its outcome"
            )
        if isinstance(fact, FoundFact):
            untainted |= candidate_vars
        notes.append(f"lookup of {fact.ctype} is high-only")

    # Every branch decision on the path must be over shared data.
    for literal in path.cond:
        stray = {
            v for v in free_vars(literal)
            if v not in untainted and v.origin != "param"
        }
        if stray:
            raise ProofSearchFailure(
                f"{where}: branch condition {literal} depends on low data "
                f"({[str(v) for v in sorted(stray, key=str)]})"
            )

    # High-visible effects must be built from shared data.
    pre_env = step.pre_env_dict()
    for action in path.actions:
        if isinstance(action, TSend):
            _check_output(step, labeling, facts, untainted,
                          action.comp, action.payload,
                          f"{where}: send {action.msg}")
        elif isinstance(action, TSpawn):
            _check_output(step, labeling, facts, untainted,
                          action.comp, action.comp.config,
                          f"{where}: spawn of {action.comp.ctype}")
    for name, post in path.env:
        if not labeling.is_high_var(name):
            continue
        if facts.implies(SOp("eq", (post, pre_env[name]))):
            continue
        stray = {v for v in free_vars(post) if v not in untainted}
        if stray:
            raise ProofSearchFailure(
                f"{where}: high variable {name} assigned from low data "
                f"({[str(v) for v in sorted(stray, key=str)]})"
            )
        notes.append(f"high var {name} updated from shared data")
    return notes


def _initial_untainted(step: GenericStep, labeling: Labeling,
                       ex: Exchange) -> set:
    """Variables shared between the two executions at handler entry."""
    untainted = set(ex.payload)
    untainted.update(
        v for v in free_vars(ex.sender) if v.origin == "config"
    )
    untainted.update(v for _, v in labeling.params)
    for name, term in step.pre_env_dict().items():
        if labeling.is_high_var(name) and isinstance(term, SVar):
            untainted.add(term)
    # Call results are shared by the ghost-context-tree construction.
    return _CallClosedSet(untainted)


class _CallClosedSet(set):
    """A variable set that additionally contains every call result."""

    def __contains__(self, item: object) -> bool:
        if isinstance(item, SVar) and item.origin == "call":
            return True
        return set.__contains__(self, item)


def _arbitrary_candidate(step: GenericStep, fact) -> SComp:
    """An arbitrary component of the fact's type, used to probe whose
    components a lookup predicate could select."""
    decl = step.info.comp_table[fact.ctype]
    return SComp(
        label=f"ni_probe_{fact.ctype}",
        ctype=fact.ctype,
        config=tuple(
            SVar(f"ni_probe_{fact.ctype}_{f.name}", f.type, "config")
            for f in decl.config
        ),
        origin="lookup",
        seq=0,
    )


def _lookup_high_only(step: GenericStep, labeling: Labeling, fact,
                      facts: Facts) -> bool:
    """Is the lookup's predicate provably restricted to high components?

    Take an arbitrary component of the type, assume the predicate holds of
    it (under the path facts), and require it to be labeled high.
    """
    decl = step.info.comp_table[fact.ctype]
    candidate = SComp(
        label=f"ni_cand_{fact.ctype}",
        ctype=fact.ctype,
        config=tuple(
            SVar(f"ni_cand_{fact.ctype}_{f.name}", f.type, "config")
            for f in decl.config
        ),
        origin="lookup",
        seq=0,
    )
    pred_term = eval_sexpr(
        fact.pred, dict(fact.env), {fact.bind: candidate}, fact.sender,
        step.info,
    )
    probe = facts.copy()
    probe.assert_term(pred_term)
    if probe.inconsistent():
        return True
    return probe.implies(labeling.high_condition(candidate))


def _check_output(step: GenericStep, labeling: Labeling, facts: Facts,
                  untainted: set, comp: SComp, payload: Sequence[Term],
                  where: str) -> None:
    """Check one output action of a high handler.

    An action built entirely from shared data is *identical* in the two
    executions, so its projection onto the high outputs agrees whatever its
    label turns out to be.  An action involving tainted data is only
    admissible when its target is provably low (then it never appears in
    πo).
    """
    stray = set()
    for term in list(payload) + [comp]:
        stray |= {v for v in free_vars(term) if v not in untainted}
    if not stray:
        return
    if facts.implies(snot(labeling.high_condition(comp))):
        return  # a low output: unconstrained by NIinv
    raise ProofSearchFailure(
        f"{where}: possibly-high output built from low data "
        f"({[str(v) for v in sorted(stray, key=str)]})"
    )
