"""Candidate counterexamples for failed proofs.

When the search gets stuck on an occurrence, the bare diagnostic ("no
earlier action matches ...") already names the handler and path; this
module goes further and *instantiates* the stuck path: a small model
finder assigns concrete values to the path's symbolic variables, and the
exchange's action templates are rendered under that model — a concrete
"here is the exchange that would break your property" story.

The candidate is honest about its status: the pre-state is an *arbitrary*
state satisfying the path condition, so the scenario is a genuine
counterexample only if that state is reachable.  For genuinely false
properties (the section-6.3 scenarios) it always is; for properties that
are true but beyond the automation the candidate shows exactly which
invariant the search failed to infer.  Both readings are precisely what a
user debugging a failed pushbutton proof needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang import types as ty
from ..lang.values import VBool, VFd, VNum, VStr, VTuple, Value
from ..symbolic.expr import (
    SComp,
    SConst,
    SOp,
    SProj,
    STuple,
    SVar,
    Term,
    free_vars,
    sub_terms,
)
from ..symbolic.templates import (
    TCall,
    Template,
    TRecv,
    TSelect,
    TSend,
    TSpawn,
)

#: Search-space bounds for the model finder.
MAX_VARIABLES = 8
EXTRA_STRINGS = ("witness", "other")
NUM_RANGE = 5


@dataclass(frozen=True)
class CandidateCounterexample:
    """A concrete instantiation of the stuck proof obligation."""

    exchange: str
    model: Tuple[Tuple[str, str], ...]
    actions: Tuple[str, ...]
    note: str

    def __str__(self) -> str:
        assignments = ", ".join(f"{k} = {v}" for k, v in self.model)
        lines = [
            f"candidate counterexample at exchange {self.exchange}:",
            f"  with {assignments or 'no free values'}:",
        ]
        lines.extend(f"    {a}" for a in self.actions)
        lines.append(f"  {self.note}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# A tiny model finder for cubes of literals
# ---------------------------------------------------------------------------


def _string_domain(literals: Sequence[Term]) -> List[Value]:
    constants = {
        t.value.s
        for literal in literals
        for t in sub_terms(literal)
        if isinstance(t, SConst) and isinstance(t.value, VStr)
    }
    return [VStr(s) for s in sorted(constants) + list(EXTRA_STRINGS)]


def _domain(t: ty.Type, strings: List[Value]) -> List[Value]:
    if isinstance(t, ty.StrType):
        return strings
    if isinstance(t, ty.NumType):
        return [VNum(n) for n in range(NUM_RANGE)]
    if isinstance(t, ty.BoolType):
        return [VBool(False), VBool(True)]
    if isinstance(t, ty.FdType):
        return [VFd(9), VFd(10)]
    if isinstance(t, ty.TupleType):
        parts = [_domain(e, strings) for e in t.elems]
        return [VTuple(combo) for combo in itertools.product(*parts)]
    return []


def _eval(t: Term, model: Dict[SVar, Value]) -> Optional[Value]:
    if isinstance(t, SConst):
        return t.value
    if isinstance(t, SVar):
        return model.get(t)
    if isinstance(t, STuple):
        elems = [_eval(e, model) for e in t.elems]
        if any(e is None for e in elems):
            return None
        return VTuple(tuple(elems))
    if isinstance(t, SProj):
        base = _eval(t.base, model)
        if not isinstance(base, VTuple):
            return None
        return base.elems[t.index]
    if isinstance(t, SComp):
        # Component identity: label-distinct terms get distinct tokens
        # except that aliasing constraints are not modelled — literals
        # over raw component identity make the finder give up (None).
        return None
    if isinstance(t, SOp):
        args = [_eval(a, model) for a in t.args]
        if any(a is None for a in args):
            return None
        return _eval_op(t.op, args)
    return None


def _eval_op(op: str, args: List[Value]) -> Optional[Value]:
    if op == "eq":
        return VBool(args[0] == args[1])
    if op == "not":
        return VBool(not args[0].b)
    if op == "and":
        return VBool(all(a.b for a in args))
    if op == "or":
        return VBool(any(a.b for a in args))
    if op == "add":
        return VNum(args[0].n + args[1].n)
    if op == "sub":
        return VNum(args[0].n - args[1].n)
    if op == "lt":
        return VBool(args[0].n < args[1].n)
    if op == "le":
        return VBool(args[0].n <= args[1].n)
    if op == "concat":
        return VStr(args[0].s + args[1].s)
    return None


def find_model(literals: Sequence[Term]) -> Optional[Dict[SVar, Value]]:
    """A small-domain satisfying assignment for a cube, or ``None`` (both
    for unsatisfiable cubes and when the search space is too large or the
    cube leaves the supported fragment)."""
    variables = sorted(
        {v for literal in literals for v in free_vars(literal)},
        key=lambda v: v.name,
    )
    if len(variables) > MAX_VARIABLES:
        return None
    strings = _string_domain(literals)
    domains = [_domain(v.type, strings) for v in variables]
    if any(not d for d in domains):
        return None
    for combo in itertools.product(*domains):
        model = dict(zip(variables, combo))
        verdict = [(_eval(lit, model)) for lit in literals]
        if any(v is None for v in verdict):
            return None  # unsupported fragment: give up, don't guess
        if all(isinstance(v, VBool) and v.b for v in verdict):
            return model
    return None


# ---------------------------------------------------------------------------
# Rendering templates under a model
# ---------------------------------------------------------------------------


def _render_term(t: Term, model: Dict[SVar, Value]) -> str:
    value = _eval(t, model)
    if value is not None:
        return str(value)
    if isinstance(t, SComp):
        return _render_comp(t, model)
    return f"⟨{t}⟩"


def _render_comp(c: SComp, model: Dict[SVar, Value]) -> str:
    config = ", ".join(_render_term(e, model) for e in c.config)
    return f"{c.ctype}({config})"


def _template_terms(template: Template) -> List[Term]:
    if isinstance(template, (TSelect, TSpawn)):
        return [template.comp]
    if isinstance(template, (TRecv, TSend)):
        return [template.comp, *template.payload]
    if isinstance(template, TCall):
        return [*template.args, template.result]
    return []


def render_template(template: Template, model: Dict[SVar, Value]) -> str:
    """Render one action template with the model's values filled in."""
    if isinstance(template, TSelect):
        return f"Select({_render_comp(template.comp, model)})"
    if isinstance(template, TRecv):
        payload = ", ".join(_render_term(p, model) for p in template.payload)
        return (f"Recv({_render_comp(template.comp, model)}, "
                f"{template.msg}({payload}))")
    if isinstance(template, TSend):
        payload = ", ".join(_render_term(p, model) for p in template.payload)
        return (f"Send({_render_comp(template.comp, model)}, "
                f"{template.msg}({payload}))")
    if isinstance(template, TSpawn):
        return f"Spawn({_render_comp(template.comp, model)})"
    if isinstance(template, TCall):
        args = ", ".join(_render_term(a, model) for a in template.args)
        return (f"Call({template.func}({args}) = "
                f"{_render_term(template.result, model)})")
    return str(template)


def build_candidate(exchange_name: str, cond: Sequence[Term],
                    match_constraints: Sequence[Term],
                    actions: Sequence[Template],
                    trigger_index: int,
                    reason: str) -> Optional[CandidateCounterexample]:
    """Instantiate a stuck occurrence, if the model finder succeeds."""
    literals = list(cond) + list(match_constraints)
    model = find_model(literals)
    if model is None:
        return None
    # Give unconstrained action-payload variables default values so the
    # rendered exchange is fully concrete.
    strings = _string_domain(literals)
    for template in actions:
        for slot in _template_terms(template):
            for v in free_vars(slot):
                if v not in model:
                    domain = _domain(v.type, strings)
                    if domain:
                        model[v] = domain[0]
    rendered = []
    for i, template in enumerate(actions):
        marker = "  <-- trigger" if i == trigger_index else ""
        rendered.append(render_template(template, model) + marker)
    shown_model = tuple(sorted(
        (v.name, str(val)) for v, val in model.items()
    ))
    return CandidateCounterexample(
        exchange=exchange_name,
        model=shown_model,
        actions=tuple(rendered),
        note=(
            f"{reason} (counterexample is relative to the behavioral "
            f"abstraction: genuine if the assumed pre-state is reachable)"
        ),
    )
