"""Incremental re-verification (the future work of paper section 6.4:
"Future work can explore incremental verification in order to further
reduce the time required for re-verification").

The paper's headline workflow edits a kernel and simply re-runs the
automation.  This module makes the re-run cheap, soundly:

* **identical program** → cached results are returned outright;
* **edited program** → derivations from the previous round are *replayed
  through the independent checker* against the freshly built behavioral
  abstraction.  Because the abstraction's terms are named locally per
  exchange (see :func:`repro.symbolic.behabs.generic_step`), a derivation
  that never touched the edited handler validates byte-for-byte and is
  reused — no proof search.  Only derivations the checker rejects (they
  genuinely depended on edited code) are searched for again.

Soundness is free: reuse happens only when the trusted checker accepts
the old derivation against the *new* program's abstraction.  The search
is skipped, never the check.  Non-interference results are re-checked
directly (for NI, checking *is* the proof), so NI reuse only applies to
byte-identical programs.

Revalidation is exactly the pipeline's *check* stage
(:meth:`repro.prover.engine.Verifier.check_trace_derivation`); when the
options carry a ``proof_store`` the engine additionally consults the
persistent cache, so incremental rounds reuse checked subproofs across
processes too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..props.spec import Property, SpecifiedProgram, TraceProperty
from .derivation import TracePropertyProof
from .engine import PropertyResult, ProverOptions, Verifier


@dataclass
class IncrementalResult:
    """A property result plus how it was obtained this round."""

    result: PropertyResult
    #: "cached" (identical program), "revalidated" (old derivation checked
    #: against the new abstraction), or "searched" (full proof search)
    how: str

    @property
    def proved(self) -> bool:
        return self.result.proved


@dataclass
class IncrementalReport:
    """Results of one incremental round, tagged by how each was obtained."""

    program_name: str
    rounds: int
    entries: List[IncrementalResult] = field(default_factory=list)

    @property
    def all_proved(self) -> bool:
        return all(e.proved for e in self.entries)

    def counts(self) -> Dict[str, int]:
        """How many results were cached / revalidated / searched."""
        out = {"cached": 0, "revalidated": 0, "searched": 0}
        for e in self.entries:
            out[e.how] += 1
        return out

    def __str__(self) -> str:
        counts = self.counts()
        lines = [
            f"incremental verification of {self.program_name} "
            f"(round {self.rounds}): {counts['cached']} cached, "
            f"{counts['revalidated']} revalidated without search, "
            f"{counts['searched']} searched"
        ]
        lines.extend(f"  [{e.how}] {e.result}" for e in self.entries)
        return "\n".join(lines)


def _program_fingerprint(spec: SpecifiedProgram) -> Tuple:
    """Structural identity of the program (properties excluded: a changed
    property is always freshly proved)."""
    return (spec.program,)


class IncrementalVerifier:
    """Verifies successive versions of a program, reusing work."""

    def __init__(self, options: Optional[ProverOptions] = None) -> None:
        self.options = options or ProverOptions()
        self._rounds = 0
        self._fingerprint: Optional[Tuple] = None
        #: property name → (property, result) from the previous round
        self._previous: Dict[str, Tuple[Property, PropertyResult]] = {}

    def verify(self, spec: SpecifiedProgram) -> IncrementalReport:
        """Verify this round's program, reusing previous derivations."""
        self._rounds += 1
        verifier = Verifier(spec, self.options)
        fingerprint = _program_fingerprint(spec)
        unchanged_program = fingerprint == self._fingerprint
        report = IncrementalReport(spec.name, self._rounds)

        for prop in spec.properties:
            entry = self._verify_one(verifier, prop, unchanged_program)
            report.entries.append(entry)

        self._fingerprint = fingerprint
        self._previous = {
            e.result.property.name: (e.result.property, e.result)
            for e in report.entries
        }
        return report

    # -- per-property strategy -------------------------------------------------

    def _verify_one(self, verifier: Verifier, prop: Property,
                    unchanged_program: bool) -> IncrementalResult:
        cached = self._previous.get(prop.name)
        if cached is not None:
            old_prop, old_result = cached
            if unchanged_program and old_prop == prop:
                return IncrementalResult(old_result, "cached")
            if (
                isinstance(prop, TraceProperty)
                and old_prop == prop
                and old_result.proved
                and isinstance(old_result.proof, TracePropertyProof)
            ):
                revalidated = self._try_revalidate(verifier, prop,
                                                   old_result)
                if revalidated is not None:
                    return IncrementalResult(revalidated, "revalidated")
        return IncrementalResult(verifier.prove_property(prop), "searched")

    def _try_revalidate(self, verifier: Verifier, prop: TraceProperty,
                        old_result: PropertyResult
                        ) -> Optional[PropertyResult]:
        """Replay the old derivation through the pipeline's check stage
        against the new abstraction; None when it no longer validates."""
        start = time.perf_counter()
        with obs.span("check", property=prop.name, reuse="incremental"):
            complaints = verifier.check_trace_derivation(old_result.proof)
        if complaints:
            obs.incr("incremental.revalidation.rejected")
            return None
        obs.incr("incremental.revalidated")
        # File the revalidated derivation (whole proof + per-exchange
        # fragments) under the *new* program's keys: the next round — or a
        # fresh process sharing the proof store — serves it without
        # re-entering this replay path, and an edit that dodges revalidation
        # still reuses every fragment whose dependency key is unchanged.
        verifier.adopt_trace_proof(prop, old_result.proof, checked=True)
        return PropertyResult(
            property=prop,
            status="proved",
            seconds=time.perf_counter() - start,
            proof=old_result.proof,
            checked=True,
            source="revalidated",
        )
