"""Incremental re-verification (the future work of paper section 6.4:
"Future work can explore incremental verification in order to further
reduce the time required for re-verification").

The paper's headline workflow edits a kernel and simply re-runs the
automation.  This module makes the re-run cheap, soundly:

* **identical program** → cached results are returned outright;
* **edited program** → derivations from the previous round are *replayed
  through the independent checker* against the freshly built behavioral
  abstraction.  Because the abstraction's terms are named locally per
  exchange (see :func:`repro.symbolic.behabs.generic_step`), a derivation
  that never touched the edited handler validates byte-for-byte and is
  reused — no proof search.  Only derivations the checker rejects (they
  genuinely depended on edited code) are searched for again.

Soundness is free: reuse happens only when the trusted checker accepts
the old derivation against the *new* program's abstraction.  The search
is skipped, never the check.  Non-interference results are re-checked
directly (for NI, checking *is* the proof), so NI reuse only applies to
byte-identical programs.

Revalidation is exactly the pipeline's *check* stage
(:meth:`repro.prover.engine.Verifier.check_trace_derivation`); when the
options carry a ``proof_store`` the engine additionally consults the
persistent cache, so incremental rounds reuse checked subproofs across
processes too.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from .. import obs
from ..props.spec import Property, SpecifiedProgram, TraceProperty
from .derivation import TracePropertyProof
from .engine import PropertyResult, ProverOptions, Verifier
from .proofstore import dependency_digest

#: A fragment slice identifier: ``None`` for the base case (declarations
#: + Init), an exchange key ``(ctype, msg)`` for one handler's slice.
Part = Optional[Tuple[str, str]]


def fragment_digests(program: object) -> Dict[Part, str]:
    """The dependency digest of every fragment slice of ``program``.

    One entry for the base slice (``None`` → declarations + Init) plus
    one per exchange of the kernel.  Two submissions that differ in one
    handler differ exactly in that handler's entry, which is what lets a
    session — or the serve daemon — decide *what changed* without
    verifying anything.
    """
    out: Dict[Part, str] = {None: dependency_digest(program, None)}
    for part in program.exchange_keys():
        out[part] = dependency_digest(program, part)
    return out


def changed_parts(old: Dict[Part, str],
                  new: Dict[Part, str]) -> List[Part]:
    """The fragment slices of ``new`` whose dependency digest differs
    from (or is absent in) ``old``, plus slices ``old`` had that ``new``
    dropped — in ``new``'s planning order, dropped slices last."""
    changed: List[Part] = [
        part for part, digest_ in new.items() if old.get(part) != digest_
    ]
    changed.extend(part for part in old if part not in new)
    return changed


def _env_cap(name: str, default: int) -> int:
    """An integer cap from the environment, tolerant of nonsense."""
    try:
        return max(1, int(os.environ.get(name, default)))
    except ValueError:
        return default


#: Default ceiling on tracked fragment digests.  One kernel contributes
#: one digest per fragment slice (a handful to a few dozen), so the
#: default comfortably covers hundreds of live kernel versions while
#: bounding a daemon that churns through thousands of unrelated ones.
DEFAULT_MAX_TRACKED_DIGESTS = _env_cap("REPRO_INCREMENTAL_MAX_DIGESTS",
                                       4096)


class InvalidationMap:
    """The dependency-tracked invalidation index, shared across sessions.

    Maps each fragment's dependency digest to the content-addressed
    obligation/fragment keys that were filed under it (see
    :meth:`Verifier.fragment_keys`): when a submission changes a
    handler, the digests that disappeared name exactly the stored keys
    the edit superseded — everything else is servable as-is.  The serve
    daemon keeps one instance for all its sessions; access is
    thread-safe.

    The index is *bounded*: digests evict least-recently-recorded once
    ``max_digests`` is exceeded (a re-recorded digest — any live
    kernel's — moves back to the young end), so a long-lived daemon
    verifying unboundedly many distinct kernels holds a bounded index.
    Eviction only ever forgets *bookkeeping*: a later
    :meth:`invalidated_keys` reports fewer superseded store keys, but
    soundness never depended on this map — reuse is always gated by the
    checker and the content-addressed store keys themselves.
    """

    def __init__(self,
                 max_digests: int = DEFAULT_MAX_TRACKED_DIGESTS) -> None:
        self._lock = threading.Lock()
        self._keys: "OrderedDict[str, set]" = OrderedDict()
        self.max_digests = max(1, int(max_digests))
        self.evicted = 0

    def record(self, fragment_digest: str, obligation_key: str) -> None:
        """File ``obligation_key`` under the fragment slice digest it
        depends on (refreshing that digest's eviction age)."""
        with self._lock:
            keys = self._keys.get(fragment_digest)
            if keys is None:
                keys = self._keys[fragment_digest] = set()
            else:
                self._keys.move_to_end(fragment_digest)
            keys.add(obligation_key)
            while len(self._keys) > self.max_digests:
                self._keys.popitem(last=False)
                self.evicted += 1

    def discard(self, fragment_digest: str) -> None:
        """Drop one digest's entries outright (a caller that *knows* a
        digest is superseded everywhere need not wait for LRU aging)."""
        with self._lock:
            self._keys.pop(fragment_digest, None)

    def record_program(self, verifier: Verifier,
                       digests: Optional[Dict[Part, str]] = None) -> None:
        """File every trace-property fragment key of ``verifier``'s
        program under its slice digest (one call per submission)."""
        if digests is None:
            digests = fragment_digests(verifier.spec.program)
        for prop in verifier.spec.trace_properties():
            for part, key in verifier.fragment_keys(prop).items():
                self.record(digests[part], key)

    def keys_for(self, fragment_digest: str) -> FrozenSet[str]:
        """The obligation keys filed under one slice digest."""
        with self._lock:
            return frozenset(self._keys.get(fragment_digest, ()))

    def invalidated_keys(self, old: Dict[Part, str],
                         new: Dict[Part, str]) -> FrozenSet[str]:
        """The obligation keys superseded by moving from ``old`` digests
        to ``new``: everything filed under a changed slice's *old*
        digest.  (Their store entries are dead weight for the new
        program — its fragments re-key — so this is also the eviction
        candidate set.)"""
        out: set = set()
        for part in changed_parts(old, new):
            digest_ = old.get(part)
            if digest_ is not None:
                out.update(self.keys_for(digest_))
        return frozenset(out)

    def digests(self) -> FrozenSet[str]:
        """Every slice digest currently indexed."""
        with self._lock:
            return frozenset(self._keys)

    def stats(self) -> dict:
        """JSON-ready index counters (for serve ``stats`` responses)."""
        with self._lock:
            return {
                "digests": len(self._keys),
                "keys": sum(len(keys) for keys in self._keys.values()),
                "max_digests": self.max_digests,
                "evicted": self.evicted,
            }

    def __len__(self) -> int:
        with self._lock:
            return sum(len(keys) for keys in self._keys.values())


@dataclass
class IncrementalResult:
    """A property result plus how it was obtained this round."""

    result: PropertyResult
    #: "cached" (identical program), "revalidated" (old derivation checked
    #: against the new abstraction), or "searched" (full proof search)
    how: str

    @property
    def proved(self) -> bool:
        return self.result.proved


@dataclass
class IncrementalReport:
    """Results of one incremental round, tagged by how each was obtained."""

    program_name: str
    rounds: int
    entries: List[IncrementalResult] = field(default_factory=list)
    #: fragment slices whose dependency digest changed since the
    #: previous round (``None`` on the first round: everything is new)
    changed: Optional[List[Part]] = None

    @property
    def all_proved(self) -> bool:
        return all(e.proved for e in self.entries)

    def counts(self) -> Dict[str, int]:
        """How many results were cached / revalidated / searched."""
        out = {"cached": 0, "revalidated": 0, "searched": 0}
        for e in self.entries:
            out[e.how] += 1
        return out

    def __str__(self) -> str:
        counts = self.counts()
        lines = [
            f"incremental verification of {self.program_name} "
            f"(round {self.rounds}): {counts['cached']} cached, "
            f"{counts['revalidated']} revalidated without search, "
            f"{counts['searched']} searched"
        ]
        lines.extend(f"  [{e.how}] {e.result}" for e in self.entries)
        return "\n".join(lines)


def _program_fingerprint(spec: SpecifiedProgram) -> Tuple:
    """Structural identity of the program (properties excluded: a changed
    property is always freshly proved)."""
    return (spec.program,)


class IncrementalVerifier:
    """Verifies successive versions of a program, reusing work."""

    def __init__(self, options: Optional[ProverOptions] = None,
                 invalidation: Optional[InvalidationMap] = None) -> None:
        self.options = options or ProverOptions()
        self._rounds = 0
        self._fingerprint: Optional[Tuple] = None
        #: property name → (property, result) from the previous round
        self._previous: Dict[str, Tuple[Property, PropertyResult]] = {}
        #: fragment slice → dependency digest from the previous round
        self._digests: Dict[Part, str] = {}
        #: optional shared (cross-session) invalidation index
        self.invalidation = invalidation

    def previous_digests(self) -> Dict[Part, str]:
        """The previous round's fragment digests (empty before round 1)."""
        return dict(self._digests)

    def verify(self, spec: SpecifiedProgram) -> IncrementalReport:
        """Verify this round's program, reusing previous derivations."""
        self._rounds += 1
        verifier = Verifier(spec, self.options)
        fingerprint = _program_fingerprint(spec)
        unchanged_program = fingerprint == self._fingerprint
        report = IncrementalReport(spec.name, self._rounds)
        digests = fragment_digests(spec.program)
        if self._rounds > 1:
            report.changed = changed_parts(self._digests, digests)
            obs.incr("incremental.parts.changed", len(report.changed))

        for prop in spec.properties:
            entry = self._verify_one(verifier, prop, unchanged_program)
            report.entries.append(entry)

        if self.invalidation is not None:
            self.invalidation.record_program(verifier, digests)
        self._digests = digests
        self._fingerprint = fingerprint
        self._previous = {
            e.result.property.name: (e.result.property, e.result)
            for e in report.entries
        }
        return report

    # -- per-property strategy -------------------------------------------------

    def _verify_one(self, verifier: Verifier, prop: Property,
                    unchanged_program: bool) -> IncrementalResult:
        cached = self._previous.get(prop.name)
        if cached is not None:
            old_prop, old_result = cached
            if unchanged_program and old_prop == prop:
                return IncrementalResult(old_result, "cached")
            if (
                isinstance(prop, TraceProperty)
                and old_prop == prop
                and old_result.proved
                and isinstance(old_result.proof, TracePropertyProof)
            ):
                revalidated = self._try_revalidate(verifier, prop,
                                                   old_result)
                if revalidated is not None:
                    return IncrementalResult(revalidated, "revalidated")
        return IncrementalResult(verifier.prove_property(prop), "searched")

    def _try_revalidate(self, verifier: Verifier, prop: TraceProperty,
                        old_result: PropertyResult
                        ) -> Optional[PropertyResult]:
        """Replay the old derivation through the pipeline's check stage
        against the new abstraction; None when it no longer validates."""
        start = time.perf_counter()
        with obs.span("check", property=prop.name, reuse="incremental"):
            complaints = verifier.check_trace_derivation(old_result.proof)
        if complaints:
            obs.incr("incremental.revalidation.rejected")
            return None
        obs.incr("incremental.revalidated")
        # File the revalidated derivation (whole proof + per-exchange
        # fragments) under the *new* program's keys: the next round — or a
        # fresh process sharing the proof store — serves it without
        # re-entering this replay path, and an edit that dodges revalidation
        # still reuses every fragment whose dependency key is unchanged.
        verifier.adopt_trace_proof(prop, old_result.proof, checked=True)
        return PropertyResult(
            property=prop,
            status="proved",
            seconds=time.perf_counter() - start,
            proof=old_result.proof,
            checked=True,
            source="revalidated",
        )
