"""Inductive-invariant inference and proof (paper section 5.1).

When a trigger occurrence needs an action from the *pre-state trace* —
``Enables`` needs a past witness, ``Disables`` needs a clean past — the
tactic cannot look at the opaque trace directly.  Instead it:

1. **generalizes** the branch conditions at the occurrence into a candidate
   invariant: "whenever guard ``G`` holds of the state, the trace contains
   (history) / does not contain (absence) an action matching ``A'``", where
   the occurrence's message-payload data has been replaced by universally
   quantified parameters — this is exactly the paper's "prove that the
   relevant branch conditions cannot be satisfied without also satisfying
   the obligations required by the given property";
2. **proves** the candidate by a secondary induction over BehAbs, where
   every exchange falls into the paper's three cases: (A) the handler
   itself emits the required action, (B) the handler preserves the guard so
   the induction hypothesis applies, or (C) the branch conditions
   contradict the post-state guard.

Soundness note: guard literals are (substituted copies of) literals of the
occurrence's own path condition, so the instantiated guard holds at the
occurrence by construction; the checker re-verifies this entailment rather
than trusting it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..lang import ast
from ..lang.errors import ProofSearchFailure
from ..props.patterns import ActionPattern
from ..symbolic.behabs import Exchange, GenericStep
from ..symbolic.expr import (
    SComp,
    SVar,
    Term,
    free_vars,
    comps_in,
    substitute,
)
from ..symbolic.simplify import simplify
from ..symbolic.solver import Facts, extend_facts, facts_for
from ..symbolic.templates import Template
from ..symbolic.unify import SymBinding
from .derivation import (
    BaseClean,
    BaseVacuous,
    BaseWitness,
    CaseEstablished,
    CaseInfeasible,
    CasePreserved,
    CaseSyntacticSkip,
    InvariantCase,
    InvariantProof,
    InvariantSpec,
)
from .obligations import InstPattern, boundary_may_match, handler_may_emit

#: SVar origins that persist across exchanges and may appear in invariants.
PERSISTENT_ORIGINS = frozenset({"state", "init_call", "param"})


def _is_persistent_term(t: Term) -> bool:
    """A term may appear in an invariant iff all its variables persist
    across exchanges and all its components are Init components."""
    if any(v.origin not in PERSISTENT_ORIGINS for v in free_vars(t)):
        return False
    return all(c.origin == "init" for c in comps_in(t))


def _step_local_vars(t: Term) -> frozenset:
    return frozenset(
        v for v in free_vars(t) if v.origin not in PERSISTENT_ORIGINS
    )


# ---------------------------------------------------------------------------
# Generalization
# ---------------------------------------------------------------------------


def generalize(required: ActionPattern, sigma: SymBinding,
               cube: Sequence[Term], kind: str) -> Optional[InvariantSpec]:
    """Build a candidate invariant from an occurrence.

    ``sigma`` is the trigger's binding of property variables to terms;
    ``cube`` is the path condition plus the trigger's match constraints.
    Returns ``None`` when the occurrence's data cannot be generalized (e.g.
    a bound term mentions a handler-local component identity).
    """
    sigma_terms = list(sigma.values())
    if any(
        any(c.origin != "init" for c in comps_in(t)) for t in sigma_terms
    ):
        return None

    relevant: set = set()
    for t in sigma_terms:
        relevant |= _step_local_vars(t)

    # Deterministic parameter names make equal specs structurally equal,
    # which is what the engine's subproof cache keys on (section 6.4's
    # "saving subproofs at key cut points").
    rho: Dict[Term, Term] = {
        v: SVar(f"p:{v.name}", v.type, "param")
        for v in sorted(relevant, key=lambda v: v.name)
    }

    guard: List[Term] = []
    for literal in cube:
        locals_ = _step_local_vars(literal)
        if not locals_.issubset(relevant):
            continue
        if any(c.origin != "init" for c in comps_in(literal)):
            continue
        generalized = simplify(substitute(literal, rho))
        if generalized not in guard:
            guard.append(generalized)

    inst_binding = tuple(sorted(
        (name, simplify(substitute(t, rho))) for name, t in sigma.items()
    ))
    return InvariantSpec(
        kind=kind,
        guard=tuple(sorted(guard, key=repr)),
        inst=InstPattern(required, inst_binding),
        params=tuple(rho[v] for v in sorted(relevant, key=lambda v: v.name)),
    )


def generalization_instantiation(
    spec: InvariantSpec, sigma: SymBinding, cube: Sequence[Term]
) -> Tuple[Tuple[SVar, Term], ...]:
    """The param → occurrence-term map matching :func:`generalize`'s
    construction (params are named ``p:<original variable name>``)."""
    by_name: Dict[str, Term] = {}
    for t in list(sigma.values()) + list(cube):
        for v in _step_local_vars(t):
            by_name[f"p:{v.name}"] = v
    return tuple(
        (param, by_name[param.name])
        for param in spec.params
        if param.name in by_name
    )


def instantiate(terms: Sequence[Term],
                instantiation: Sequence[Tuple[SVar, Term]]) -> List[Term]:
    """Substitute an instantiation into invariant terms."""
    mapping: Dict[Term, Term] = {p: t for p, t in instantiation}
    return [simplify(substitute(t, mapping)) for t in terms]


# ---------------------------------------------------------------------------
# Proof of an invariant by secondary induction
# ---------------------------------------------------------------------------


def _state_var_map(step: GenericStep) -> Dict[str, Term]:
    """Global name → its pre-state term (the shared SVar / Init comp)."""
    return step.pre_env_dict()


def _guard_globals(step: GenericStep, spec: InvariantSpec) -> frozenset:
    """The global variables the guard reads."""
    pre = _state_var_map(step)
    guard_vars = set()
    for g in spec.guard:
        guard_vars |= set(free_vars(g))
    return frozenset(
        name for name, term in pre.items()
        if isinstance(term, SVar) and term in guard_vars
    )


def _init_substitution(step: GenericStep) -> Dict[Term, Term]:
    """Pre-state variable → Init value, for evaluating guards at the base
    case."""
    init_env = step.init.env_dict()
    subst: Dict[Term, Term] = {}
    for name, term in step.pre_env_dict().items():
        if isinstance(term, SVar):
            subst[term] = init_env[name]
    return subst


def _post_substitution(step: GenericStep,
                       path_env: Dict[str, Term]) -> Dict[Term, Term]:
    """Pre-state variable → post-exchange value, for one symbolic path."""
    subst: Dict[Term, Term] = {}
    for name, term in step.pre_env_dict().items():
        if isinstance(term, SVar):
            subst[term] = path_env[name]
    return subst


def _guard_facts(cond: Sequence[Term], guard_terms: Sequence[Term]) -> Facts:
    # Paths of one exchange share their condition prefix; build on the
    # prefix-cached Facts rather than re-asserting from scratch.
    return extend_facts(cond, guard_terms)


def _entailed_match(facts: Facts, inst: InstPattern,
                    template: Template) -> bool:
    m = inst.match(template)
    if m is None:
        return False
    results = facts.implies_all(m.constraints, stop_on_failure=True)
    return len(results) == len(m.constraints) and all(results)


def _refute_matches(facts: Facts, inst: InstPattern,
                    templates: Sequence[Template]) -> Optional[Tuple[int, ...]]:
    """For absence: every potential match must be refuted; returns the
    indices that needed the solver, or ``None`` if some match survives."""
    refuted: List[int] = []
    for i, template in enumerate(templates):
        m = inst.match(template)
        if m is None:
            continue
        probe = facts.copy()
        for c in m.constraints:
            probe.assert_term(c)
        if probe.inconsistent():
            refuted.append(i)
        else:
            return None
    return tuple(refuted)


def prove_invariant(step: GenericStep, spec: InvariantSpec,
                    syntactic_skip: bool = True) -> InvariantProof:
    """Prove ``spec`` by induction over BehAbs, or raise
    :class:`ProofSearchFailure`."""
    base = _prove_base(step, spec)
    cases: List[Tuple[Tuple[str, str], int, InvariantCase]] = []
    guard_globals = _guard_globals(step, spec)
    for ex in step.exchanges:
        skip = syntactic_skip and _exchange_skippable(
            step, spec, ex, guard_globals
        )
        if skip:
            obs.incr("invariant.exchange.skipped")
            cases.append((ex.key, -1, CaseSyntacticSkip()))
            continue
        for path_index, path in enumerate(ex.paths):
            obs.incr("invariant.case")
            case = _prove_case(step, spec, ex, path)
            if case is None:
                raise ProofSearchFailure(
                    f"invariant {spec} not inductive at "
                    f"{ex.ctype}=>{ex.msg} path {path_index}",
                    residual=[str(path)],
                )
            cases.append((ex.key, path_index, case))
    return InvariantProof(spec=spec, base=base, cases=tuple(cases))


def _prove_base(step: GenericStep, spec: InvariantSpec):
    subst = _init_substitution(step)
    guard0 = [simplify(substitute(g, subst)) for g in spec.guard]
    facts = _guard_facts((), guard0)
    if facts.inconsistent():
        return BaseVacuous()
    if spec.kind == "history":
        for i, template in enumerate(step.init.actions):
            if _entailed_match(facts, spec.inst, template):
                return BaseWitness(i)
        raise ProofSearchFailure(
            f"invariant {spec}: guard satisfiable at Init but Init emits "
            f"no matching action"
        )
    refuted = _refute_matches(facts, spec.inst, step.init.actions)
    if refuted is None:
        raise ProofSearchFailure(
            f"invariant {spec}: Init may already emit a forbidden action"
        )
    return BaseClean(refuted)


def _exchange_skippable(step: GenericStep, spec: InvariantSpec,
                        ex: Exchange, guard_globals: frozenset) -> bool:
    """Syntactic check: the exchange cannot assign a guard variable, and
    (for absence) cannot emit a matching action."""
    body = ex.handler.body if ex.handler is not None else ast.Nop()
    if ast.assigned_vars(body) & guard_globals:
        return False
    if spec.kind == "absence":
        if boundary_may_match(spec.inst.pattern, ex.ctype, ex.msg):
            return False
        if handler_may_emit(spec.inst.pattern, body):
            return False
    return True


def _prove_case(step: GenericStep, spec: InvariantSpec, ex: Exchange,
                path) -> Optional[InvariantCase]:
    subst = _post_substitution(step, path.env_dict())
    guard_post = [simplify(substitute(g, subst)) for g in spec.guard]
    facts = _guard_facts(path.cond, guard_post)
    if facts.inconsistent():
        return CaseInfeasible()
    if spec.kind == "history":
        for i, template in enumerate(path.actions):
            if _entailed_match(facts, spec.inst, template):
                return CaseEstablished(i)
        if all(facts.implies(g) for g in spec.guard):
            return CasePreserved()
        return None
    # absence: the guard must have held before, and nothing new may match.
    if not all(facts.implies(g) for g in spec.guard):
        return None
    refuted = _refute_matches(facts, spec.inst, path.actions)
    if refuted is None:
        return None
    return CasePreserved(refuted)


# ---------------------------------------------------------------------------
# Bounded-counter invariants
# ---------------------------------------------------------------------------


def prove_bounded(step: GenericStep, spec) -> "BoundedProof":
    """Prove a :class:`~repro.prover.derivation.BoundedSpec` by induction,
    or raise :class:`ProofSearchFailure`."""
    from ..symbolic.expr import SOp
    from ..symbolic.templates import TSpawn
    from .derivation import BoundedProof

    _check_bounded_base(step, spec)
    bound_name = _bound_var_name(step, spec)
    cases: List[Tuple[Tuple[str, str], int, str]] = []
    for ex in step.exchanges:
        if _bounded_skippable(step, spec, ex, bound_name):
            cases.append((ex.key, -1, "skip"))
            continue
        for path_index, path in enumerate(ex.paths):
            if not _bounded_case_ok(step, spec, path):
                raise ProofSearchFailure(
                    f"bounded invariant {spec} fails at "
                    f"{ex.ctype}=>{ex.msg} path {path_index}"
                )
            cases.append((ex.key, path_index, "ok"))
    return BoundedProof(spec=spec, cases=tuple(cases))


def _bound_var_name(step: GenericStep, spec) -> str:
    for name, term in step.pre_env_dict().items():
        if term == spec.bound_var:
            return name
    raise ProofSearchFailure(
        f"bounded invariant: {spec.bound_var} is not a state variable"
    )


def _check_bounded_base(step: GenericStep, spec) -> None:
    from ..symbolic.expr import SOp
    from ..symbolic.templates import TSpawn

    init_env = step.init.env_dict()
    bound0 = init_env[_bound_var_name(step, spec)]
    facts = Facts()
    for template in step.init.actions:
        if isinstance(template, TSpawn) and template.comp.ctype == spec.ctype:
            below = SOp("lt", (template.comp.config[spec.config_index],
                               bound0))
            if not facts.implies(below):
                raise ProofSearchFailure(
                    f"bounded invariant {spec}: Init spawn {template} is "
                    f"not below the initial bound {bound0}"
                )


def _bounded_skippable(step: GenericStep, spec, ex: Exchange,
                       bound_name: str) -> bool:
    body = ex.handler.body if ex.handler is not None else ast.Nop()
    if bound_name in ast.assigned_vars(body):
        return False
    return not any(
        isinstance(cmd, ast.SpawnCmd) and cmd.ctype == spec.ctype
        for cmd in ast.sub_cmds(body)
    )


def _bounded_case_ok(step: GenericStep, spec, path) -> bool:
    from ..symbolic.expr import SOp
    from ..symbolic.templates import TSpawn

    facts = facts_for(path.cond)
    if facts.inconsistent():
        return True
    post_bound = path.env_dict()[_bound_var_name(step, spec)]
    # Monotonicity: the bound never decreases.
    if not facts.implies(SOp("le", (spec.bound_var, post_bound))):
        return False
    # Every new spawn of the type sits strictly below the *post* bound.
    for template in path.actions:
        if isinstance(template, TSpawn) and template.comp.ctype == spec.ctype:
            below = SOp("lt", (template.comp.config[spec.config_index],
                               post_bound))
            if not facts.implies(below):
                return False
    return True


def validate_bounded(step: GenericStep, proof) -> List[str]:
    """Re-validate a bounded-invariant proof."""
    complaints: List[str] = []
    spec = proof.spec
    try:
        _check_bounded_base(step, spec)
        bound_name = _bound_var_name(step, spec)
    except ProofSearchFailure as failure:
        return [str(failure)]
    recorded = {(key, idx): tag for key, idx, tag in proof.cases}
    for ex in step.exchanges:
        if recorded.get((ex.key, -1)) == "skip":
            if not _bounded_skippable(step, spec, ex, bound_name):
                complaints.append(
                    f"invalid bounded skip at {ex.ctype}=>{ex.msg}"
                )
            continue
        for path_index, path in enumerate(ex.paths):
            if recorded.get((ex.key, path_index)) != "ok":
                complaints.append(
                    f"missing bounded case {ex.ctype}=>{ex.msg} "
                    f"path {path_index}"
                )
            elif not _bounded_case_ok(step, spec, path):
                complaints.append(
                    f"bounded case fails at {ex.ctype}=>{ex.msg} "
                    f"path {path_index}"
                )
    return complaints


# ---------------------------------------------------------------------------
# Validation (used by the checker)
# ---------------------------------------------------------------------------


def validate_invariant(step: GenericStep, proof: InvariantProof) -> List[str]:
    """Re-validate an invariant proof; returns a list of complaints (empty
    means the proof checks)."""
    complaints: List[str] = []
    spec = proof.spec

    # Base case.
    subst = _init_substitution(step)
    guard0 = [simplify(substitute(g, subst)) for g in spec.guard]
    facts = _guard_facts((), guard0)
    if isinstance(proof.base, BaseVacuous):
        if not facts.inconsistent():
            complaints.append("base claimed vacuous but guard is "
                              "satisfiable at Init")
    elif isinstance(proof.base, BaseWitness):
        if spec.kind != "history" or proof.base.action_index >= len(
                step.init.actions):
            complaints.append("base witness out of range")
        elif not _entailed_match(
                facts, spec.inst,
                step.init.actions[proof.base.action_index]):
            complaints.append("base witness does not match")
    elif isinstance(proof.base, BaseClean):
        if spec.kind != "absence":
            complaints.append("BaseClean only applies to absence invariants")
        elif _refute_matches(facts, spec.inst, step.init.actions) is None:
            complaints.append("base claimed clean but Init may emit a "
                              "forbidden action")
    else:
        complaints.append(f"unknown base case {proof.base!r}")

    # Coverage: every exchange/path must have a case.
    recorded = {}
    for key, path_index, case in proof.cases:
        recorded[(key, path_index)] = case
    guard_globals = _guard_globals(step, spec)
    for ex in step.exchanges:
        whole = recorded.get((ex.key, -1))
        if isinstance(whole, CaseSyntacticSkip):
            if not _exchange_skippable(step, spec, ex, guard_globals):
                complaints.append(
                    f"invalid syntactic skip at {ex.ctype}=>{ex.msg}"
                )
            continue
        for path_index, path in enumerate(ex.paths):
            case = recorded.get((ex.key, path_index))
            if case is None:
                complaints.append(
                    f"missing inductive case {ex.ctype}=>{ex.msg} "
                    f"path {path_index}"
                )
                continue
            expected = _prove_case(step, spec, ex, path)
            if not _case_acceptable(step, spec, ex, path, case):
                complaints.append(
                    f"invalid case {case!r} at {ex.ctype}=>{ex.msg} "
                    f"path {path_index} (expected like {expected!r})"
                )
    return complaints


def _case_acceptable(step: GenericStep, spec: InvariantSpec, ex: Exchange,
                     path, case: InvariantCase) -> bool:
    subst = _post_substitution(step, path.env_dict())
    guard_post = [simplify(substitute(g, subst)) for g in spec.guard]
    facts = _guard_facts(path.cond, guard_post)
    if isinstance(case, CaseInfeasible):
        return facts.inconsistent()
    if isinstance(case, CaseEstablished):
        return (
            spec.kind == "history"
            and 0 <= case.action_index < len(path.actions)
            and _entailed_match(facts, spec.inst,
                                path.actions[case.action_index])
        )
    if isinstance(case, CasePreserved):
        if not all(facts.implies(g) for g in spec.guard):
            return False
        if spec.kind == "absence":
            return _refute_matches(facts, spec.inst, path.actions) is not None
        return True
    return False
