"""Service-level fault injection: chaos testing the serve daemon.

The kernel-level chaos harness (:mod:`repro.harness.chaos`) attacks the
*runtime* — crash/drop/dup faults against a supervised interpreter.
This module attacks the *service*: each scenario boots a real
:class:`~repro.serve.server.VerificationServer` on an ephemeral TCP
port, injects one class of operational fault, and asserts the PR 9
resilience invariants the hard way:

* the daemon never wedges — it still answers ``ping`` after the fault;
* every live client gets a terminal frame (verdict or error), never a
  silent hang;
* no sessions leak — ``live_sessions`` drains back to zero;
* admission capacity is released — ``inflight`` drains back to zero.

Six scenarios, selectable by name:

``worker-kill``
    a worker process SIGKILLs itself mid-task (the
    ``REPRO_CHAOS_TASK_FAULT=sigkill`` hook in
    :mod:`repro.prover.parallel`, latched to fire exactly once); the
    retry path must still deliver a fully-proved verdict.
``hung-task``
    a worker sleeps forever mid-task; the task-timeout watchdog must
    condemn exactly the latched task and answer a partial verdict.
``disk-full-store``
    every proof-store write raises ``ENOSPC``
    (``REPRO_CHAOS_STORE_FULL``); verification must succeed anyway,
    with the failures counted, not raised.
``client-disconnect``
    a client submits and then vanishes (RST) before its verdict is
    sent; the drop must be counted (``serve.client_drop``) and the
    session reaped.
``malformed-frame``
    oversized length announcements, undecodable bodies, non-object
    JSON, unknown ops and source-less submits; each draws a typed
    error, none harms the daemon.
``connection-flood``
    more concurrent submissions than the admission controller allows,
    plus connections that vanish without sending; excess submits are
    shed with ``overloaded``/``retry_after_ms``, the backlog stays
    bounded, and every admitted client is eventually answered.

Determinism: scenarios record *facts that are stable under scheduling*
— booleans, and counts only where the harness forces them to be exact
(latch files make a fault fire exactly once; the server's ``batch_hook``
gate holds the prover so flood arithmetic is sequential).  No wall
times appear in reports, so a fixed ``--seed`` reproduces the report
bit for bit.
"""

from __future__ import annotations

import contextlib
import json
import os
import shutil
import socket
import struct
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from .. import obs
from ..prover import ProverOptions
from ..seeds import derive_rng, derive_seed
from ..serve.client import ServeClient, ServeError
from ..serve.protocol import MAX_FRAME_BYTES, recv_message, send_message
from ..serve.server import ServeOptions, VerificationServer
from ..systems import car

#: Scenario registry order = execution and report order.
SCENARIO_NAMES = (
    "worker-kill",
    "hung-task",
    "disk-full-store",
    "client-disconnect",
    "malformed-frame",
    "connection-flood",
)


@dataclass
class ScenarioReport:
    """One scenario's deterministic facts and verdict."""

    name: str
    seed: int
    #: named facts (bools, and counts the harness forces to be exact)
    checks: Dict[str, object] = field(default_factory=dict)
    #: human-readable failed expectations; empty means the scenario held
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def expect(self, name: str, ok: bool, detail: str = "") -> None:
        """Record one named invariant; a falsy ``ok`` fails the scenario."""
        self.checks[name] = bool(ok)
        if not ok:
            self.failures.append(f"{name}: {detail}" if detail else name)

    def record(self, name: str, value: object) -> None:
        """Record one named fact without judging it."""
        self.checks[name] = value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "checks": dict(self.checks),
            "failures": list(self.failures),
        }


@dataclass
class ChaosServeReport:
    """The full sweep: one :class:`ScenarioReport` per scenario run."""

    seed: int
    scenarios: List[ScenarioReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(scenario.ok for scenario in self.scenarios)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "scenarios": [scenario.to_dict()
                          for scenario in self.scenarios],
        }


# -- plumbing ----------------------------------------------------------------


@contextlib.contextmanager
def _chaos_env(**pairs: object) -> Iterator[None]:
    """Set chaos environment hooks for the scope, restoring exactly."""
    saved = {name: os.environ.get(name) for name in pairs}
    try:
        for name, value in pairs.items():
            os.environ[name] = str(value)
        yield
    finally:
        for name, old in saved.items():
            if old is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = old


@contextlib.contextmanager
def _daemon(tmp: str, jobs: int = 1,
            prover_options: Optional[ProverOptions] = None,
            **overrides: object) -> Iterator[VerificationServer]:
    """A real daemon on an ephemeral TCP port, torn down afterwards."""
    options = ServeOptions(host="127.0.0.1", port=0,
                           store=os.path.join(tmp, "store"),
                           jobs=jobs, **overrides)
    server = VerificationServer(options, prover_options=prover_options)
    server.start()
    try:
        yield server
    finally:
        server.close()


def _wait_until(predicate: Callable[[], bool],
                timeout: float = 30.0) -> bool:
    """Poll ``predicate`` until true or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def _raw_client(server: VerificationServer) -> socket.socket:
    """A bare socket to the daemon for malformed/disconnect scenarios."""
    sock = socket.create_connection(server.address, timeout=30)
    return sock


def _abort_connection(sock: socket.socket) -> None:
    """Close with RST (SO_LINGER 0) — the peer vanishes, not says bye."""
    with contextlib.suppress(OSError):
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
    sock.close()


def _daemon_healthy(report: ScenarioReport,
                    server: VerificationServer) -> None:
    """The common post-fault invariants: daemon answers, nothing leaks."""
    try:
        with ServeClient(server.address, timeout=30) as probe:
            report.expect("daemon_answers_ping", probe.ping(),
                          "no ok frame for ping after the fault")
    except (ServeError, OSError) as error:
        report.expect("daemon_answers_ping", False, str(error))
    report.expect(
        "sessions_drained",
        _wait_until(lambda: server.sessions.stats()["live_sessions"] == 0),
        f"live_sessions={server.sessions.stats()['live_sessions']}",
    )
    report.expect(
        "admission_drained",
        _wait_until(lambda: server.admission.inflight == 0),
        f"inflight={server.admission.inflight}",
    )


# -- scenarios ---------------------------------------------------------------


def _scenario_worker_kill(report: ScenarioReport, tmp: str,
                          jobs: int) -> None:
    """A worker SIGKILLs itself once mid-task; retries must recover."""
    latch = os.path.join(tmp, "kill.latch")
    with _chaos_env(REPRO_CHAOS_TASK_FAULT="sigkill",
                    REPRO_CHAOS_TASK_LATCH=latch):
        with _daemon(tmp, jobs=max(2, jobs),
                     prover_options=ProverOptions(task_retries=2)) \
                as server:
            with ServeClient(server.address, timeout=600) as client:
                verdict = client.submit(car.SOURCE, stream=False)
            counters = verdict.get("counters", {})
            report.expect("fault_fired", os.path.exists(latch),
                          "the sigkill latch was never taken")
            report.expect(
                "worker_death_observed",
                counters.get("parallel.worker_died", 0) >= 1,
                f"parallel.worker_died={counters.get('parallel.worker_died', 0)}",
            )
            report.expect("verdict_all_proved",
                          verdict.get("all_proved") is True,
                          f"all_proved={verdict.get('all_proved')}")
            report.expect("verdict_terminal",
                          verdict.get("type") == "verdict",
                          f"type={verdict.get('type')}")
            _daemon_healthy(report, server)


def _scenario_hung_task(report: ScenarioReport, tmp: str,
                        jobs: int) -> None:
    """A worker hangs once; the watchdog condemns exactly that task."""
    latch = os.path.join(tmp, "hang.latch")
    with _chaos_env(REPRO_CHAOS_TASK_FAULT="hang",
                    REPRO_CHAOS_TASK_LATCH=latch,
                    REPRO_CHAOS_TASK_SECONDS="3600"):
        with _daemon(tmp, jobs=max(2, jobs),
                     prover_options=ProverOptions(task_timeout=1.0,
                                                  task_retries=0)) \
                as server:
            with ServeClient(server.address, timeout=600) as client:
                verdict = client.submit(car.SOURCE, stream=False)
            residue = verdict.get("residue", [])
            report.expect("fault_fired", os.path.exists(latch),
                          "the hang latch was never taken")
            report.expect("verdict_partial",
                          verdict.get("all_proved") is False,
                          f"all_proved={verdict.get('all_proved')}")
            report.expect("residue_count_exactly_one", len(residue) == 1,
                          f"residue has {len(residue)} entries")
            goal = residue[0].get("goal", "") if residue else ""
            report.expect("residue_names_timeout", "task timeout" in goal,
                          f"goal={goal!r}")
            _daemon_healthy(report, server)


def _scenario_disk_full_store(report: ScenarioReport, tmp: str,
                              jobs: int) -> None:
    """Every proof-store write fails ENOSPC; verification shrugs."""
    with _chaos_env(REPRO_CHAOS_STORE_FULL="1"):
        with _daemon(tmp, jobs=1) as server:
            with ServeClient(server.address, timeout=600) as client:
                verdict = client.submit(car.SOURCE, stream=False)
            counters = verdict.get("counters", {})
            report.expect("verdict_all_proved",
                          verdict.get("all_proved") is True,
                          f"all_proved={verdict.get('all_proved')}")
            report.expect(
                "write_failures_counted",
                counters.get("store.write_error", 0) >= 1,
                f"store.write_error={counters.get('store.write_error', 0)}",
            )
            _daemon_healthy(report, server)


def _scenario_client_disconnect(report: ScenarioReport, tmp: str,
                                jobs: int) -> None:
    """A client vanishes (RST) after submitting, before its verdict."""
    entered = threading.Event()
    gate = threading.Event()

    def hold(batch: List[object]) -> None:
        entered.set()
        gate.wait(timeout=60)

    with _daemon(tmp, jobs=1) as server:
        server.batch_hook = hold
        sock = _raw_client(server)
        send_message(sock, {"op": "submit", "source": car.SOURCE,
                            "stream": False})
        report.expect("prover_reached", entered.wait(timeout=30),
                      "the submission never reached the prover")
        # The prover is now blocked holding this client's batch; the
        # client dies so the eventual verdict send must fail.
        _abort_connection(sock)
        gate.set()
        server.batch_hook = None
        report.expect(
            "drop_counted",
            _wait_until(lambda: server._client_drops >= 1),
            f"client_drops={server._client_drops}",
        )
        report.record("client_drops_exactly_one",
                      server._client_drops == 1)
        _daemon_healthy(report, server)


def _scenario_malformed_frame(report: ScenarioReport, tmp: str,
                              jobs: int, seed: int) -> None:
    """Garbled wire input of every flavor draws typed errors, no harm."""
    rng = derive_rng(seed, "malformed", "bodies")
    with _daemon(tmp, jobs=1) as server:
        def expect_error(payload_bytes: bytes, check: str,
                         code: str) -> None:
            sock = _raw_client(server)
            try:
                sock.sendall(payload_bytes)
                frame = recv_message(sock)
                report.expect(
                    check,
                    bool(frame) and frame.get("type") == "error"
                    and frame.get("code") == code,
                    f"reply={frame}",
                )
            except Exception as error:  # noqa: BLE001
                report.expect(check, False, repr(error))
            finally:
                sock.close()

        # 1. An announced length over the frame ceiling, no body.
        expect_error(struct.pack(">I", MAX_FRAME_BYTES + 1),
                     "oversized_announcement_rejected", "malformed")
        # 2. A correctly-framed body that is not UTF-8/JSON (the leading
        #    0xFF byte guarantees undecodability whatever the rng draws).
        garbage = b"\xff" + bytes(rng.randrange(256) for _ in range(32))
        expect_error(struct.pack(">I", len(garbage)) + garbage,
                     "garbage_body_rejected", "malformed")
        # 3. Valid JSON that is not an object.
        array = b"[1,2,3]"
        expect_error(struct.pack(">I", len(array)) + array,
                     "non_object_rejected", "malformed")

        # 4. Unknown op — a typed error and the connection stays usable.
        sock = _raw_client(server)
        try:
            send_message(sock, {"op": "frobnicate"})
            frame = recv_message(sock)
            report.expect(
                "unknown_op_rejected",
                bool(frame) and frame.get("code") == "unknown-op",
                f"reply={frame}",
            )
            send_message(sock, {"op": "ping"})
            frame = recv_message(sock)
            report.expect(
                "connection_survives_unknown_op",
                bool(frame) and frame.get("type") == "ok",
                f"reply={frame}",
            )
        finally:
            sock.close()

        # 5. A submit with no source.
        sock = _raw_client(server)
        try:
            send_message(sock, {"op": "submit"})
            frame = recv_message(sock)
            report.expect(
                "sourceless_submit_rejected",
                bool(frame) and frame.get("code") == "bad-request",
                f"reply={frame}",
            )
        finally:
            sock.close()

        counters = dict(server.telemetry.counters)
        report.expect(
            "malformed_counted_exactly",
            counters.get("serve.malformed_frame", 0) == 3,
            f"serve.malformed_frame={counters.get('serve.malformed_frame', 0)}",
        )
        _daemon_healthy(report, server)


def _scenario_connection_flood(report: ScenarioReport, tmp: str,
                               jobs: int) -> None:
    """More submits than capacity: excess shed, backlog bounded, every
    admitted client answered once the prover catches up."""
    entered = threading.Event()
    gate = threading.Event()
    max_queued = 4

    def hold(batch: List[object]) -> None:
        entered.set()
        gate.wait(timeout=60)

    def accounted() -> int:
        stats = server.admission.stats()
        return (server.admission.inflight
                + stats["shed_capacity"] + stats["shed_session"])

    with _daemon(tmp, jobs=1, max_queued=max_queued,
                 session_inflight=2) as server:
        server.batch_hook = hold
        # The first client's batch reaches the prover and is held there;
        # its admission ticket stays taken for the whole flood.
        first = _raw_client(server)
        send_message(first, {"op": "submit", "source": car.SOURCE,
                             "stream": False})
        report.expect("prover_reached", entered.wait(timeout=30),
                      "the first submission never reached the prover")

        # Flood sequentially — each submit is admitted or shed before
        # the next is sent, so the arithmetic is exact: with the first
        # client holding one of ``max_queued`` slots, floods 1–3 are
        # admitted and floods 4–8 are shed.
        flood = [_raw_client(server) for _ in range(8)]
        try:
            sequenced = True
            for index, sock in enumerate(flood):
                send_message(sock, {"op": "submit", "source": car.SOURCE,
                                    "stream": False})
                expected = index + 2  # first client + floods 0..index
                sequenced &= _wait_until(
                    lambda: accounted() >= expected, timeout=10,
                )
            report.expect("flood_sequenced", sequenced,
                          "a flood submit was never accounted for")
            admitted_socks = flood[:max_queued - 1]
            shed_socks = flood[max_queued - 1:]
            admission = server.admission.stats()
            report.expect(
                "admitted_exactly_capacity",
                server.admission.inflight == max_queued,
                f"inflight={server.admission.inflight}",
            )
            report.expect(
                "shed_exactly_overflow",
                admission["shed_capacity"] + admission["shed_session"]
                == len(shed_socks),
                f"shed={admission}",
            )
            report.expect(
                "backlog_bounded",
                server._submissions.qsize() <= max_queued,
                f"qsize={server._submissions.qsize()}",
            )

            # Shed sockets already hold their terminal overloaded frame
            # (delivered while the prover was still blocked — sheds are
            # immediate, not queued behind the backlog).
            shed_frames = 0
            hinted = 0
            for sock in shed_socks:
                sock.settimeout(30)
                frame = recv_message(sock)
                if frame and frame.get("code") == "overloaded":
                    shed_frames += 1
                    hint = frame.get("retry_after_ms")
                    if isinstance(hint, int) and hint > 0:
                        hinted += 1
                else:
                    report.expect("unexpected_flood_frame", False,
                                  f"frame={frame}")
                sock.close()
            report.expect("shed_clients_got_overloaded_frame",
                          shed_frames == len(shed_socks),
                          f"got {shed_frames}")
            report.expect("shed_frames_carry_retry_hint",
                          hinted == shed_frames,
                          f"{hinted}/{shed_frames} carried hints")

            # Connections that vanish without ever sending a frame.
            for _ in range(3):
                _abort_connection(_raw_client(server))

            # Release the prover; every admitted client must now get a
            # terminal verdict.
            gate.set()
            server.batch_hook = None
            verdicts = 0
            for sock in [first] + admitted_socks:
                sock.settimeout(600)
                frame = recv_message(sock)
                if frame and frame.get("type") == "verdict":
                    verdicts += 1
                else:
                    report.expect("admitted_client_answered", False,
                                  f"frame={frame}")
                sock.close()
            report.expect("admitted_all_answered",
                          verdicts == 1 + len(admitted_socks),
                          f"{verdicts} verdicts for "
                          f"{1 + len(admitted_socks)} admitted clients")
        finally:
            gate.set()
            for sock in [first] + flood:
                with contextlib.suppress(OSError):
                    sock.close()
        _daemon_healthy(report, server)


# -- the sweep ---------------------------------------------------------------


def run_chaos_serve(scenarios: Optional[Sequence[str]] = None,
                    seed: int = 0, jobs: int = 2) -> ChaosServeReport:
    """Run the selected scenarios (all six by default), each against a
    freshly booted daemon, and return the sweep report."""
    names = list(scenarios) if scenarios else list(SCENARIO_NAMES)
    unknown = [name for name in names if name not in SCENARIO_NAMES]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {unknown}; "
            f"choose from {', '.join(SCENARIO_NAMES)}"
        )
    report = ChaosServeReport(seed=seed)
    for name in names:
        scenario_seed = derive_seed(seed, "chaos-serve", name)
        scenario = ScenarioReport(name=name, seed=scenario_seed)
        tmp = tempfile.mkdtemp(prefix=f"chaos-serve-{name}-")
        try:
            if name == "worker-kill":
                _scenario_worker_kill(scenario, tmp, jobs)
            elif name == "hung-task":
                _scenario_hung_task(scenario, tmp, jobs)
            elif name == "disk-full-store":
                _scenario_disk_full_store(scenario, tmp, jobs)
            elif name == "client-disconnect":
                _scenario_client_disconnect(scenario, tmp, jobs)
            elif name == "malformed-frame":
                _scenario_malformed_frame(scenario, tmp, jobs,
                                          scenario_seed)
            elif name == "connection-flood":
                _scenario_connection_flood(scenario, tmp, jobs)
        except Exception as error:  # noqa: BLE001 — a crash is a failure
            scenario.expect("scenario_completed", False,
                            f"{type(error).__name__}: {error}")
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        obs.incr(f"chaos_serve.{'ok' if scenario.ok else 'failed'}")
        obs.event("chaos_serve.scenario", name=name, ok=scenario.ok)
        report.scenarios.append(scenario)
    return report


def render_chaos_serve(report: ChaosServeReport) -> str:
    """The sweep as a fixed-width text table (deterministic)."""
    lines = [
        f"chaos-serve sweep  seed={report.seed}  "
        f"scenarios={len(report.scenarios)}",
        f"{'scenario':<20} {'checks':>6} {'failed':>6}  verdict",
        "-" * 56,
    ]
    for scenario in report.scenarios:
        verdict = "ok" if scenario.ok else "FAILED"
        lines.append(
            f"{scenario.name:<20} {len(scenario.checks):>6} "
            f"{len(scenario.failures):>6}  {verdict}"
        )
        for failure in scenario.failures:
            lines.append(f"    ! {failure}")
    lines.append("-" * 56)
    lines.append("sweep: " + ("all scenarios held"
                              if report.ok else "FAILURES"))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Standalone entry (also reachable as ``repro chaos-serve``)."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro-chaos-serve",
        description="fault-inject a live serve daemon",
    )
    parser.add_argument("--scenarios", default="all",
                        help="comma-separated scenario names (or 'all')")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--report-out", metavar="FILE", default=None)
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    names = (None if args.scenarios == "all"
             else [n.strip() for n in args.scenarios.split(",")
                   if n.strip()])
    try:
        report = run_chaos_serve(names, seed=args.seed, jobs=args.jobs)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    payload = report.to_dict()
    if args.report_out:
        with open(args.report_out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_chaos_serve(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
