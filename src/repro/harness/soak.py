"""The soak harness: a production-scale fleet under sustained chaos.

The chaos harness answers "do the verified properties survive one
faulted episode"; this harness answers the operational question behind a
real deployment: *does a fleet of thousands of verified kernel
instances, soaked for millions of messages under continuous fault
storms, restart storms and lifecycle churn, stay violation-free with
bounded resources?*  It drives a
:class:`~repro.runtime.scheduler.SoakScheduler` through a phased fault
schedule:

``warmup``
    clean traffic only — the fleet reaches steady state;
``fault-storm``
    every fault kind fires continuously at a configured rate;
``restart-storm``
    crash faults plus scheduler-level instance churn (kill + respawn);
``quarantine-churn``
    instances are quarantined and later released while faults continue;
``drain``
    faults stop, quarantined instances are released, traffic drains.

A :class:`ResourceWatchdog` asserts the soak's memory story after every
round: trace rings, dead-letter rings and the flight-recorder's
in-memory residency must all stay within their configured bounds, and
(optionally) the process's peak RSS under a ceiling.  On the first
property violation or watchdog trip the harness writes a forensic
snapshot — fleet state, per-instance state, violations — for the
post-mortem.

Reports are bit-for-bit reproducible for a fixed seed: the
:meth:`SoakReport.to_dict` payload contains only deterministic counters
(no wall times, no RSS values — those travel via the flight recorder).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..obs.timeseries import TimeSeries
from ..props.spec import TraceProperty
from ..runtime.faults import FAULT_KINDS
from ..runtime.monitor import SamplingPolicy
from ..runtime.scheduler import (
    DEFAULT_QUANTUM,
    DEFAULT_TRACE_CAPACITY,
    SoakScheduler,
)
from ..seeds import derive_rng

#: Rounds a quarantined instance sits out before the churn releases it.
QUARANTINE_ROUNDS = 3

#: Consecutive all-idle rounds after which the soak declares a stall.
STALL_ROUNDS = 5


# ---------------------------------------------------------------------------
# Phases
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SoakPhase:
    """One phase of the soak's fault schedule.

    ``weight`` is the fraction of the total message budget spent in the
    phase; ``fault_rate`` / ``churn_rate`` / ``quarantine_rate`` are
    per-instance per-round probabilities; ``fault_kinds`` restricts what
    the phase injects; ``release_all`` frees every quarantined instance
    on phase entry (the drain).
    """

    name: str
    weight: float
    fault_rate: float = 0.0
    fault_kinds: Tuple[str, ...] = FAULT_KINDS
    churn_rate: float = 0.0
    quarantine_rate: float = 0.0
    release_all: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise ValueError(
                f"phase weight must be in (0, 1], got {self.weight}"
            )
        for rate_name in ("fault_rate", "churn_rate", "quarantine_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{rate_name} must be in [0, 1], got {rate}"
                )
        for kind in self.fault_kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")


#: The default phased schedule (weights sum to 1).
DEFAULT_PHASES: Tuple[SoakPhase, ...] = (
    SoakPhase("warmup", weight=0.15),
    SoakPhase("fault-storm", weight=0.35, fault_rate=0.05),
    SoakPhase("restart-storm", weight=0.25, fault_rate=0.02,
              fault_kinds=("crash",), churn_rate=0.02),
    SoakPhase("quarantine-churn", weight=0.15, fault_rate=0.01,
              quarantine_rate=0.02),
    SoakPhase("drain", weight=0.10, release_all=True),
)


# ---------------------------------------------------------------------------
# Resource watchdog
# ---------------------------------------------------------------------------


class ResourceWatchdog:
    """Asserts the soak's bounded-resource story after every round.

    Checks, in order: ghost-trace residency (each ring retains at most
    ``2 * capacity`` actions, so the fleet-wide bound is
    ``instances * 2 * capacity``), dead-letter residency (two rings per
    instance, each strictly capped), flight-recorder in-memory residency
    (events must be flushed and compacted, not hoarded), and — when a
    ceiling is configured — the process's peak RSS.  The first breached
    bound trips the watchdog; :attr:`tripped` latches the reason.
    """

    #: in-memory event-log residency bound (post-compaction slack)
    MAX_EVENT_RESIDENCY = 100_000

    def __init__(self, scheduler: SoakScheduler,
                 max_rss_mb: Optional[int] = None) -> None:
        self.scheduler = scheduler
        self.max_rss_mb = max_rss_mb
        self.tripped: Optional[str] = None

    def max_retained_actions(self) -> int:
        """Fleet-wide ghost-trace retention bound."""
        return (len(self.scheduler.instances)
                * 2 * self.scheduler.trace_capacity)

    def max_dead_letters(self) -> int:
        """Fleet-wide dead-letter retention bound."""
        bound = 0
        for inst in self.scheduler.instances.values():
            bound += (inst.supervisor.dead_letters.capacity
                      + inst.world.dead_letters.capacity)
        return bound

    def rss_mb(self) -> Optional[float]:
        """Peak RSS of this process in MiB (``None`` when the platform
        offers no ``resource`` module)."""
        try:
            import resource
        except ImportError:  # pragma: no cover - non-POSIX
            return None
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        import sys

        if sys.platform == "darwin":  # pragma: no cover - mac only
            return peak / (1024 * 1024)
        return peak / 1024

    def check(self) -> Optional[str]:
        """Run every bound; latches and returns the trip reason (or
        ``None``).  Once tripped, the watchdog stays tripped."""
        if self.tripped is not None:
            return self.tripped
        reason = self._breach()
        if reason is not None:
            self.tripped = reason
            obs.incr("soak.watchdog.trip")
            obs.event("soak.watchdog.trip", reason=reason)
        return self.tripped

    def _breach(self) -> Optional[str]:
        retained = self.scheduler.retained_actions()
        bound = self.max_retained_actions()
        if retained > bound:
            return (f"trace residency {retained} exceeds bound {bound} "
                    f"(ring eviction is broken)")
        letters = self.scheduler.dead_letter_accounting()["retained"]
        bound = self.max_dead_letters()
        if letters > bound:
            return (f"dead-letter residency {letters} exceeds bound "
                    f"{bound} (ring eviction is broken)")
        sink = obs.active()
        if sink is not None and sink.events is not None:
            resident = len(sink.events.events)
            if resident > self.MAX_EVENT_RESIDENCY:
                return (f"flight-recorder residency {resident} exceeds "
                        f"{self.MAX_EVENT_RESIDENCY} (flush/compact "
                        f"is not keeping up)")
        if self.max_rss_mb is not None:
            rss = self.rss_mb()
            if rss is not None and rss > self.max_rss_mb:
                return (f"peak RSS {rss:.0f} MiB exceeds ceiling "
                        f"{self.max_rss_mb} MiB")
        return None


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class PhaseStats:
    """Deterministic counters for one completed soak phase."""

    name: str
    rounds: int = 0
    exchanges: int = 0
    stimuli: int = 0
    faults: int = 0
    churned: int = 0
    quarantined: int = 0
    released: int = 0
    respawned: int = 0
    #: per-round rates derived at phase end (deterministic: integer
    #: counters over the round count — the soak's "time" axis is the
    #: round number, never the wall clock)
    rates: Dict[str, float] = field(default_factory=dict)

    def finish(self) -> None:
        """Derive the per-round rates once the phase's counters are
        final."""
        if not self.rounds:
            return
        self.rates = {
            "exchanges_per_round": round(
                self.exchanges / self.rounds, 6),
            "stimuli_per_round": round(self.stimuli / self.rounds, 6),
            "faults_per_round": round(self.faults / self.rounds, 6),
            "churn_per_round": round(self.churned / self.rounds, 6),
        }

    def to_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "name": self.name,
            "rounds": self.rounds,
            "exchanges": self.exchanges,
            "stimuli": self.stimuli,
            "faults": self.faults,
            "churned": self.churned,
            "quarantined": self.quarantined,
            "released": self.released,
            "respawned": self.respawned,
            "rates": dict(self.rates),
        }


@dataclass
class SoakReport:
    """The outcome of one soak run — deterministic for a fixed seed."""

    kernel: str
    seed: int
    instances: int
    messages_requested: int
    monitored: int = 0
    unproved: int = 0
    ni_excluded: int = 0
    sampled_instances: int = 0
    phases: List[PhaseStats] = field(default_factory=list)
    fleet: Dict[str, object] = field(default_factory=dict)
    #: fleet-level rolling time series over the run, clocked by round
    #: number (so the payload stays bit-for-bit reproducible)
    timeseries: Dict[str, object] = field(default_factory=dict)
    violations: Tuple[str, ...] = ()
    watchdog_tripped: Optional[str] = None
    stalled: bool = False

    @property
    def exchanges(self) -> int:
        """Messages (exchanges) actually processed across all phases."""
        return sum(p.exchanges for p in self.phases)

    @property
    def ok(self) -> bool:
        """Zero violations, watchdog never tripped, budget completed."""
        return (not self.violations and self.watchdog_tripped is None
                and not self.stalled)

    def to_dict(self) -> dict:
        """The canonical, bit-for-bit reproducible report payload (no
        wall times, no RSS values)."""
        return {
            "kernel": self.kernel,
            "seed": self.seed,
            "instances": self.instances,
            "messages_requested": self.messages_requested,
            "messages_processed": self.exchanges,
            "monitored_properties": self.monitored,
            "unproved_properties": self.unproved,
            "ni_excluded": self.ni_excluded,
            "sampled_instances": self.sampled_instances,
            "phases": [p.to_dict() for p in self.phases],
            "fleet": self.fleet,
            "timeseries": self.timeseries,
            "violations": list(self.violations),
            "watchdog_tripped": self.watchdog_tripped,
            "stalled": self.stalled,
            "ok": self.ok,
        }


def exit_code(report: SoakReport) -> int:
    """The CLI contract: 0 clean, 1 property violation (or stall),
    3 watchdog trip.  Violations outrank the watchdog — a soundness
    failure is always the headline."""
    if report.violations or report.stalled:
        return 1
    if report.watchdog_tripped is not None:
        return 3
    return 0


# ---------------------------------------------------------------------------
# Driving
# ---------------------------------------------------------------------------


def _verify_properties(spec) -> Tuple[List[TraceProperty], int, int]:
    """Prove the spec's properties; returns (proved trace properties,
    unproved count, NI-excluded count)."""
    from ..prover import Verifier

    proved: List[TraceProperty] = []
    unproved = ni_excluded = 0
    for result in Verifier(spec).verify_all().results:
        if not isinstance(result.property, TraceProperty):
            ni_excluded += 1
        elif result.proved:
            proved.append(result.property)
        else:
            unproved += 1
    return proved, unproved, ni_excluded


def _write_snapshot(path: str, reason: str, phase: str, round_no: int,
                    scheduler: SoakScheduler) -> None:
    """Dump the forensic snapshot: fleet summary, every instance that
    found a violation (plus a bounded sample of the rest), and the
    violations themselves."""
    violations = scheduler.violations()
    flagged = sorted({ident for ident, _, _ in violations})
    sample = [i for i in sorted(scheduler.instances) if i not in flagged]
    snapshot = {
        "reason": reason,
        "phase": phase,
        "round": round_no,
        "fleet": scheduler.to_dict(),
        "violations": [
            {"instance": ident, "incarnation": incarnation,
             "violation": str(violation),
             "property": violation.property_name,
             "primitive": violation.primitive,
             "position": violation.position}
            for ident, incarnation, violation in violations
        ],
        "flagged_instances": [
            scheduler.instances[i].to_dict() for i in flagged
        ],
        "sampled_instances": [
            scheduler.instances[i].to_dict() for i in sample[:16]
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
    obs.event("soak.snapshot", path=path, reason=reason)


def _phase_budgets(messages: int,
                   phases: Sequence[SoakPhase]) -> List[int]:
    """Split the message budget across phases by weight (the last phase
    absorbs rounding so the budgets sum exactly)."""
    budgets = [int(messages * phase.weight) for phase in phases[:-1]]
    budgets.append(messages - sum(budgets))
    return budgets


def run_soak(kernel: str = "car", instances: int = 100,
             messages: int = 10_000, seed: int = 0,
             sample_rate: float = 0.05, escalation_window: int = 256,
             trace_capacity: int = DEFAULT_TRACE_CAPACITY,
             quantum: int = DEFAULT_QUANTUM,
             max_rss_mb: Optional[int] = None,
             phases: Sequence[SoakPhase] = DEFAULT_PHASES,
             snapshot_out: Optional[str] = None,
             specs: Optional[Tuple[object, Callable[[object], None],
                                   Sequence[TraceProperty]]] = None,
             ) -> SoakReport:
    """Soak ``instances`` multiplexed kernel instances through
    ``messages`` exchanges under the phased fault schedule.

    Properties are proved first and only prover-verified trace
    properties are monitored (the production configuration).  ``specs``
    is the test hook: a ``(spec, register, properties)`` triple bypasses
    loading and verification so differential tests can monitor
    deliberately unproved properties on buggy kernels.

    Deterministic for fixed arguments: every stream — per-instance
    worlds, stimulus traffic, monitor sampling, per-phase churn — is an
    independent derived stream of ``seed``.
    """
    total_weight = sum(phase.weight for phase in phases)
    if abs(total_weight - 1.0) > 1e-9:
        raise ValueError(
            f"phase weights must sum to 1, got {total_weight}"
        )
    if specs is not None:
        spec, register, properties = specs
        proved = list(properties)
        unproved = ni_excluded = 0
    else:
        from ..systems import BENCHMARKS

        module = BENCHMARKS[kernel]
        spec = module.load()
        register = module.register_components
        proved, unproved, ni_excluded = _verify_properties(spec)
    policy = SamplingPolicy(rate=sample_rate,
                            escalation_window=escalation_window,
                            seed=seed)
    scheduler = SoakScheduler(
        spec, register, proved, seed=seed, policy=policy,
        trace_capacity=trace_capacity, quantum=quantum,
    )
    report = SoakReport(kernel=spec.name, seed=seed, instances=instances,
                        messages_requested=messages, monitored=len(proved),
                        unproved=unproved, ni_excluded=ni_excluded)
    watchdog = ResourceWatchdog(scheduler, max_rss_mb=max_rss_mb)
    snapshot_written = False

    def forensics(reason: str, phase_name: str, round_no: int) -> None:
        nonlocal snapshot_written
        if snapshot_written:
            return
        snapshot_written = True
        obs.flush_events()
        if snapshot_out is not None:
            _write_snapshot(snapshot_out, reason, phase_name, round_no,
                            scheduler)

    # Fleet-level rolling time series, clocked by *round number* so the
    # report stays deterministic: per-round windows over the cumulative
    # soak counters, queryable exactly like the daemon's wall-clock one.
    series = TimeSeries(capacity=512)

    def record_round(t: float) -> None:
        series.record(t, {
            "counters": {
                "soak.exchanges": sum(p.exchanges for p in report.phases),
                "soak.stimuli": sum(p.stimuli for p in report.phases),
                "soak.faults": sum(p.faults for p in report.phases),
                "soak.churned": sum(p.churned for p in report.phases),
                "soak.respawned": sum(p.respawned
                                      for p in report.phases),
            },
            "gauges": {
                "soak.runnable": float(len(scheduler.runnable())),
                "soak.violations": float(len(scheduler.violations())),
            },
            "histograms": {},
        })

    with obs.span("soak.run", kernel=spec.name):
        scheduler.spawn_fleet(instances)
        report.sampled_instances = sum(
            1 for ident in scheduler.instances if policy.samples(ident)
        )
        budgets = _phase_budgets(messages, phases)
        round_no = 0
        known_violations = 0
        record_round(0.0)  # anchor: round 1 already yields a window
        for phase, budget in zip(phases, budgets):
            stats = PhaseStats(name=phase.name)
            report.phases.append(stats)
            rng = derive_rng(seed, "soak-phase", phase.name)
            quarantined_at: Dict[int, int] = {}
            if phase.release_all:
                for ident in sorted(scheduler.instances):
                    if scheduler.instances[ident].status == "quarantined":
                        scheduler.release(ident)
                        stats.released += 1
            obs.event("soak.phase.start", phase=phase.name, budget=budget)
            idle_rounds = 0
            while stats.exchanges < budget:
                round_no += 1
                stats.rounds += 1
                # -- lifecycle churn ------------------------------------
                for ident in scheduler.runnable():
                    if (phase.churn_rate
                            and rng.random() < phase.churn_rate):
                        scheduler.kill(ident)
                        scheduler.restart(ident)
                        stats.churned += 1
                    elif (phase.quarantine_rate
                            and rng.random() < phase.quarantine_rate):
                        scheduler.quarantine(ident)
                        quarantined_at[ident] = round_no
                for ident, since in sorted(quarantined_at.items()):
                    if round_no - since >= QUARANTINE_ROUNDS:
                        scheduler.release(ident)
                        del quarantined_at[ident]
                        stats.released += 1
                # -- fault storm ----------------------------------------
                if phase.fault_rate:
                    for ident in scheduler.runnable():
                        if rng.random() < phase.fault_rate:
                            kind = phase.fault_kinds[
                                rng.randrange(len(phase.fault_kinds))
                            ]
                            record = scheduler.inject_fault(
                                ident, kind,
                                target=rng.randrange(1 << 16),
                            )
                            if record is not None:
                                stats.faults += 1
                # -- stimulate + pump -----------------------------------
                for ident in scheduler.runnable():
                    if scheduler.stimulate(ident):
                        stats.stimuli += 1
                    else:
                        # Every component is dead and quarantined: a
                        # production fleet replaces the instance.
                        scheduler.restart(ident)
                        stats.respawned += 1
                        if scheduler.stimulate(ident):
                            stats.stimuli += 1
                done = scheduler.pump(budget - stats.exchanges)
                stats.exchanges += done
                idle_rounds = idle_rounds + 1 if done == 0 else 0
                # -- bookkeeping, bounds, forensics ---------------------
                obs.flush_events()
                sink = obs.active()
                if sink is not None and sink.events is not None:
                    sink.events.compact()
                tripped = watchdog.check()
                if (tripped is not None
                        and report.watchdog_tripped is None):
                    report.watchdog_tripped = tripped
                    forensics(f"watchdog: {tripped}", phase.name,
                              round_no)
                fleet_violations = scheduler.violations()
                if (len(fleet_violations) > known_violations
                        and known_violations == 0):
                    forensics("violation", phase.name, round_no)
                known_violations = len(fleet_violations)
                record_round(float(round_no))
                if idle_rounds >= STALL_ROUNDS:
                    report.stalled = True
                    forensics("stall", phase.name, round_no)
                    break
            stats.quarantined = len(quarantined_at)
            stats.finish()
            obs.event("soak.phase.end", phase=phase.name,
                      rounds=stats.rounds, exchanges=stats.exchanges,
                      faults=stats.faults)
            if report.stalled:
                break
        report.fleet = scheduler.to_dict()
        report.timeseries = series.to_dict()
        report.violations = tuple(
            f"instance {ident} (incarnation {incarnation}): {violation}"
            for ident, incarnation, violation in scheduler.violations()
        )
        obs.incr("soak.exchanges", report.exchanges)
        obs.incr("soak.violations", len(report.violations))
        obs.flush_events()
    return report


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_soak(report: SoakReport) -> str:
    """The human-readable soak report (deterministic: no wall times)."""
    lines: List[str] = []
    lines.append(
        f"soak: {report.kernel}  instances={report.instances}  "
        f"seed={report.seed}  messages={report.exchanges}"
        f"/{report.messages_requested}"
    )
    lines.append(
        f"monitoring: {report.monitored} verified trace properties, "
        f"{report.sampled_instances} instances base-sampled, "
        f"{report.fleet.get('escalations', 0)} escalations"
    )
    header = (
        f"{'phase':<18} {'rounds':>6} {'exch':>8} {'stim':>8} "
        f"{'fault':>6} {'churn':>6} {'resp':>5} {'rel':>4} "
        f"{'exch/rd':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for stats in report.phases:
        per_round = stats.rates.get("exchanges_per_round", 0.0)
        lines.append(
            f"{stats.name:<18} {stats.rounds:>6} {stats.exchanges:>8} "
            f"{stats.stimuli:>8} {stats.faults:>6} {stats.churned:>6} "
            f"{stats.respawned:>5} {stats.released:>4} "
            f"{per_round:>8.1f}"
        )
    fleet = report.fleet
    if fleet:
        dead = fleet.get("dead_letters", {})
        lines.append(
            f"fleet: crashes-contained via {fleet.get('restarts', 0)} "
            f"respawns, {fleet.get('retained_actions', 0)} trace actions "
            f"retained ({fleet.get('dropped_actions', 0)} ring-evicted), "
            f"dead letters total={dead.get('total', 0)} "
            f"retained={dead.get('retained', 0)} "
            f"dropped={dead.get('dropped', 0)}"
        )
    if report.watchdog_tripped is not None:
        lines.append(f"WATCHDOG TRIPPED: {report.watchdog_tripped}")
    else:
        lines.append("watchdog: all resource bounds held")
    if report.stalled:
        lines.append("STALLED: the fleet went idle before the budget "
                     "was spent")
    if report.violations:
        lines.append(f"VIOLATIONS: {len(report.violations)}")
        for violation in report.violations:
            lines.append(f"  {violation}")
    else:
        lines.append(
            f"violations of verified properties: none across "
            f"{report.exchanges} messages"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """``python -m repro.harness.soak``"""
    report = run_soak()
    print(render_soak(report))
    return exit_code(report)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
