"""Figure 6 regeneration: the 41 benchmark properties and their fully
automatic verification times.

The harness runs the prover on every property of every benchmark and
prints the same rows as the paper's Figure 6, with the paper's wall-clock
seconds (3.4 GHz Core i7, Coq proof search + proof-term checking) next to
ours (CPython, symbolic search + derivation checking).  Absolute numbers
are not comparable across such different proof stacks; the reproduction
targets are the *shape* claims of section 6.2/6.4:

* all 41 properties verify fully automatically,
* non-interference properties are the slowest rows of their benchmark,
* the overwhelming majority of properties verify quickly (paper: >80%
  under two minutes; here the same fraction sits under the analogous
  per-benchmark threshold).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..props.spec import NonInterference
from ..prover import ProverOptions, Verifier
from ..systems import BENCHMARKS

#: The paper's Figure 6, transcribed: (benchmark, our property name,
#: paper's policy description, paper's verification seconds).
PAPER_FIGURE6 = (
    ("car", "NoInterfereEngine",
     "Components do not interfere with the engine", 13),
    ("car", "AirbagsDeployOnCrash",
     "Airbags do deploy when there has been a crash", 6),
    ("car", "AirbagsImmediatelyAfterCrash",
     "Airbags are deployed immediately after crash", 4),
    ("car", "CruiseOffImmediatelyAfterBrake",
     "Cruise control turns off immediately after braking", 5),
    ("car", "DoorsUnlockOnCrash",
     "Doors unlock when there is a crash", 6),
    ("car", "DoorsUnlockAfterAirbags",
     "Doors unlock immediately after airbags deployed", 6),
    ("car", "NoLockAfterCrash",
     "Doors can not lock after a crash", 21),
    ("car", "AirbagsOnlyOnCrash",
     "Airbags only deploy if there has been a crash", 6),
    ("browser", "UniqueTabIds",
     "Tab processes have unique IDs", 70),
    ("browser", "UniqueCookieProcs",
     "Cookie processes are unique per domain", 75),
    ("browser", "CookiesStayInDomain",
     "Cookies stay in their domain (tab, cookie process)", 37),
    ("browser", "TabsConnectedToCookieProc",
     "Tabs are correctly connected to their cookie process", 38),
    ("browser", "DomainsNoInterfere",
     "Different domains do not interfere", 229),
    ("browser", "SocketPolicy",
     "Tabs can only open sockets to allowed domains", 94),
    ("browser2", "UniqueTabIds",
     "Tab processes have unique IDs", 80),
    ("browser2", "UniqueCookieProcs",
     "Cookie processes are unique per domain", 130),
    ("browser2", "CookiesStayInDomainTab",
     "Cookies stay in their domain (tab)", 64),
    ("browser2", "CookiesStayInDomainProc",
     "Cookies stay in their domain (cookie process)", 70),
    ("browser2", "TabsConnectedToCookieProc",
     "Tabs are correctly connected to their cookie process", 88),
    ("browser2", "DomainsNoInterfere",
     "Different domains do not interfere", 338),
    ("browser2", "SocketPolicy",
     "Tabs can only open sockets to allowed domains", 106),
    ("browser3", "UniqueTabIds",
     "Tab processes have unique IDs", 295),
    ("browser3", "UniqueCookieProcs",
     "Cookie processes are unique per domain", 193),
    ("browser3", "CookiesStayInDomainTab",
     "Cookies stay in their domain (tab)", 83),
    ("browser3", "CookiesStayInDomainProc",
     "Cookies stay in their domain (cookie process)", 91),
    ("browser3", "TabsRegisteredWithCookieProc",
     "Tabs are correctly connected to their cookie process", 151),
    ("browser3", "DomainsNoInterfere",
     "Different domains do not interfere", 532),
    ("browser3", "SocketPolicy",
     "Tabs can only open sockets to allowed domains", 78),
    ("ssh", "AttemptEnablesNext",
     "Each login attempt enables the next one", 54),
    ("ssh", "FirstAttemptOnce",
     "The first attempt to login disables itself", 58),
    ("ssh", "SecondAttemptOnce",
     "The second attempt to login disables itself", 297),
    ("ssh", "ThirdAttemptFinal",
     "The third attempt to login disables all attempts", 53),
    ("ssh", "AuthBeforeTerm",
     "Succesful login enables pseudo-terminal creation", 55),
    ("ssh2", "AuthBeforeTerm",
     "Succesful login enables pseudo-terminal creation", 113),
    ("ssh2", "AttemptsApprovedByCounter",
     "Login attempts approved by counter component", 37),
    ("webserver", "ClientOnlyAfterLogin",
     "A client is only spawned on successful login", 26),
    ("webserver", "ClientsNeverDuplicated",
     "Clients are never duplicated", 70),
    ("webserver", "FilesOnlyAfterLogin",
     "Files can only be requested after login", 87),
    ("webserver", "FilesOnlyAfterAuthorization",
     "Files are only requested after authorization", 23),
    ("webserver", "FileOnlyWhereDiskIndicates",
     "Kernel only sends a file where the disk indicates", 34),
    ("webserver", "AuthForwardedToDisk",
     "Authorized requests are forwarded to disk", 22),
)


@dataclass
class Figure6Row:
    benchmark: str
    property_name: str
    description: str
    paper_seconds: float
    our_seconds: float
    proved: bool
    is_noninterference: bool


@dataclass
class BenchmarkProfile:
    """Per-benchmark telemetry: counters plus per-stage seconds."""

    benchmark: str
    counters: Dict[str, int] = field(default_factory=dict)
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def skip_rate(self) -> float:
        """Fraction of trace-tactic exchanges discharged syntactically."""
        skipped = self.counters.get("tactic.exchange.skipped", 0)
        expanded = self.counters.get("tactic.exchange.expanded", 0)
        total = skipped + expanded
        return skipped / total if total else 0.0


def run_figure6_profiled(
    options: Optional[ProverOptions] = None,
    jobs: Optional[int] = None,
) -> Tuple[List[Figure6Row], List[BenchmarkProfile]]:
    """Verify every Figure 6 property under a telemetry sink per
    benchmark; returns the paper rows plus per-benchmark per-stage
    breakdowns."""
    rows: List[Figure6Row] = []
    profiles: List[BenchmarkProfile] = []
    reports: Dict[str, object] = {}
    for name, module in BENCHMARKS.items():
        with obs.use(obs.Telemetry()) as telemetry:
            reports[name] = Verifier(
                module.load(), options
            ).verify_all(jobs=jobs)
        profiles.append(BenchmarkProfile(
            name, dict(telemetry.counters), telemetry.stage_seconds()
        ))
    for benchmark, prop_name, description, paper_seconds in PAPER_FIGURE6:
        result = reports[benchmark].result_named(prop_name)
        rows.append(Figure6Row(
            benchmark=benchmark,
            property_name=prop_name,
            description=description,
            paper_seconds=paper_seconds,
            our_seconds=result.seconds,
            proved=result.proved,
            is_noninterference=isinstance(result.property, NonInterference),
        ))
    return rows, profiles


def run_figure6(options: Optional[ProverOptions] = None) -> List[Figure6Row]:
    """Verify every Figure 6 property; returns one row per paper row."""
    rows, _ = run_figure6_profiled(options)
    return rows


def render_profiles(profiles: List[BenchmarkProfile]) -> str:
    """Render the per-benchmark pipeline breakdown: plan/search/check
    seconds, solver calls, seval paths, and the syntactic-skip rate."""
    out = [
        "Figure 6 — per-benchmark pipeline breakdown",
        f"{'benchmark':10s} {'plan(s)':>9s} {'search(s)':>10s} "
        f"{'check(s)':>9s} {'implies':>9s} {'paths':>7s} {'skip%':>6s}",
    ]
    for profile in profiles:
        stages = profile.stage_seconds
        out.append(
            f"{profile.benchmark:10s} "
            f"{stages.get('plan', 0.0):9.4f} "
            f"{stages.get('search', 0.0):10.4f} "
            f"{stages.get('check', 0.0):9.4f} "
            f"{profile.counters.get('solver.implies', 0):9d} "
            f"{profile.counters.get('seval.paths', 0):7d} "
            f"{profile.skip_rate() * 100:5.1f}%"
        )
    return "\n".join(out)


def render_figure6(rows: List[Figure6Row]) -> str:
    """Render Figure 6 side by side with the paper's numbers."""
    out = [
        "Figure 6 — benchmark properties, all proved fully automatically",
        f"{'':10s} {'policy description':55s} "
        f"{'paper T(s)':>10s} {'ours T(s)':>10s}  ok",
    ]
    for row in rows:
        out.append(
            f"{row.benchmark:10s} {row.description:55s} "
            f"{row.paper_seconds:10.0f} {row.our_seconds:10.3f}  "
            f"{'✓' if row.proved else '✗'}"
        )
    proved = sum(1 for r in rows if r.proved)
    out.append(f"{proved}/{len(rows)} properties proved automatically "
               f"(paper: 41/41)")
    out.extend(shape_checks(rows))
    return "\n".join(out)


def shape_checks(rows: List[Figure6Row]) -> List[str]:
    """The qualitative claims the reproduction must preserve."""
    checks: List[str] = []
    all_proved = all(r.proved for r in rows)
    checks.append(f"[shape] all 41 properties automatic: "
                  f"{'PASS' if all_proved else 'FAIL'}")

    # NI rows are the slowest rows of their benchmark in the paper for the
    # browser variants (and dominate overall); check ours keep that shape.
    ni_shape = True
    for benchmark in ("browser", "browser2", "browser3"):
        bench_rows = [r for r in rows if r.benchmark == benchmark]
        slowest = max(bench_rows, key=lambda r: r.our_seconds)
        if not slowest.is_noninterference:
            ni_shape = False
    checks.append(f"[shape] non-interference is the slowest browser row: "
                  f"{'PASS' if ni_shape else 'FAIL'}")

    # Paper: >80% of properties verify in under two minutes (of a 532s
    # max).  Analogously: >80% of our rows fall under 2/8.9 of our max
    # (with a 5ms floor so sub-millisecond timer noise cannot flip the
    # verdict).
    our_max = max(r.our_seconds for r in rows)
    threshold = max(our_max * (120.0 / 532.0), 0.005)
    quick = sum(1 for r in rows if r.our_seconds <= threshold)
    checks.append(
        f"[shape] {quick}/{len(rows)} rows within the paper's "
        f"'80% under two minutes' band (threshold {threshold * 1000:.1f}ms):"
        f" {'PASS' if quick / len(rows) >= 0.8 else 'FAIL'}"
    )
    return checks


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_figure6(run_figure6()))


if __name__ == "__main__":  # pragma: no cover
    main()
