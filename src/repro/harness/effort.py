"""Section 6.5 regeneration: development effort.

The paper breaks the once-and-for-all REFLEX implementation into roles:

===============================================  ==========
REFLEX syntax and semantics                       2,827 loc
manual (once-and-for-all) Coq proofs              2,786 loc
non-interference infrastructure                     254 loc
Ltac proof-automation tactics                     1,768 loc
OCaml primitives                                    193 loc
===============================================  ==========

The reproduction has the same architecture, so the harness counts our
modules under the corresponding roles.  The mapping:

* *syntax and semantics* → ``repro.lang`` + ``repro.frontend`` +
  ``repro.runtime`` (minus the world, counted as primitives),
* *once-and-for-all proofs* → ``repro.symbolic`` (the machinery whose
  correctness our trust rests on) + the trusted checker,
* *non-interference infrastructure* → ``repro.prover.ni``,
* *tactics* → the untrusted search (obligations, invariants, tactics,
  engine, derivations),
* *primitives* → ``repro.runtime.world`` + ``repro.runtime.components``.

The reproduced shape: the per-role proportions — semantics and the
trusted core dominate, tactics come next, NI infrastructure is small —
and the punchline that all of it is *amortized*: none of the 41 benchmark
properties needed a single line of manual proof.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Dict, List

PAPER_EFFORT = {
    "syntax and semantics": 2827,
    "once-and-for-all proofs": 2786,
    "non-interference infrastructure": 254,
    "proof-automation tactics": 1768,
    "primitives": 193,
}


def _module_loc(module) -> int:
    source = inspect.getsource(module)
    return sum(
        1 for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )


def _role_modules() -> Dict[str, List]:
    from .. import frontend, lang, props, prover, runtime, symbolic
    from ..frontend import lexer, parser, pretty
    from ..lang import ast, builder, errors, types, validate, values
    from ..props import patterns, spec, tracepreds
    from ..prover import (
        checker as prover_checker,
        derivation,
        engine,
        invariants,
        ni,
        obligations,
        trace_tactics,
    )
    from ..runtime import actions, components, interpreter, trace, world
    from ..symbolic import (
        behabs,
        expr,
        seval,
        simplify,
        solver,
        templates,
        unify,
    )

    return {
        "syntax and semantics": [
            errors, types, values, ast, validate, builder,
            lexer, parser, pretty,
            actions, trace, interpreter,
            patterns, tracepreds, spec,
        ],
        "once-and-for-all proofs": [
            expr, simplify, solver, templates, unify, seval, behabs,
            prover_checker,
        ],
        "non-interference infrastructure": [ni],
        "proof-automation tactics": [
            obligations, derivation, invariants, trace_tactics, engine,
        ],
        "primitives": [world, components],
    }


@dataclass
class EffortRow:
    role: str
    our_loc: int
    paper_loc: int


def run_effort() -> List[EffortRow]:
    """Count our modules under the paper's section-6.5 roles."""
    rows: List[EffortRow] = []
    for role, modules in _role_modules().items():
        rows.append(EffortRow(
            role=role,
            our_loc=sum(_module_loc(m) for m in modules),
            paper_loc=PAPER_EFFORT[role],
        ))
    return rows


def render_effort(rows: List[EffortRow]) -> str:
    """Render the effort table next to the paper's numbers."""
    out = [
        "Section 6.5 — development effort (lines of code by role)",
        f"{'role':36s} {'ours':>8s} {'paper':>8s}",
    ]
    for row in rows:
        out.append(f"{row.role:36s} {row.our_loc:8d} {row.paper_loc:8d}")
    ours_total = sum(r.our_loc for r in rows)
    paper_total = sum(r.paper_loc for r in rows)
    out.append(f"{'total':36s} {ours_total:8d} {paper_total:8d}")
    out.append(
        "[shape] one amortized implementation; zero per-program manual "
        "proof lines for all 41 benchmark properties (paper: previous "
        "versions of these benchmarks were >80% proof code)"
    )
    return "\n".join(out)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_effort(run_effort()))


if __name__ == "__main__":  # pragma: no cover
    main()
