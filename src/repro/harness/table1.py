"""Table 1 regeneration: benchmark sizes.

The paper's Table 1 counts lines of code for each benchmark's verified
kernel + properties (REFLEX) and its surrounding sandboxed components
(C/C++/Python built on WebKit, OpenSSH, ...).  Here the kernel and
property counts are lines of our concrete DSL sources, and the component
counts are lines of the simulated Python components.

Absolute component sizes cannot match (we simulate WebKit with a few
hundred lines, per the substitution rule); the *shape* claims reproduced:

* kernels + properties are tiny (tens of lines) — the paper's headline
  "81 lines of REFLEX vs Quark's 859 lines of Coq",
* components dwarf the kernels by orders of magnitude in the paper; here
  the harness reports the paper's component numbers next to our simulated
  stand-ins so the asymmetry is explicit.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Dict, List

from ..systems import BENCHMARKS

#: Paper Table 1 (kernel+properties LoC, component LoC).  The paper groups
#: the browser variants under one "Browser Kernel" row and both ssh
#: variants under one "SSH Kernel" row.
PAPER_TABLE1 = {
    "ssh": {"kernel": 64, "properties": 22, "components": 89_567,
            "component_langs": "C, Python"},
    "browser": {"kernel": 81, "properties": 37, "components": 970_240,
                "component_langs": "C++, Python"},
    "webserver": {"kernel": 56, "properties": 29, "components": 386,
                  "component_langs": "Python"},
}

#: Which of our benchmarks corresponds to which paper row.
PAPER_ROW_OF = {
    "ssh": "ssh",
    "ssh2": "ssh",
    "browser": "browser",
    "browser2": "browser",
    "browser3": "browser",
    "webserver": "webserver",
    "car": None,  # the paper sizes the car kernel in prose (60 lines)
}


@dataclass
class SizeRow:
    benchmark: str
    kernel_loc: int
    properties_loc: int
    component_loc: int
    paper_kernel: int = 0
    paper_properties: int = 0
    paper_components: int = 0


def _count_nonblank(text: str) -> int:
    return sum(
        1 for line in text.splitlines()
        if line.strip() and not line.strip().startswith("//")
        and not line.strip().startswith("#")
    )


def split_source(source: str) -> Dict[str, str]:
    """Split a benchmark's concrete source into kernel text and property
    text (the ``properties { ... }`` section)."""
    marker = "properties {"
    index = source.find(marker)
    if index < 0:
        return {"kernel": source, "properties": ""}
    head = source[:index]
    tail = source[index:]
    closing = tail.rfind("}")  # the program's final brace
    properties = tail[:closing]
    return {"kernel": head, "properties": properties}


def component_loc(module) -> int:
    """Lines of the simulated components: the module's Python source minus
    its embedded DSL text and module docstring."""
    text = inspect.getsource(module)
    total = _count_nonblank(text)
    dsl = _count_nonblank(module.SOURCE)
    doc = _count_nonblank(module.__doc__ or "")
    return max(total - dsl - doc, 0)


def run_table1() -> List[SizeRow]:
    """Measure every benchmark's kernel/property/component sizes."""
    rows: List[SizeRow] = []
    for name, module in BENCHMARKS.items():
        parts = split_source(module.SOURCE)
        paper_key = PAPER_ROW_OF.get(name)
        paper = PAPER_TABLE1.get(paper_key, {}) if paper_key else {}
        rows.append(SizeRow(
            benchmark=name,
            kernel_loc=_count_nonblank(parts["kernel"]),
            properties_loc=_count_nonblank(parts["properties"]),
            component_loc=component_loc(module),
            paper_kernel=paper.get("kernel", 0),
            paper_properties=paper.get("properties", 0),
            paper_components=paper.get("components", 0),
        ))
    return rows


def render_table1(rows: List[SizeRow]) -> str:
    """Render Table 1 with the paper's numbers alongside."""
    out = [
        "Table 1 — benchmark sizes (lines of code)",
        f"{'benchmark':10s} {'kernel':>7s} {'props':>6s} {'comps':>7s}   "
        f"{'paper kernel/props/comps':>28s}",
    ]
    for row in rows:
        paper = (
            f"{row.paper_kernel}/{row.paper_properties}/"
            f"{row.paper_components:,}"
            if row.paper_kernel else "(prose: ~60-line kernel)"
        )
        out.append(
            f"{row.benchmark:10s} {row.kernel_loc:7d} "
            f"{row.properties_loc:6d} {row.component_loc:7d}   "
            f"{paper:>28s}"
        )
    out.append(
        "[shape] kernels and properties are tens of lines while the "
        "paper's real components span 386 to 970,240 lines; our simulated "
        "components keep the kernel-vs-component asymmetry."
    )
    return "\n".join(out)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table1(run_table1()))


if __name__ == "__main__":  # pragma: no cover
    main()
