"""Mutation testing of the benchmark kernels.

Section 6.3 argues REFLEX's value through anecdotes: injected bugs were
caught because re-verification failed.  This harness turns the anecdote
into a measurement, in the style of modern artifact evaluations: apply
every single-point mutation from a small operator set to every handler of
every benchmark kernel, re-verify, and report the **mutation kill rate**
— the fraction of mutants on which at least one property fails.

Mutation operators (all type-preserving, so every mutant validates):

* ``drop-guard``   — replace ``if (c) { T } else { E }`` by ``T`` (the
  guard stops guarding),
* ``negate-guard`` — replace the condition by its negation,
* ``drop-send``    — delete one ``send``,
* ``drop-assign``  — delete one assignment,
* ``swap-branches``— exchange the branches of an ``if``.

A *survived* mutant is not necessarily a missed bug — the mutation may be
equivalent with respect to the stated properties (e.g. dropping a
convenience message no property mentions).  The interesting shape claims:

* guard-related mutations on security-relevant handlers are killed,
* the overall kill rate is high for the guard/assign operators,
* every kill is produced by the pushbutton re-run, no proof input.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Tuple

from ..lang import ast
from ..lang.validate import validate
from ..props.spec import SpecifiedProgram, specify
from ..prover import ProverOptions, Verifier
from ..systems import BENCHMARKS

OPERATORS = ("drop-guard", "negate-guard", "drop-send", "drop-assign",
             "swap-branches")


@dataclass(frozen=True)
class Mutant:
    """One mutated program, with provenance."""

    benchmark: str
    operator: str
    handler_key: Tuple[str, str]
    site: int
    spec: SpecifiedProgram

    @property
    def label(self) -> str:
        ctype, msg = self.handler_key
        return (f"{self.benchmark}:{ctype}=>{msg} "
                f"{self.operator}#{self.site}")


@dataclass(frozen=True)
class MutantOutcome:
    mutant_label: str
    operator: str
    killed: bool
    failing_properties: Tuple[str, ...]


# ---------------------------------------------------------------------------
# Mutation operators over command trees
# ---------------------------------------------------------------------------


def _rewrite_sites(cmd: ast.Cmd, operator: str) -> Iterator[ast.Cmd]:
    """All single-point rewrites of ``cmd`` under one operator."""
    sites = _count_sites(cmd, operator)
    for site in range(sites):
        mutated, _ = _apply_at(cmd, operator, site)
        yield mutated


def _count_sites(cmd: ast.Cmd, operator: str) -> int:
    count = 0
    for node in ast.sub_cmds(cmd):
        if _applicable(node, operator):
            count += 1
    return count


def _applicable(node: ast.Cmd, operator: str) -> bool:
    if operator in ("drop-guard", "negate-guard", "swap-branches"):
        return isinstance(node, ast.If)
    if operator == "drop-send":
        return isinstance(node, ast.SendCmd)
    if operator == "drop-assign":
        return isinstance(node, ast.Assign)
    return False


def _mutate_node(node: ast.Cmd, operator: str) -> ast.Cmd:
    if operator == "drop-guard":
        return node.then
    if operator == "negate-guard":
        return ast.If(ast.Not(node.cond), node.then, node.otherwise)
    if operator == "swap-branches":
        return ast.If(node.cond, node.otherwise, node.then)
    # drop-send / drop-assign
    return ast.Nop()


def _apply_at(cmd: ast.Cmd, operator: str,
              target: int) -> Tuple[ast.Cmd, int]:
    """Rewrite the ``target``-th applicable node (pre-order); returns the
    new tree and how many applicable nodes were seen in this subtree."""
    seen = 0

    def walk(node: ast.Cmd) -> ast.Cmd:
        nonlocal seen
        if _applicable(node, operator):
            index = seen
            seen += 1
            if index == target:
                return _mutate_node(node, operator)
        if isinstance(node, ast.Seq):
            return ast.seq(*(walk(c) for c in node.cmds))
        if isinstance(node, ast.If):
            return ast.If(node.cond, walk(node.then), walk(node.otherwise))
        if isinstance(node, ast.LookupCmd):
            return ast.LookupCmd(node.ctype, node.bind, node.pred,
                                 walk(node.found), walk(node.missing))
        return node

    return walk(cmd), seen


# ---------------------------------------------------------------------------
# Mutant generation and scoring
# ---------------------------------------------------------------------------


def mutants_of(benchmark: str) -> List[Mutant]:
    """Every single-point mutant of a benchmark (validating ones only —
    the operator set is type-preserving, so that is all of them)."""
    spec = BENCHMARKS[benchmark].load()
    program = spec.program
    out: List[Mutant] = []
    for h_index, handler in enumerate(program.handlers):
        for operator in OPERATORS:
            sites = _count_sites(handler.body, operator)
            for site in range(sites):
                body, _ = _apply_at(handler.body, operator, site)
                handlers = tuple(
                    replace(h, body=body) if i == h_index else h
                    for i, h in enumerate(program.handlers)
                )
                mutated = replace(program, handlers=handlers)
                if mutated == program:
                    continue  # e.g. dropping a lone send inside a seq of 1
                mutant_spec = specify(validate(mutated), *spec.properties)
                out.append(Mutant(
                    benchmark=benchmark,
                    operator=operator,
                    handler_key=handler.key,
                    site=site,
                    spec=mutant_spec,
                ))
    return out


def score_mutants(mutants: List[Mutant],
                  options: Optional[ProverOptions] = None
                  ) -> List[MutantOutcome]:
    """Verify every mutant; killed = at least one property fails."""
    options = options or ProverOptions(check_proofs=False)
    outcomes: List[MutantOutcome] = []
    for mutant in mutants:
        report = Verifier(mutant.spec, options).verify_all()
        failing = tuple(
            r.property.name for r in report.results if not r.proved
        )
        outcomes.append(MutantOutcome(
            mutant_label=mutant.label,
            operator=mutant.operator,
            killed=bool(failing),
            failing_properties=failing,
        ))
    return outcomes


def run_mutation(benchmarks: Optional[List[str]] = None
                 ) -> List[MutantOutcome]:
    """Mutation-test the selected (default: all) benchmarks."""
    outcomes: List[MutantOutcome] = []
    for benchmark in benchmarks or list(BENCHMARKS):
        outcomes.extend(score_mutants(mutants_of(benchmark)))
    return outcomes


def render_mutation(outcomes: List[MutantOutcome]) -> str:
    """The mutation-testing table: kill rate per operator and overall."""
    out = ["Mutation testing — pushbutton re-verification as bug detector"]
    by_operator: dict = {}
    for outcome in outcomes:
        by_operator.setdefault(outcome.operator, []).append(outcome)
    out.append(f"{'operator':15s} {'mutants':>8s} {'killed':>7s} "
               f"{'rate':>6s}")
    for operator in OPERATORS:
        group = by_operator.get(operator, [])
        if not group:
            continue
        killed = sum(1 for o in group if o.killed)
        out.append(
            f"{operator:15s} {len(group):8d} {killed:7d} "
            f"{killed / len(group):6.0%}"
        )
    total = len(outcomes)
    killed = sum(1 for o in outcomes if o.killed)
    out.append(f"{'TOTAL':15s} {total:8d} {killed:7d} "
               f"{killed / total:6.0%}")
    survivors = [o for o in outcomes if not o.killed]
    if survivors:
        out.append("survivors (mutations the stated properties do not "
                   "observe):")
        for o in survivors:
            out.append(f"  {o.mutant_label}")
    return "\n".join(out)


def main() -> None:  # pragma: no cover - CLI convenience
    """Run and print the full mutation-testing table."""
    print(render_mutation(run_mutation()))


if __name__ == "__main__":  # pragma: no cover
    main()
