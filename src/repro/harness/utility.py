"""Section 6.3 regeneration: REFLEX's utility at catching mistakes.

The paper's war story: the web-server benchmark was kept untouched while
the automation was built; on first contact the automation failed to prove
three properties — one failure exposed a tactic bug, and *two of the
policies turned out to be false* and were fixed by correcting their
statement.  Separately, a browser modification introduced subtle kernel
bugs that were only discovered when re-running the (pushbutton) proofs.

This module re-enacts both scenarios with deliberately wrong inputs:

* :func:`false_webserver_properties` — plausible-looking but *false*
  web-server policies (with the corrected statements alongside); the
  prover must reject the false ones and accept the corrections.
* :func:`buggy_browser_source` / :func:`buggy_car_source` /
  :func:`buggy_ssh_source` — kernels with subtle injected bugs of the
  "substantial modification" kind; re-running verification must fail on
  exactly the properties the bugs violate.

Each injected bug is also a *real* bug: the test suite drives the buggy
kernels in the interpreter and exhibits a concrete violating trace,
confirming that the prover rejects these programs for the right reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..frontend import parse_program
from ..props import (
    NonInterference,
    TraceProperty,
    comp_pat,
    msg_pat,
    recv_pat,
    send_pat,
    spawn_pat,
)
from ..props.spec import SpecifiedProgram, specify
from ..prover import Verifier
from ..systems import browser, car, ssh, webserver


@dataclass
class FalseProperty:
    """A wrong policy statement and its correction (paper section 6.3)."""

    name: str
    story: str
    wrong: TraceProperty
    corrected: TraceProperty


def false_webserver_properties() -> List[FalseProperty]:
    """The two-false-policies scenario, re-enacted on our web server."""
    return [
        FalseProperty(
            name="login-direction",
            story=(
                "The policy author wrote the enabling direction backwards: "
                "'every login approval is preceded by a spawned client' — "
                "but clients are spawned *because of* approvals, not before "
                "them."
            ),
            wrong=TraceProperty(
                "ClientBeforeLogin", "Enables",
                spawn_pat(comp_pat("Client", "?u")),
                recv_pat(comp_pat("AccessControl"), msg_pat("LoginOk", "?u")),
            ),
            corrected=TraceProperty(
                "ClientOnlyAfterLogin", "Enables",
                recv_pat(comp_pat("AccessControl"), msg_pat("LoginOk", "?u")),
                spawn_pat(comp_pat("Client", "?u")),
            ),
        ),
        FalseProperty(
            name="disk-read-immediacy",
            story=(
                "The policy author over-claimed: 'the disk read happens "
                "immediately after the auth approval is received'.  True "
                "of the handler, but ImmBefore relates trace neighbours "
                "and the Recv is followed by the Send — the author had "
                "the primitive's orientation wrong."
            ),
            wrong=TraceProperty(
                "DiskReadImmBeforeAuth", "ImmBefore",
                send_pat(comp_pat("Disk"), msg_pat("DiskRead", "?u", "?p")),
                recv_pat(comp_pat("AccessControl"),
                         msg_pat("AuthOk", "?u", "?p")),
            ),
            corrected=TraceProperty(
                "DiskReadImmAfterAuth", "ImmAfter",
                recv_pat(comp_pat("AccessControl"),
                         msg_pat("AuthOk", "?u", "?p")),
                send_pat(comp_pat("Disk"), msg_pat("DiskRead", "?u", "?p")),
            ),
        ),
    ]


def webserver_with(*properties: TraceProperty) -> SpecifiedProgram:
    """The stock web-server kernel specified with the given properties."""
    return specify(webserver.load().info, *properties)


# ---------------------------------------------------------------------------
# Injected kernel bugs
# ---------------------------------------------------------------------------


def buggy_car_source() -> Tuple[str, Tuple[str, ...]]:
    """A car kernel where a hurried edit dropped the crash-latch update —
    the doors can be locked again after a crash.

    Returns the source and the names of the properties that must now fail.
    """
    source = car.SOURCE.replace(
        '      send(D, DoorsCmd("unlock"));\n      crashed = true;',
        '      send(D, DoorsCmd("unlock"));',
    )
    if source == car.SOURCE:
        raise AssertionError("bug injection failed to apply")
    return source, ("NoLockAfterCrash",)


def buggy_ssh_source() -> Tuple[str, Tuple[str, ...]]:
    """An SSH kernel where the authorization check was fat-fingered to
    test the stored *flag* only, granting terminals for any user once
    anyone has logged in."""
    source = ssh.SOURCE.replace(
        "    Connection => ReqTerm(user) {\n"
        "      if ((user, true) == authorized) {",
        "    Connection => ReqTerm(user) {\n"
        "      if (authorized.1 == true) {",
    )
    if source == ssh.SOURCE:
        raise AssertionError("bug injection failed to apply")
    return source, ("AuthBeforeTerm",)


def buggy_browser_source() -> Tuple[str, Tuple[str, ...]]:
    """The paper's browser-modification scenario: while reworking the
    cookie protocol, the domain check in the channel-routing lookup was
    lost — a cookie channel can now reach a tab of a *different* domain.

    This breaks both the cookie-confinement property and domain
    non-interference."""
    source = browser.SOURCE.replace(
        "lookup t : Tab((t.domain == sender.domain) && (t.id == i))",
        "lookup t : Tab(t.id == i)",
    )
    if source == browser.SOURCE:
        raise AssertionError("bug injection failed to apply")
    return source, ("CookiesStayInDomain", "DomainsNoInterfere")


@dataclass
class UtilityOutcome:
    """Expected vs. actual prover failures for one section-6.3 scenario."""

    scenario: str
    expected_failures: Tuple[str, ...]
    actual_failures: Tuple[str, ...]

    @property
    def reproduced(self) -> bool:
        return set(self.expected_failures) <= set(self.actual_failures)


def run_utility() -> List[UtilityOutcome]:
    """Run every section-6.3 scenario; each must fail exactly as expected
    while everything else keeps proving."""
    outcomes: List[UtilityOutcome] = []

    for fp in false_webserver_properties():
        report = Verifier(webserver_with(fp.wrong, fp.corrected)).verify_all()
        outcomes.append(UtilityOutcome(
            scenario=f"false policy: {fp.name}",
            expected_failures=(fp.wrong.name,),
            actual_failures=tuple(
                r.property.name for r in report.results if not r.proved
            ),
        ))

    for scenario, (source, expected) in (
        ("buggy car kernel", buggy_car_source()),
        ("buggy ssh kernel", buggy_ssh_source()),
        ("buggy browser kernel", buggy_browser_source()),
    ):
        report = Verifier(parse_program(source)).verify_all()
        outcomes.append(UtilityOutcome(
            scenario=scenario,
            expected_failures=expected,
            actual_failures=tuple(
                r.property.name for r in report.results if not r.proved
            ),
        ))
    return outcomes


def render_utility(outcomes: List[UtilityOutcome]) -> str:
    """Render the section-6.3 scenario table."""
    out = ["Section 6.3 — catching false policies and injected kernel bugs"]
    for outcome in outcomes:
        status = "REPRODUCED" if outcome.reproduced else "MISSED"
        out.append(
            f"  {outcome.scenario:28s} expected failures "
            f"{list(outcome.expected_failures)} -> prover failed on "
            f"{list(outcome.actual_failures)}  [{status}]"
        )
    all_ok = all(o.reproduced for o in outcomes)
    out.append(f"[shape] every wrong input rejected with a diagnostic: "
               f"{'PASS' if all_ok else 'FAIL'}")
    return "\n".join(out)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_utility(run_utility()))


if __name__ == "__main__":  # pragma: no cover
    main()
