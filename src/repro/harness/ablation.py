"""Section 6.4 regeneration: the effect of the prover optimizations.

The paper reports that domain-specific reduction strategies, syntactic
skip checks, and saving subproofs at cut points yielded an 80× average
speedup (over 1000× on some benchmarks) over the early implementation.
Our engine keeps each optimization behind a switch, so the ablation
measures the same levers:

* ``memoize_step`` — reuse the symbolic inductive step across properties
  (our analog of the domain-specific reduction strategies: the expensive
  normalization work happens once),
* ``syntactic_skip`` — discharge exchanges by the cheap syntactic check,
* ``cache_subproofs`` — reuse invariant subproofs across occurrences.

Numbers will not match the paper's (different machines, different proof
stacks); the reproduced *shape*: every optimization is a strict win and
the combined configuration is several-fold faster than the unoptimized
prover, with the spread widening on the benchmarks with the most
handlers (the browser variants), as in the paper.
"""

from __future__ import annotations

import shutil
import tempfile
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..prover import ProverOptions, Verifier
from ..systems import BENCHMARKS

#: Ablation configurations, most-optimized first.  Proof checking is off
#: in all of them so the measurement isolates the *search* cost, matching
#: the paper's optimization story.
CONFIGURATIONS = {
    "full": ProverOptions(check_proofs=False),
    "no-skip": ProverOptions(syntactic_skip=False, check_proofs=False),
    "no-memo": ProverOptions(memoize_step=False, check_proofs=False),
    "no-subproof-cache": ProverOptions(cache_subproofs=False,
                                       check_proofs=False),
    "none": ProverOptions(syntactic_skip=False, memoize_step=False,
                          cache_subproofs=False, check_proofs=False),
}


@dataclass
class AblationRow:
    """Per-benchmark timings (and peak allocations) per configuration."""

    benchmark: str
    seconds: Dict[str, float]
    #: peak tracemalloc bytes per configuration (0 when not measured)
    peak_bytes: Dict[str, int] = field(default_factory=dict)

    def speedup(self) -> float:
        """How much faster the fully optimized prover is than none."""
        full = self.seconds["full"]
        return self.seconds["none"] / full if full > 0 else float("inf")

    def memory_ratio(self) -> float:
        """Peak-memory ratio of the unoptimized prover vs full."""
        full = self.peak_bytes.get("full", 0)
        none = self.peak_bytes.get("none", 0)
        return none / full if full else 0.0


def run_ablation(repeats: int = 1,
                 measure_memory: bool = True) -> List[AblationRow]:
    """Verify every benchmark under every configuration, measuring wall
    time and (optionally) peak allocation via :mod:`tracemalloc` — the
    paper reports both dimensions (80× time, 5× memory on average)."""
    rows: List[AblationRow] = []
    for name, module in BENCHMARKS.items():
        spec = module.load()
        seconds: Dict[str, float] = {}
        peaks: Dict[str, int] = {}
        for config_name, options in CONFIGURATIONS.items():
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                report = Verifier(spec, options).verify_all()
                elapsed = time.perf_counter() - start
                if not report.all_proved:
                    raise AssertionError(
                        f"ablation config {config_name} broke proofs on "
                        f"{name} — optimizations must never change verdicts"
                    )
                best = min(best, elapsed)
            seconds[config_name] = best
            if measure_memory:
                tracemalloc.start()
                Verifier(spec, options).verify_all()
                _, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
                peaks[config_name] = peak
        rows.append(AblationRow(name, seconds, peaks))
    return rows


def render_ablation(rows: List[AblationRow]) -> str:
    """Render the ablation table with its shape verdict."""
    configs = list(CONFIGURATIONS)
    header = f"{'benchmark':10s} " + " ".join(
        f"{c:>18s}" for c in configs
    ) + f" {'speedup':>9s}"
    out = [
        "Section 6.4 — optimization ablation (seconds per benchmark, all "
        "properties)",
        header,
    ]
    for row in rows:
        cells = " ".join(
            f"{row.seconds[c]:18.4f}" for c in configs
        )
        out.append(f"{row.benchmark:10s} {cells} {row.speedup():8.1f}x")
    if all(r.peak_bytes for r in rows):
        out.append("peak allocation (MiB):")
        for row in rows:
            cells = " ".join(
                f"{row.peak_bytes[c] / (1 << 20):18.2f}" for c in configs
            )
            out.append(
                f"{row.benchmark:10s} {cells} "
                f"{row.memory_ratio():8.1f}x"
            )
    mean_speedup = sum(r.speedup() for r in rows) / len(rows)
    max_speedup = max(r.speedup() for r in rows)
    ok = all(r.speedup() > 1.0 for r in rows)
    out.append(
        f"[shape] combined optimizations beat the unoptimized prover on "
        f"every benchmark: {'PASS' if ok else 'FAIL'}; speedup mean "
        f"{mean_speedup:.1f}x, max {max_speedup:.1f}x "
        f"(paper: mean 80x, max >1000x on their Ltac stack)"
    )
    return "\n".join(out)


@dataclass
class RuntimeRow:
    """Pipeline-runtime measurements for one benchmark: a serial cold
    run, a warm run against a populated proof store, and a parallel run,
    plus whether every configuration agreed bit-for-bit."""

    benchmark: str
    serial_cold: float
    warm_store: float
    parallel: float
    jobs: int
    #: True when statuses and checked derivation keys are identical
    #: across the cold, warm, and parallel runs
    invariant: bool

    def warm_speedup(self) -> float:
        """How much faster the warm-store run is than the cold one."""
        return self.serial_cold / self.warm_store \
            if self.warm_store > 0 else float("inf")


def _report_signature(report) -> List:
    """The invariance signature of a report: per-property status,
    checked flag, and derivation key, in specification order."""
    return [(r.property.name, r.status, r.checked, r.derivation_key())
            for r in report.results]


def run_runtime_ablation(jobs: int = 4, repeats: int = 2,
                         store_root: Optional[str] = None
                         ) -> List[RuntimeRow]:
    """Measure the pipeline's runtime levers per benchmark: cold serial
    verification, warm verification against the proof store the cold run
    populated, and parallel verification, asserting along the way that
    the verdicts and checked derivation keys never change."""
    root = store_root or tempfile.mkdtemp(prefix="repro-proofstore-")
    rows: List[RuntimeRow] = []
    try:
        for name, module in BENCHMARKS.items():
            spec = module.load()
            store_dir = f"{root}/{name}"
            shutil.rmtree(store_dir, ignore_errors=True)
            stored = ProverOptions(proof_store=store_dir)

            cold_report = Verifier(spec, stored).verify_all()
            cold = cold_report.wall_seconds
            signature = _report_signature(cold_report)

            warm = float("inf")
            invariant = True
            for _ in range(repeats):
                warm_report = Verifier(spec, stored).verify_all()
                warm = min(warm, warm_report.wall_seconds)
                invariant &= _report_signature(warm_report) == signature

            par_report = Verifier(spec, ProverOptions()) \
                .verify_all(jobs=jobs)
            invariant &= _report_signature(par_report) == signature

            rows.append(RuntimeRow(
                benchmark=name,
                serial_cold=cold,
                warm_store=warm,
                parallel=par_report.wall_seconds,
                jobs=jobs,
                invariant=invariant,
            ))
    finally:
        if store_root is None:
            shutil.rmtree(root, ignore_errors=True)
    return rows


def render_runtime_ablation(rows: List[RuntimeRow]) -> str:
    """Render the runtime table with its invariance verdict."""
    jobs = rows[0].jobs if rows else 0
    out = [
        "Pipeline runtime — proof store and parallel verification "
        "(seconds per benchmark, all properties)",
        f"{'benchmark':10s} {'cold':>10s} {'warm':>10s} "
        f"{f'jobs={jobs}':>10s} {'warm-speedup':>13s}",
    ]
    for row in rows:
        out.append(
            f"{row.benchmark:10s} {row.serial_cold:10.4f} "
            f"{row.warm_store:10.4f} {row.parallel:10.4f} "
            f"{row.warm_speedup():12.1f}x"
        )
    total_cold = sum(r.serial_cold for r in rows)
    total_warm = sum(r.warm_store for r in rows)
    ok = all(r.invariant for r in rows)
    out.append(
        f"[shape] verdicts and derivation keys identical across cold, "
        f"warm, and parallel runs: {'PASS' if ok else 'FAIL'}; "
        f"warm store {total_cold / total_warm:.1f}x faster overall"
        if total_warm > 0 else "[shape] no timings collected"
    )
    return "\n".join(out)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_ablation(run_ablation()))
    print(render_runtime_ablation(run_runtime_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
