"""Section 6.4 regeneration: the effect of the prover optimizations.

The paper reports that domain-specific reduction strategies, syntactic
skip checks, and saving subproofs at cut points yielded an 80× average
speedup (over 1000× on some benchmarks) over the early implementation.
Our engine keeps each optimization behind a switch, so the ablation
measures the same levers:

* ``memoize_step`` — reuse the symbolic inductive step across properties
  (our analog of the domain-specific reduction strategies: the expensive
  normalization work happens once),
* ``syntactic_skip`` — discharge exchanges by the cheap syntactic check,
* ``cache_subproofs`` — reuse invariant subproofs across occurrences.

Numbers will not match the paper's (different machines, different proof
stacks); the reproduced *shape*: every optimization is a strict win and
the combined configuration is several-fold faster than the unoptimized
prover, with the spread widening on the benchmarks with the most
handlers (the browser variants), as in the paper.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List

from ..prover import ProverOptions, Verifier
from ..systems import BENCHMARKS

#: Ablation configurations, most-optimized first.  Proof checking is off
#: in all of them so the measurement isolates the *search* cost, matching
#: the paper's optimization story.
CONFIGURATIONS = {
    "full": ProverOptions(check_proofs=False),
    "no-skip": ProverOptions(syntactic_skip=False, check_proofs=False),
    "no-memo": ProverOptions(memoize_step=False, check_proofs=False),
    "no-subproof-cache": ProverOptions(cache_subproofs=False,
                                       check_proofs=False),
    "none": ProverOptions(syntactic_skip=False, memoize_step=False,
                          cache_subproofs=False, check_proofs=False),
}


@dataclass
class AblationRow:
    """Per-benchmark timings (and peak allocations) per configuration."""

    benchmark: str
    seconds: Dict[str, float]
    #: peak tracemalloc bytes per configuration (0 when not measured)
    peak_bytes: Dict[str, int] = field(default_factory=dict)

    def speedup(self) -> float:
        """How much faster the fully optimized prover is than none."""
        full = self.seconds["full"]
        return self.seconds["none"] / full if full > 0 else float("inf")

    def memory_ratio(self) -> float:
        """Peak-memory ratio of the unoptimized prover vs full."""
        full = self.peak_bytes.get("full", 0)
        none = self.peak_bytes.get("none", 0)
        return none / full if full else 0.0


def run_ablation(repeats: int = 1,
                 measure_memory: bool = True) -> List[AblationRow]:
    """Verify every benchmark under every configuration, measuring wall
    time and (optionally) peak allocation via :mod:`tracemalloc` — the
    paper reports both dimensions (80× time, 5× memory on average)."""
    rows: List[AblationRow] = []
    for name, module in BENCHMARKS.items():
        spec = module.load()
        seconds: Dict[str, float] = {}
        peaks: Dict[str, int] = {}
        for config_name, options in CONFIGURATIONS.items():
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                report = Verifier(spec, options).verify_all()
                elapsed = time.perf_counter() - start
                if not report.all_proved:
                    raise AssertionError(
                        f"ablation config {config_name} broke proofs on "
                        f"{name} — optimizations must never change verdicts"
                    )
                best = min(best, elapsed)
            seconds[config_name] = best
            if measure_memory:
                tracemalloc.start()
                Verifier(spec, options).verify_all()
                _, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
                peaks[config_name] = peak
        rows.append(AblationRow(name, seconds, peaks))
    return rows


def render_ablation(rows: List[AblationRow]) -> str:
    """Render the ablation table with its shape verdict."""
    configs = list(CONFIGURATIONS)
    header = f"{'benchmark':10s} " + " ".join(
        f"{c:>18s}" for c in configs
    ) + f" {'speedup':>9s}"
    out = [
        "Section 6.4 — optimization ablation (seconds per benchmark, all "
        "properties)",
        header,
    ]
    for row in rows:
        cells = " ".join(
            f"{row.seconds[c]:18.4f}" for c in configs
        )
        out.append(f"{row.benchmark:10s} {cells} {row.speedup():8.1f}x")
    if all(r.peak_bytes for r in rows):
        out.append("peak allocation (MiB):")
        for row in rows:
            cells = " ".join(
                f"{row.peak_bytes[c] / (1 << 20):18.2f}" for c in configs
            )
            out.append(
                f"{row.benchmark:10s} {cells} "
                f"{row.memory_ratio():8.1f}x"
            )
    mean_speedup = sum(r.speedup() for r in rows) / len(rows)
    max_speedup = max(r.speedup() for r in rows)
    ok = all(r.speedup() > 1.0 for r in rows)
    out.append(
        f"[shape] combined optimizations beat the unoptimized prover on "
        f"every benchmark: {'PASS' if ok else 'FAIL'}; speedup mean "
        f"{mean_speedup:.1f}x, max {max_speedup:.1f}x "
        f"(paper: mean 80x, max >1000x on their Ltac stack)"
    )
    return "\n".join(out)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_ablation(run_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
