"""Figure 1's "sats" arrow, made executable.

The paper proves once and for all in Coq that every trace the interpreter
produces is included in the program's behavioral abstraction, and that
therefore a property proved of the abstraction holds of every run.  The
reproduction cannot have that proof; it has this module instead: a
randomized differential oracle that

1. drives each benchmark kernel in the real interpreter under a fuzzing
   driver (random well-typed messages from random components, random
   scheduling),
2. checks the produced trace is accepted by the
   :class:`~repro.symbolic.behabs.AbstractionChecker` (interpreter ⊆
   abstraction), and
3. checks every *proved* trace property holds on the produced trace (the
   end-to-end guarantee), using the independent concrete-trace semantics
   of :mod:`repro.props.tracepreds`.

Any discrepancy is a soundness bug in the reproduction.  The test suite
and the Figure-1 benchmark both run this harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..lang import types as ty
from ..lang.values import VFd, VTuple, Value, vbool, vnum, vstr
from ..props.spec import SpecifiedProgram, TraceProperty
from ..runtime.interpreter import Interpreter, KernelState
from ..runtime.world import World
from ..symbolic.behabs import AbstractionChecker, RejectedTrace
from ..systems import BENCHMARKS

#: Value pools for fuzzed payloads — small on purpose so collisions (same
#: user twice, same domain twice) actually happen and exercise the lookup
#: and counter paths.
STRING_POOL = (
    "alice", "bob", "mallory", "wonderland", "hunter2",
    "mail.example", "shop.example", "static.example", "evil.example",
    "/reports/q1.txt", "/shared/readme.md", "open", "lock", "unlock",
    "",
)


def random_value(t: ty.Type, rng: random.Random) -> Value:
    """A random well-typed payload value."""
    if isinstance(t, ty.StrType):
        return vstr(rng.choice(STRING_POOL))
    if isinstance(t, ty.NumType):
        return vnum(rng.randrange(6))
    if isinstance(t, ty.BoolType):
        return vbool(rng.random() < 0.5)
    if isinstance(t, ty.FdType):
        return VFd(rng.randrange(100, 200))
    if isinstance(t, ty.TupleType):
        return VTuple(tuple(random_value(e, rng) for e in t.elems))
    raise TypeError(f"cannot fuzz type {t}")


@dataclass
class FuzzSession:
    """One randomized run of a benchmark kernel."""

    spec: SpecifiedProgram
    world: World
    interpreter: Interpreter
    state: KernelState


def fuzz_session(benchmark: str, seed: int,
                 events: int = 40) -> FuzzSession:
    """Drive one benchmark with ``events`` random component messages.

    Between stimuli the interpreter runs to quiescence, so scripted
    component responses interleave with fuzzed traffic.
    """
    module = BENCHMARKS[benchmark]
    spec = module.load()
    rng = random.Random(seed)
    world = World(seed=seed, select_policy="random")
    module.register_components(world)
    interpreter = Interpreter(spec.info, world)
    state = interpreter.run_init()
    messages = list(spec.info.msg_table.values())
    for _ in range(events):
        comps = world.components()
        if not comps:
            break
        comp = rng.choice(comps)
        msg = rng.choice(messages)
        payload = tuple(random_value(t, rng) for t in msg.payload)
        world.stimulate(comp, msg.name, *payload)
        interpreter.run(state, max_steps=50)
    interpreter.run(state, max_steps=500)
    return FuzzSession(spec, world, interpreter, state)


@dataclass
class SoundnessVerdict:
    """The oracle's verdict on one fuzzed session."""

    benchmark: str
    seed: int
    trace_length: int
    accepted_by_abstraction: bool
    rejection_reason: str
    violated_properties: Tuple[str, ...]

    @property
    def sound(self) -> bool:
        return self.accepted_by_abstraction and not self.violated_properties


def check_session(session: FuzzSession, benchmark: str,
                  seed: int) -> SoundnessVerdict:
    """Run both halves of the oracle on a finished session."""
    checker = AbstractionChecker(session.spec.info)
    accepted, reason = True, ""
    try:
        checker.check(session.state.trace)
    except RejectedTrace as rejection:
        accepted, reason = False, str(rejection)
    violated = tuple(
        prop.name
        for prop in session.spec.trace_properties()
        if not prop.holds_on(session.state.trace)
    )
    return SoundnessVerdict(
        benchmark=benchmark,
        seed=seed,
        trace_length=len(session.state.trace),
        accepted_by_abstraction=accepted,
        rejection_reason=reason,
        violated_properties=violated,
    )


def run_soundness(seeds: Optional[range] = None,
                  events: int = 40) -> List[SoundnessVerdict]:
    """The full sweep: every benchmark × every seed."""
    seeds = range(10) if seeds is None else seeds
    verdicts: List[SoundnessVerdict] = []
    for benchmark in BENCHMARKS:
        for seed in seeds:
            session = fuzz_session(benchmark, seed, events)
            verdicts.append(check_session(session, benchmark, seed))
    return verdicts


def render_soundness(verdicts: List[SoundnessVerdict]) -> str:
    """Render the per-benchmark soundness sweep."""
    out = ["Figure 1 'sats' arrow — randomized soundness oracle"]
    by_benchmark: dict = {}
    for v in verdicts:
        by_benchmark.setdefault(v.benchmark, []).append(v)
    for benchmark, vs in by_benchmark.items():
        sound = sum(1 for v in vs if v.sound)
        actions = sum(v.trace_length for v in vs)
        out.append(
            f"  {benchmark:10s} {sound}/{len(vs)} runs sound, "
            f"{actions} trace actions checked"
        )
        for v in vs:
            if not v.sound:
                out.append(f"    UNSOUND seed={v.seed}: "
                           f"{v.rejection_reason or v.violated_properties}")
    all_sound = all(v.sound for v in verdicts)
    out.append(
        f"[shape] interpreter traces ⊆ abstraction and proved properties "
        f"hold on every run: {'PASS' if all_sound else 'FAIL'}"
    )
    return "\n".join(out)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_soundness(run_soundness()))


if __name__ == "__main__":  # pragma: no cover
    main()
