"""The evaluation harness: one module per paper table/figure/claim.

=====================  =====================================================
Module                  Regenerates
=====================  =====================================================
``harness.table1``      Table 1 (benchmark sizes)
``harness.figure6``     Figure 6 (41 properties × verification time)
``harness.utility``     section 6.3 (false policies / injected bugs caught)
``harness.ablation``    section 6.4 (optimization speedups)
``harness.effort``      section 6.5 (implementation size by role)
``harness.soundness``   Figure 1's "sats" arrow (randomized trace oracle)
``harness.ni_testing``  section 4.2's relational NI definition, dynamically
``harness.mutation``    section 6.3 extension: mutation-testing the kernels
``harness.chaos``       robustness: verified properties under fault injection
``harness.soak``        production-scale soak: multiplexed fleet, sampled
                        monitoring, resource watchdogs
=====================  =====================================================

Each module is runnable (``python -m repro.harness.figure6``) and is also
driven by the ``benchmarks/`` pytest-benchmark suite.
"""

from . import (
    ablation,
    chaos,
    effort,
    figure6,
    mutation,
    ni_testing,
    soak,
    soundness,
    table1,
    utility,
)

__all__ = [
    "ablation",
    "chaos",
    "effort",
    "figure6",
    "mutation",
    "ni_testing",
    "soak",
    "soundness",
    "table1",
    "utility",
]
