"""The chaos harness: verified properties must survive component failure.

The prover discharges each kernel's trace properties once and for all —
quantified over *every* component behavior, including crashing, flooding,
reordering and garbage (the regime the paper is designed for).  This
harness checks that claim end to end, dynamically: for each benchmark
kernel it sweeps ``schedules`` seeded fault schedules, drives the kernel
with pseudo-random component traffic under a
:class:`~repro.runtime.monitor.MonitoredInterpreter`, and asserts that
the online monitor reports **zero violations of any prover-verified
trace property** on every faulted execution.

Each schedule composes the full fault model of
:mod:`repro.runtime.faults` — component crashes, dropped and duplicated
messages, delivery delays, malformed payloads — with kernel-side
supervision (:mod:`repro.runtime.supervisor`): bounded-backoff restarts,
quarantine, dead-lettering.  Per kernel, the harness also runs a built-in
differential check: with an *empty* fault plan, the supervised stack must
produce a trace identical to the plain :class:`~repro.runtime.world.World`.

Everything is deterministic for a fixed seed — reports are bit-for-bit
reproducible — and fault coverage is reported both in the rendered table
and through the :mod:`repro.obs` telemetry layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..lang import types as ty
from ..lang.validate import ProgramInfo
from ..lang.values import VFd, Value
from ..props.spec import SpecifiedProgram, TraceProperty
from ..prover import Verifier
from ..runtime.faults import FAULT_KINDS, FaultPlan, FaultyWorld
from ..runtime.interpreter import Interpreter
from ..runtime.monitor import MonitoredInterpreter
from ..runtime.supervisor import SupervisedInterpreter, Supervisor
from ..runtime.world import World
from ..seeds import derive_seed

#: String pool for generated payloads: protocol-relevant tokens the
#: benchmark kernels branch on, plus generic noise.
_STRING_POOL = (
    "", "a", "lock", "unlock", "open", "closed", "grant", "deny",
    "mail.example", "shop.example", "evil.example", "GET", "POST",
    "/index.html", "/etc/passwd", "root", "hunter2",
)


# ---------------------------------------------------------------------------
# Deterministic stimulus generation
# ---------------------------------------------------------------------------


def _value_for(t: ty.Type, rng: random.Random) -> Value:
    """A pseudo-random well-typed runtime value (naturals only for num —
    negatives are the garble injector's job)."""
    from ..lang.values import from_python

    if isinstance(t, ty.StrType):
        return from_python(rng.choice(_STRING_POOL))
    if isinstance(t, ty.NumType):
        return from_python(rng.randrange(4))
    if isinstance(t, ty.BoolType):
        return from_python(rng.random() < 0.5)
    if isinstance(t, ty.FdType):
        return VFd(100 + rng.randrange(8))
    if isinstance(t, ty.TupleType):
        from ..lang.values import VTuple

        return VTuple(tuple(_value_for(e, rng) for e in t.elems))
    raise ValueError(f"cannot generate a stimulus value of type {t}")


def random_stimulus(info: ProgramInfo,
                    rng: random.Random) -> Tuple[str, Tuple[Value, ...]]:
    """A declared message with a well-typed pseudo-random payload."""
    names = sorted(info.msg_table)
    decl = info.msg_table[names[rng.randrange(len(names))]]
    return decl.name, tuple(_value_for(t, rng) for t in decl.payload)


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class KernelChaosReport:
    """Fault-coverage and verdicts for one kernel's chaos sweep."""

    kernel: str
    schedules: int
    seed: int
    monitored: int = 0          # prover-verified trace properties
    unproved: int = 0           # properties the prover did not discharge
    ni_excluded: int = 0        # NI properties (not trace-monitorable)
    exchanges: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    crashes: int = 0
    protocol_faults: int = 0
    restarts: int = 0
    quarantines: int = 0
    dead_letters: int = 0
    dropped_sends: int = 0
    duplicated: int = 0
    delayed: int = 0
    garbled: int = 0
    suppressed_stimuli: int = 0
    differential_ok: bool = True
    violations: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Zero violations of verified properties, and the empty-plan
        differential held."""
        return not self.violations and self.differential_ok

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "schedules": self.schedules,
            "seed": self.seed,
            "monitored_properties": self.monitored,
            "unproved_properties": self.unproved,
            "ni_excluded": self.ni_excluded,
            "exchanges": self.exchanges,
            "injected": {k: self.injected.get(k, 0) for k in FAULT_KINDS},
            "crashes": self.crashes,
            "protocol_faults": self.protocol_faults,
            "restarts": self.restarts,
            "quarantines": self.quarantines,
            "dead_letters": self.dead_letters,
            "dropped_sends": self.dropped_sends,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "garbled": self.garbled,
            "suppressed_stimuli": self.suppressed_stimuli,
            "differential_ok": self.differential_ok,
            "violations": list(self.violations),
            "ok": self.ok,
        }


# ---------------------------------------------------------------------------
# Driving one schedule
# ---------------------------------------------------------------------------


def _drive_supervised(
    spec: SpecifiedProgram,
    register: Callable[[object], None],
    plan: FaultPlan,
    properties: Sequence[TraceProperty],
    world_seed: int,
    stimulus_seed: int,
    rounds: int,
    max_steps: int,
):
    """One monitored, supervised, fault-injected execution; returns the
    (monitor, faulty world, supervisor, interpreter, exchanges) bundle."""
    world = FaultyWorld(World(seed=world_seed), plan)
    register(world)
    supervisor = Supervisor(world)
    interpreter = SupervisedInterpreter(spec.info, world,
                                        supervisor=supervisor)
    monitored = MonitoredInterpreter(spec, world, interpreter=interpreter,
                                     properties=properties)
    state = monitored.run_init()
    rng = random.Random(stimulus_seed)
    exchanges = 0
    for _ in range(rounds):
        live = [c for c in world.components() if world.alive(c)]
        if not live:
            break
        comp = live[rng.randrange(len(live))]
        msg, payload = random_stimulus(spec.info, rng)
        world.stimulate(comp, msg, *payload)
        exchanges += monitored.run(state, max_steps=max_steps)
    return monitored, world, supervisor, interpreter, state, exchanges


def _differential(spec: SpecifiedProgram,
                  register: Callable[[object], None],
                  seed: int, kernel: str,
                  rounds: int, max_steps: int) -> bool:
    """The supervised stack under an *empty* fault plan must produce the
    same trace as the plain world under the base interpreter."""
    world_seed = derive_seed(seed, kernel, "differential", "world")
    stimulus_seed = derive_seed(seed, kernel, "differential", "stimulus")

    def drive(world, interpreter) -> tuple:
        register(world)
        state = interpreter.run_init()
        rng = random.Random(stimulus_seed)
        for _ in range(rounds):
            comps = world.components()
            comp = comps[rng.randrange(len(comps))]
            msg, payload = random_stimulus(spec.info, rng)
            world.stimulate(comp, msg, *payload)
            interpreter.run(state, max_steps=max_steps)
        return state.trace.chronological()

    plain_world = World(seed=world_seed)
    plain = drive(plain_world, Interpreter(spec.info, plain_world))
    faulty_world = FaultyWorld(World(seed=world_seed), FaultPlan.empty())
    supervised = drive(
        faulty_world,
        SupervisedInterpreter(spec.info, faulty_world,
                              supervisor=Supervisor(faulty_world)),
    )
    return plain == supervised


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------


def chaos_kernel_names(kernel: str = "all") -> List[str]:
    """Resolve ``--kernel`` to benchmark names (``all`` → the seven)."""
    from ..systems import BENCHMARKS

    if kernel == "all":
        return list(BENCHMARKS)
    if kernel not in BENCHMARKS:
        raise KeyError(kernel)
    return [kernel]


def run_chaos(kernel: str = "all", schedules: int = 25, seed: int = 0,
              rounds: int = 10, faults: int = 6, max_steps: int = 300,
              ) -> List[KernelChaosReport]:
    """Sweep seeded fault schedules over the requested kernels.

    For each kernel: prove the properties, then run ``schedules``
    fault-injected executions monitored against the proved trace
    properties, plus one empty-plan differential run.  Deterministic for
    a fixed ``seed``.
    """
    from ..systems import BENCHMARKS

    names = chaos_kernel_names(kernel)
    reports: List[KernelChaosReport] = []
    for name in names:
        module = BENCHMARKS[name]
        spec = module.load()
        report = KernelChaosReport(kernel=spec.name, schedules=schedules,
                                   seed=seed)
        with obs.span("chaos.kernel", kernel=spec.name):
            verification = Verifier(spec).verify_all()
            proved: List[TraceProperty] = []
            for result in verification.results:
                if not isinstance(result.property, TraceProperty):
                    report.ni_excluded += 1
                elif result.proved:
                    proved.append(result.property)
                else:
                    report.unproved += 1
            report.monitored = len(proved)
            report.differential_ok = _differential(
                spec, module.register_components,
                seed=seed, kernel=name, rounds=rounds,
                max_steps=max_steps,
            )
            violations: List[str] = []
            for schedule in range(schedules):
                # Independent derived streams per schedule: the fault
                # plan, the world's nondeterminism and the stimulus
                # traffic each get their own labeled stream, so widening
                # the sweep or reordering kernels cannot silently
                # re-randomize any single episode (pinned by the RNG
                # hygiene regression tests).
                fault_seed = derive_seed(seed, name, schedule, "faults")
                plan = FaultPlan.generate(
                    seed=fault_seed, horizon=rounds * 4, count=faults,
                )
                obs.event("chaos.episode.start", kernel=spec.name,
                          schedule=schedule, seed=fault_seed,
                          planned_faults=len(plan))
                monitored, world, supervisor, interpreter, _state, done = \
                    _drive_supervised(
                        spec, module.register_components, plan, proved,
                        world_seed=derive_seed(seed, name, schedule,
                                               "world"),
                        stimulus_seed=derive_seed(seed, name, schedule,
                                                  "stimulus"),
                        rounds=rounds, max_steps=max_steps,
                    )
                obs.event("chaos.episode.end", kernel=spec.name,
                          schedule=schedule, exchanges=done,
                          violations=len(monitored.monitor.violations))
                # One flush per episode: a crash mid-sweep still leaves
                # every finished episode on disk for the post-mortem.
                obs.flush_events()
                report.exchanges += done
                for kind_name, amount in world.stats.injected.items():
                    report.injected[kind_name] = (
                        report.injected.get(kind_name, 0) + amount
                    )
                report.crashes += supervisor.crashes
                report.protocol_faults += interpreter.protocol_faults
                report.restarts += supervisor.restarts_total
                report.quarantines += len(supervisor.quarantined)
                report.dead_letters += (len(supervisor.dead_letters)
                                        + len(world.dead_letters))
                report.dropped_sends += world.stats.dropped_sends
                report.duplicated += world.stats.duplicated
                report.delayed += world.stats.delayed
                report.garbled += world.stats.garbled
                report.suppressed_stimuli += (
                    world.stats.suppressed_stimuli
                )
                for violation in monitored.monitor.violations:
                    violations.append(
                        f"schedule {schedule}: {violation}"
                    )
            report.violations = tuple(violations)
        for kind_name in FAULT_KINDS:
            obs.incr(f"chaos.injected.{kind_name}",
                     report.injected.get(kind_name, 0))
        obs.incr("chaos.exchanges", report.exchanges)
        obs.incr("chaos.crashes", report.crashes)
        obs.incr("chaos.restarts", report.restarts)
        obs.incr("chaos.quarantines", report.quarantines)
        obs.incr("chaos.dead_letters", report.dead_letters)
        obs.incr("chaos.violations", len(report.violations))
        reports.append(report)
        obs.flush_events()
    return reports


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_chaos(reports: Sequence[KernelChaosReport]) -> str:
    """The human-readable chaos report (deterministic: no wall times)."""
    lines: List[str] = []
    header = (
        f"{'kernel':<12} {'props':>5} {'exch':>6} "
        f"{'crash':>5} {'proto':>5} {'rest':>4} {'quar':>4} "
        f"{'dead':>4} {'drop':>4} {'dup':>4} {'garb':>4} {'verdict':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for report in reports:
        verdict = "ok" if report.ok else "VIOLATED"
        lines.append(
            f"{report.kernel:<12} {report.monitored:>5} "
            f"{report.exchanges:>6} {report.crashes:>5} "
            f"{report.protocol_faults:>5} {report.restarts:>4} "
            f"{report.quarantines:>4} {report.dead_letters:>4} "
            f"{report.dropped_sends:>4} {report.duplicated:>4} "
            f"{report.garbled:>4} {verdict:>8}"
        )
    lines.append("")
    total_injected: Dict[str, int] = {}
    for report in reports:
        for kind_name, amount in report.injected.items():
            total_injected[kind_name] = (
                total_injected.get(kind_name, 0) + amount
            )
    injected = ", ".join(
        f"{k}={total_injected.get(k, 0)}" for k in FAULT_KINDS
    )
    lines.append(f"faults injected: {injected}")
    bad = [r for r in reports if r.violations]
    diff_bad = [r for r in reports if not r.differential_ok]
    if diff_bad:
        lines.append(
            "DIFFERENTIAL FAILED (empty plan != plain world): "
            + ", ".join(r.kernel for r in diff_bad)
        )
    else:
        lines.append("differential (empty plan == plain world): ok")
    if bad:
        lines.append("")
        for report in bad:
            lines.append(f"{report.kernel}: "
                         f"{len(report.violations)} violation(s)")
            for violation in report.violations:
                lines.append(f"  {violation}")
    else:
        monitored = sum(r.monitored for r in reports)
        lines.append(
            f"violations of verified properties: none "
            f"({monitored} properties monitored across "
            f"{sum(r.schedules for r in reports)} fault schedules)"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """``python -m repro.harness.chaos``"""
    reports = run_chaos()
    print(render_chaos(reports))
    return 0 if all(r.ok for r in reports) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
