"""Empirical (runtime) non-interference testing.

The prover establishes non-interference over the behavioral abstraction;
this harness cross-checks it *dynamically* on concrete executions, the way
section 4.2 defines it: two executions receiving the same high inputs (and
the same non-deterministic context — guaranteed by sharing the world seed)
must produce the same high outputs.

``paired_run`` drives two worlds with the same high stimuli but different
low stimuli and compares the high projections πi/πo of their traces.  For
a verified kernel the projections must agree on every pairing; for the
buggy browser of :mod:`repro.harness.utility` the harness finds concrete
divergences — the dynamic witness of the interference the prover rejects
statically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..lang.values import ComponentInstance, Value
from ..props.patterns import Binding, CompPat
from ..props.spec import NonInterference, SpecifiedProgram
from ..runtime.actions import ARecv, ASend, ASpawn, Action
from ..runtime.interpreter import Interpreter, KernelState
from ..runtime.trace import Trace
from ..runtime.world import World

#: One injected stimulus: (component index in spawn order, message name,
#: payload of plain Python values).
Stimulus = Tuple[int, str, Tuple[object, ...]]


def concrete_labeling(prop: NonInterference,
                      params: Dict[str, object]) -> Callable:
    """θc instantiated at concrete parameter values: component → is-high?"""
    from ..lang.values import from_python

    binding: Binding = {name: from_python(v) for name, v in params.items()}

    def is_high(comp: ComponentInstance) -> bool:
        return any(
            pattern.match(comp, dict(binding)) is not None
            for pattern in prop.high_patterns
        )

    return is_high


def high_projection(trace: Trace, is_high: Callable) -> List[str]:
    """πi + πo: the high-visible actions of a trace, in order.

    Receives from high components are the high inputs; sends to and spawns
    of high components are the high outputs (section 4.2).
    """
    def describe(comp: ComponentInstance) -> str:
        config = ", ".join(str(c) for c in comp.config)
        return f"{comp.ctype}({config})"

    projected: List[str] = []
    for action in trace.chronological():
        if isinstance(action, ARecv) and is_high(action.comp):
            payload = ", ".join(str(p) for p in action.payload)
            projected.append(
                f"in  {describe(action.comp)} {action.msg}({payload})"
            )
        elif isinstance(action, ASend) and is_high(action.comp):
            payload = ", ".join(str(p) for p in action.payload)
            projected.append(
                f"out {describe(action.comp)} {action.msg}({payload})"
            )
        elif isinstance(action, ASpawn) and is_high(action.comp):
            projected.append(f"spawn {describe(action.comp)}")
    return projected


def output_projection(trace: Trace, is_high: Callable) -> List[str]:
    """πo only: sends to and spawns of high components."""
    return [
        line for line in high_projection(trace, is_high)
        if not line.startswith("in ")
    ]


def input_projection(trace: Trace, is_high: Callable) -> List[str]:
    """πi only: receives from high components."""
    return [
        line for line in high_projection(trace, is_high)
        if line.startswith("in ")
    ]


@dataclass
class PairedRun:
    """Two executions agreeing on high inputs."""

    first: KernelState
    second: KernelState
    high_inputs_agree: bool
    high_outputs_agree: bool

    @property
    def interference_witnessed(self) -> bool:
        return self.high_inputs_agree and not self.high_outputs_agree


def drive(spec: SpecifiedProgram, register: Callable[[World], None],
          stimuli: Sequence[Stimulus], seed: int = 0) -> KernelState:
    """Run one execution: init, then each stimulus to quiescence."""
    world = World(seed=seed, select_policy="fifo")
    register(world)
    interpreter = Interpreter(spec.info, world)
    state = interpreter.run_init()
    for comp_index, msg, payload in stimuli:
        comps = world.components()
        if comp_index >= len(comps):
            continue
        world.stimulate(comps[comp_index], msg, *payload)
        interpreter.run(state, max_steps=200)
    return state


def paired_run(
    spec: SpecifiedProgram,
    register: Callable[[World], None],
    prop: NonInterference,
    params: Dict[str, object],
    shared_stimuli: Sequence[Stimulus],
    low_only_first: Sequence[Stimulus],
    low_only_second: Sequence[Stimulus],
    seed: int = 0,
) -> PairedRun:
    """Run the pair: both executions get ``shared_stimuli`` interleaved
    with their own low-only stimuli (callers must ensure low-only stimuli
    never make a *high* component speak — that would desynchronize πi)."""
    first = drive(spec, register,
                  _interleave(shared_stimuli, low_only_first), seed)
    second = drive(spec, register,
                   _interleave(shared_stimuli, low_only_second), seed)
    is_high = concrete_labeling(prop, params)
    return PairedRun(
        first=first,
        second=second,
        high_inputs_agree=(
            input_projection(first.trace, is_high)
            == input_projection(second.trace, is_high)
        ),
        high_outputs_agree=(
            output_projection(first.trace, is_high)
            == output_projection(second.trace, is_high)
        ),
    )


def _interleave(shared: Sequence[Stimulus],
                low: Sequence[Stimulus]) -> List[Stimulus]:
    """Shared stimuli in order, with the low-only stimuli slotted between
    them round-robin (so low traffic genuinely interleaves)."""
    out: List[Stimulus] = []
    low_iter = iter(low)
    for stimulus in shared:
        out.append(stimulus)
        nxt = next(low_iter, None)
        if nxt is not None:
            out.append(nxt)
    out.extend(low_iter)
    return out
