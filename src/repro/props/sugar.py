"""Derived property forms ("syntactic sugar").

Paper section 6.1: "future updates to REFLEX will include syntax for
expressing common patterns such as *at most n of some action*.  This
syntax will immediately desugar to our existing primitives, so the power
of our proof automation will remain."  This module is that update:

* :func:`at_most_once` — ``A`` happens at most once (per variable
  instantiation): desugars to ``A Disables A``.
* :func:`at_most` — at most ``n`` occurrences of a *counted* action
  family (the kernel stamps an attempt number into the action, as the ssh
  benchmark does): desugars to the family the paper itself uses in
  Figure 6 — each numbered occurrence happens at most once, each enables
  the next, and the ``n``-th disables the whole family.
* :func:`exactly_follows` — a request/response pairing: every response
  is enabled by a matching request *and* every request ensures a
  response; desugars to an ``Enables``/``Ensures`` pair.

Everything here produces plain :class:`~repro.props.spec.TraceProperty`
values, so the prover and checker are untouched — exactly the
desugaring discipline the paper prescribes.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, Union

from .patterns import ActionPattern, FieldPattern, PWild, field_pattern
from .spec import TraceProperty

#: A counted action family: given the occurrence number (an ``int``) or a
#: field pattern (e.g. a wildcard for "any occurrence"), produce the
#: action pattern for that occurrence.
CountedFamily = Callable[[Union[int, FieldPattern]], ActionPattern]


def at_most_once(name: str, pattern: ActionPattern,
                 description: str = "") -> TraceProperty:
    """``pattern`` occurs at most once per variable instantiation.

    ``A Disables A``: any occurrence forbids a later one.
    """
    return TraceProperty(
        name, "Disables", pattern, pattern,
        description=description or "occurs at most once",
    )


def at_most(name_prefix: str, family: CountedFamily,
            limit: int) -> Tuple[TraceProperty, ...]:
    """At most ``limit`` occurrences of a counted action family.

    Desugars into ``2·limit`` primitives (for ``limit = 3`` this is
    precisely the four-property encoding of the paper's ssh benchmark,
    plus the per-number uniqueness rows):

    * for each ``k`` in 1..limit: occurrence ``k`` happens at most once,
    * for each ``k`` in 2..limit: occurrence ``k`` is enabled by
      occurrence ``k-1`` (numbers are handed out in order),
    * occurrence ``limit`` disables the entire family (nothing follows
      the last allowed occurrence).
    """
    if limit < 1:
        raise ValueError("at_most requires limit >= 1")
    props: List[TraceProperty] = []
    for k in range(1, limit + 1):
        props.append(at_most_once(
            f"{name_prefix}_occurrence{k}_once", family(k),
            description=f"occurrence #{k} happens at most once",
        ))
    for k in range(2, limit + 1):
        props.append(TraceProperty(
            f"{name_prefix}_{k}_needs_{k - 1}", "Enables",
            family(k - 1), family(k),
            description=f"occurrence #{k} presupposes occurrence #{k - 1}",
        ))
    props.append(TraceProperty(
        f"{name_prefix}_{limit}_is_final", "Disables",
        family(limit), family(PWild()),
        description=f"occurrence #{limit} is the last of the family",
    ))
    return tuple(props)


def exactly_follows(name_prefix: str, request: ActionPattern,
                    response: ActionPattern) -> Tuple[TraceProperty, ...]:
    """Responses happen only after, and always after, matching requests.

    Desugars to ``request Enables response`` (no unsolicited responses)
    and ``request Ensures response`` (no dropped requests).
    """
    return (
        TraceProperty(
            f"{name_prefix}_only_after", "Enables", request, response,
            description="responses only follow matching requests",
        ),
        TraceProperty(
            f"{name_prefix}_always_answered", "Ensures", request, response,
            description="every request is answered",
        ),
    )


def counted_field(make: Callable[[FieldPattern], ActionPattern]
                  ) -> CountedFamily:
    """Lift a pattern constructor over one field into a counted family:
    integers become literal field patterns, everything else coerces via
    :func:`repro.props.patterns.field_pattern`."""

    def family(k: Union[int, FieldPattern]) -> ActionPattern:
        return make(field_pattern(k))

    return family
