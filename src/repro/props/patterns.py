"""Action patterns (paper section 4.1).

An action pattern is an action whose fields contain *literals*, *variables*,
or *wildcards*.  ``Send(C(), M(3, _, s))`` matches any ``Send`` action whose
recipient has component type ``C`` with an empty configuration and whose
message is of type ``M`` with payload ``(3, anything, s)`` — binding the
pattern variable ``s``.  All pattern variables are universally quantified at
the outermost level of the enclosing property.

Matching is implemented as one-way unification against concrete actions: a
match either fails or returns the binding environment extended consistently.
The symbolic twin of this operation (patterns against *action templates*
containing symbolic expressions) lives in :mod:`repro.symbolic.unify`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple, Union

from ..lang.errors import ValidationError
from ..lang.values import ComponentInstance, Value, from_python
from ..runtime.actions import ACall, ARecv, ASelect, ASend, ASpawn, Action

# ---------------------------------------------------------------------------
# Field patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PLit:
    """Matches exactly one value."""

    value: Value

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class PVar:
    """A pattern variable: matches anything, consistently across the
    property (same variable, same value)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PWild:
    """Matches anything, binding nothing (the paper's ``_``)."""

    def __str__(self) -> str:
        return "_"


FieldPattern = Union[PLit, PVar, PWild]

#: A binding environment for pattern variables.
Binding = Dict[str, Value]


def plit(value: object) -> PLit:
    """Literal field pattern from a plain Python value."""
    return PLit(from_python(value))


def field_pattern(x: object) -> FieldPattern:
    """Coerce: strings starting with ``?`` become variables, ``_`` becomes a
    wildcard, pattern objects pass through, anything else is a literal."""
    if isinstance(x, (PLit, PVar, PWild)):
        return x
    if x is None:
        return PWild()
    if isinstance(x, str) and x == "_":
        return PWild()
    if isinstance(x, str) and x.startswith("?"):
        return PVar(x[1:])
    return plit(x)


def match_field(pat: FieldPattern, value: Value,
                binding: Binding) -> Optional[Binding]:
    """Match one field; returns the extended binding or ``None``."""
    if isinstance(pat, PWild):
        return binding
    if isinstance(pat, PLit):
        return binding if pat.value == value else None
    # PVar
    bound = binding.get(pat.name)
    if bound is None:
        extended = dict(binding)
        extended[pat.name] = value
        return extended
    return binding if bound == value else None


# ---------------------------------------------------------------------------
# Component and message patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompPat:
    """Matches a component instance by type and (optionally) configuration.

    ``config is None`` means "any configuration"; otherwise every config
    field is matched positionally.
    """

    ctype: str
    config: Optional[Tuple[FieldPattern, ...]] = None

    def __str__(self) -> str:
        if self.config is None:
            return f"{self.ctype}(*)"
        return f"{self.ctype}({', '.join(str(p) for p in self.config)})"

    def match(self, comp: ComponentInstance,
              binding: Binding) -> Optional[Binding]:
        if comp.ctype != self.ctype:
            return None
        if self.config is None:
            return binding
        if len(self.config) != len(comp.config):
            return None
        current: Optional[Binding] = binding
        for pat, value in zip(self.config, comp.config):
            current = match_field(pat, value, current)
            if current is None:
                return None
        return current

    def variables(self) -> FrozenSet[str]:
        if self.config is None:
            return frozenset()
        return frozenset(
            p.name for p in self.config if isinstance(p, PVar)
        )


@dataclass(frozen=True)
class MsgPat:
    """Matches a message by name and payload fields."""

    name: str
    payload: Tuple[FieldPattern, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(p) for p in self.payload)})"

    def match(self, msg: str, payload: Tuple[Value, ...],
              binding: Binding) -> Optional[Binding]:
        if msg != self.name or len(payload) != len(self.payload):
            return None
        current: Optional[Binding] = binding
        for pat, value in zip(self.payload, payload):
            current = match_field(pat, value, current)
            if current is None:
                return None
        return current

    def variables(self) -> FrozenSet[str]:
        return frozenset(
            p.name for p in self.payload if isinstance(p, PVar)
        )


# ---------------------------------------------------------------------------
# Action patterns
# ---------------------------------------------------------------------------


class ActionPattern:
    """Base class of action patterns."""

    def match(self, action: Action,
              binding: Binding) -> Optional[Binding]:  # pragma: no cover
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:  # pragma: no cover
        raise NotImplementedError


@dataclass(frozen=True)
class SendPat(ActionPattern):
    """Matches ``Send`` actions: the kernel sent a message."""

    comp: CompPat
    msg: MsgPat

    def __str__(self) -> str:
        return f"Send({self.comp}, {self.msg})"

    def match(self, action: Action,
              binding: Binding) -> Optional[Binding]:
        if not isinstance(action, ASend):
            return None
        after_comp = self.comp.match(action.comp, binding)
        if after_comp is None:
            return None
        return self.msg.match(action.msg, action.payload, after_comp)

    def variables(self) -> FrozenSet[str]:
        return self.comp.variables() | self.msg.variables()


@dataclass(frozen=True)
class RecvPat(ActionPattern):
    """Matches ``Recv`` actions: the kernel received a message."""

    comp: CompPat
    msg: MsgPat

    def __str__(self) -> str:
        return f"Recv({self.comp}, {self.msg})"

    def match(self, action: Action,
              binding: Binding) -> Optional[Binding]:
        if not isinstance(action, ARecv):
            return None
        after_comp = self.comp.match(action.comp, binding)
        if after_comp is None:
            return None
        return self.msg.match(action.msg, action.payload, after_comp)

    def variables(self) -> FrozenSet[str]:
        return self.comp.variables() | self.msg.variables()


@dataclass(frozen=True)
class SpawnPat(ActionPattern):
    """Matches ``Spawn`` actions: the kernel created a component."""

    comp: CompPat

    def __str__(self) -> str:
        return f"Spawn({self.comp})"

    def match(self, action: Action,
              binding: Binding) -> Optional[Binding]:
        if not isinstance(action, ASpawn):
            return None
        return self.comp.match(action.comp, binding)

    def variables(self) -> FrozenSet[str]:
        return self.comp.variables()


@dataclass(frozen=True)
class SelectPat(ActionPattern):
    """Matches ``Select`` actions (rarely used in properties, provided for
    completeness of the pattern algebra)."""

    comp: CompPat

    def __str__(self) -> str:
        return f"Select({self.comp})"

    def match(self, action: Action,
              binding: Binding) -> Optional[Binding]:
        if not isinstance(action, ASelect):
            return None
        return self.comp.match(action.comp, binding)

    def variables(self) -> FrozenSet[str]:
        return self.comp.variables()


@dataclass(frozen=True)
class CallPat(ActionPattern):
    """Matches ``Call`` actions by function name, arguments and result."""

    func: str
    args: Tuple[FieldPattern, ...] = ()
    result: FieldPattern = PWild()

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.args)
        return f"Call({self.func}({args}) = {self.result})"

    def match(self, action: Action,
              binding: Binding) -> Optional[Binding]:
        if not isinstance(action, ACall):
            return None
        if action.func != self.func or len(action.args) != len(self.args):
            return None
        current: Optional[Binding] = binding
        for pat, value in zip(self.args, action.args):
            current = match_field(pat, value, current)
            if current is None:
                return None
        return match_field(self.result, action.result, current)

    def variables(self) -> FrozenSet[str]:
        names = {p.name for p in self.args if isinstance(p, PVar)}
        if isinstance(self.result, PVar):
            names.add(self.result.name)
        return frozenset(names)


# ---------------------------------------------------------------------------
# Convenience constructors (used by the systems and tests)
# ---------------------------------------------------------------------------


def comp_pat(ctype: str, *config: object,
             any_config: bool = False) -> CompPat:
    """Component pattern; with no config arguments the pattern requires an
    *empty* configuration unless ``any_config=True``."""
    if any_config:
        if config:
            raise ValidationError(
                "any_config component pattern cannot list config fields"
            )
        return CompPat(ctype, None)
    return CompPat(ctype, tuple(field_pattern(c) for c in config))


def msg_pat(msg_name: str, *payload: object) -> MsgPat:
    return MsgPat(msg_name, tuple(field_pattern(p) for p in payload))


def send_pat(comp: CompPat, msg: MsgPat) -> SendPat:
    return SendPat(comp, msg)


def recv_pat(comp: CompPat, msg: MsgPat) -> RecvPat:
    return RecvPat(comp, msg)


def spawn_pat(comp: CompPat) -> SpawnPat:
    return SpawnPat(comp)
