"""Concrete-trace semantics of the five REFLEX trace primitives.

This module is the *oracle*: given a finished trace, it decides whether the
trace satisfies a property.  The prover never calls it — proofs are about
**all** traces in BehAbs — but the test suite uses it relentlessly as the
ground truth the prover's verdicts are differentially checked against
(the executable substitute for the paper's end-to-end Coq guarantee).

Conventions (see :mod:`repro.runtime.trace`): the paper stores traces
newest-first; this module works over the chronological view and the
definitions below are the chronological transliterations of the paper's
Coq definitions (section 4.1), which the test suite cross-checks against a
literal newest-first implementation.

Semantics, with *trigger* and *required* patterns and all pattern variables
universally quantified at the outermost level:

================  ========  ===========================================
Primitive          Trigger   Requirement
================  ========  ===========================================
``ImmBefore A B``  each B    an A-match immediately before it
``ImmAfter A B``   each A    a B-match immediately after it
``Enables A B``    each B    an A-match strictly before it
``Ensures A B``    each A    a B-match strictly after it
``Disables A B``   each B    **no** A-match strictly before it
================  ========  ===========================================

Variable scoping: for the four positive primitives, the required pattern's
variables must be a subset of the trigger's (checked by
:func:`check_wellformed`) — otherwise universal quantification makes the
property unsatisfiable on any non-degenerate trace.  For ``Disables`` the
forbidden pattern may mention extra variables; they act as wildcards in the
(negated) match, which is exactly what outermost universal quantification
yields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..lang.errors import ValidationError
from ..runtime.actions import Action
from ..runtime.trace import Trace
from .patterns import ActionPattern, Binding

#: The five primitive names, as in the paper.
PRIMITIVES = ("ImmBefore", "ImmAfter", "Enables", "Ensures", "Disables")


@dataclass(frozen=True)
class Violation:
    """A concrete counterexample: the trigger action position and binding
    for which the requirement failed."""

    primitive: str
    position: int
    action: Action
    binding: Tuple[Tuple[str, object], ...]

    def __str__(self) -> str:
        env = ", ".join(f"{k}={v}" for k, v in self.binding)
        return (
            f"{self.primitive} violated at action #{self.position} "
            f"({self.action}) with [{env}]"
        )


def _freeze(binding: Binding) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(binding.items()))


def check_wellformed(primitive: str, a: ActionPattern,
                     b: ActionPattern) -> None:
    """Reject positive-requirement properties whose required pattern has
    variables the trigger does not bind (see module docstring)."""
    if primitive not in PRIMITIVES:
        raise ValidationError(f"unknown trace primitive {primitive}")
    trigger, required = _trigger_required(primitive, a, b)
    if primitive == "Disables":
        return
    extra = required.variables() - trigger.variables()
    if extra:
        raise ValidationError(
            f"{primitive}: required pattern binds variables "
            f"{sorted(extra)} that the trigger pattern does not; such a "
            f"property is unsatisfiable under outermost universal "
            f"quantification"
        )


def _trigger_required(
    primitive: str, a: ActionPattern, b: ActionPattern
) -> Tuple[ActionPattern, ActionPattern]:
    """(trigger, required) patterns per the table in the module docstring."""
    if primitive in ("ImmBefore", "Enables", "Disables"):
        return b, a
    return a, b


def _trigger_matches(
    trigger: ActionPattern, actions: Sequence[Action]
) -> List[Tuple[int, Binding]]:
    """All (position, binding) pairs where the trigger matches."""
    matches: List[Tuple[int, Binding]] = []
    for i, action in enumerate(actions):
        binding = trigger.match(action, {})
        if binding is not None:
            matches.append((i, binding))
    return matches


def violations(primitive: str, a: ActionPattern, b: ActionPattern,
               trace: Trace) -> List[Violation]:
    """All violations of ``primitive A B`` on ``trace`` (empty = satisfied)."""
    actions = trace.chronological()
    trigger, required = _trigger_required(primitive, a, b)
    found: List[Violation] = []
    for i, binding in _trigger_matches(trigger, actions):
        if _requirement_holds(primitive, required, actions, i, binding):
            continue
        found.append(
            Violation(primitive, i, actions[i], _freeze(binding))
        )
    return found


def _requirement_holds(primitive: str, required: ActionPattern,
                       actions: Sequence[Action], i: int,
                       binding: Binding) -> bool:
    if primitive == "ImmBefore":
        return i > 0 and required.match(actions[i - 1], binding) is not None
    if primitive == "ImmAfter":
        return (
            i + 1 < len(actions)
            and required.match(actions[i + 1], binding) is not None
        )
    if primitive == "Enables":
        return any(
            required.match(actions[j], binding) is not None
            for j in range(i)
        )
    if primitive == "Ensures":
        return any(
            required.match(actions[j], binding) is not None
            for j in range(i + 1, len(actions))
        )
    if primitive == "Disables":
        return not any(
            required.match(actions[j], binding) is not None
            for j in range(i)
        )
    raise ValidationError(f"unknown trace primitive {primitive}")


def holds(primitive: str, a: ActionPattern, b: ActionPattern,
          trace: Trace) -> bool:
    """Does ``primitive A B`` hold on ``trace``?"""
    return not violations(primitive, a, b, trace)


# ---------------------------------------------------------------------------
# Literal newest-first transliteration (for duality cross-checks)
# ---------------------------------------------------------------------------


def _amatch(p: ActionPattern, action: Action,
            binding: Binding) -> Optional[Binding]:
    return p.match(action, binding)


def immbefore_newest_first(a: ActionPattern, b: ActionPattern,
                           tr: Sequence[Action]) -> bool:
    """Direct transliteration of the paper's ``immbefore`` over a
    newest-first action list: for every decomposition ``tr = suf ++ b0 ::
    pre`` with ``b0`` matching B, ``pre`` starts with an A-match."""
    for i, action in enumerate(tr):
        binding = _amatch(b, action, {})
        if binding is None:
            continue
        pre = tr[i + 1:]
        if not pre or _amatch(a, pre[0], binding) is None:
            return False
    return True


def enables_newest_first(a: ActionPattern, b: ActionPattern,
                         tr: Sequence[Action]) -> bool:
    """Direct transliteration of the paper's ``enables``."""
    for i, action in enumerate(tr):
        binding = _amatch(b, action, {})
        if binding is None:
            continue
        pre = tr[i + 1:]
        if not any(_amatch(a, older, binding) is not None for older in pre):
            return False
    return True


def immafter_newest_first(a: ActionPattern, b: ActionPattern,
                          tr: Sequence[Action]) -> bool:
    """The paper's ``immafter A B tr := immbefore B A (rev tr)``."""
    return immbefore_newest_first(b, a, list(reversed(tr)))


def ensures_newest_first(a: ActionPattern, b: ActionPattern,
                         tr: Sequence[Action]) -> bool:
    """The paper's ``ensures A B tr := enables B A (rev tr)``."""
    return enables_newest_first(b, a, list(reversed(tr)))


def disables_newest_first(a: ActionPattern, b: ActionPattern,
                          tr: Sequence[Action]) -> bool:
    """Direct transliteration of the paper's ``disables``."""
    for i, action in enumerate(tr):
        binding = _amatch(b, action, {})
        if binding is None:
            continue
        pre = tr[i + 1:]
        if any(_amatch(a, older, binding) is not None for older in pre):
            return False
    return True


NEWEST_FIRST_SEMANTICS = {
    "ImmBefore": immbefore_newest_first,
    "ImmAfter": immafter_newest_first,
    "Enables": enables_newest_first,
    "Ensures": ensures_newest_first,
    "Disables": disables_newest_first,
}
