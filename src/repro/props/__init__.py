"""The REFLEX property language: action patterns, the five trace
primitives, non-interference labelings, and specified programs.
"""

from .patterns import (
    ActionPattern,
    CallPat,
    CompPat,
    MsgPat,
    PLit,
    PVar,
    PWild,
    RecvPat,
    SelectPat,
    SendPat,
    SpawnPat,
    comp_pat,
    msg_pat,
    plit,
    recv_pat,
    send_pat,
    spawn_pat,
)
from .spec import (
    NonInterference,
    Property,
    SpecifiedProgram,
    TraceProperty,
    specify,
)
from .sugar import at_most, at_most_once, counted_field, exactly_follows
from .tracepreds import PRIMITIVES, Violation, holds, violations

__all__ = [
    "ActionPattern",
    "CallPat",
    "CompPat",
    "MsgPat",
    "PLit",
    "PVar",
    "PWild",
    "RecvPat",
    "SelectPat",
    "SendPat",
    "SpawnPat",
    "comp_pat",
    "msg_pat",
    "plit",
    "recv_pat",
    "send_pat",
    "spawn_pat",
    "NonInterference",
    "Property",
    "SpecifiedProgram",
    "TraceProperty",
    "specify",
    "at_most",
    "at_most_once",
    "counted_field",
    "exactly_follows",
    "PRIMITIVES",
    "Violation",
    "holds",
    "violations",
]
