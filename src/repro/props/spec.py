"""Property declarations and specified programs.

A :class:`TraceProperty` is one line of a REFLEX ``Properties`` section:
a name, a primitive, and two action patterns.  A :class:`NonInterference`
declaration carries the paper's labeling functions: θc (component labeling,
expressed as patterns that select the *high* components, possibly
parameterized by universally quantified variables such as a browser
domain) and θv (the set of *high* global variables, section 5.2).

:class:`SpecifiedProgram` bundles a validated program with its properties
and re-validates the patterns against the program's declarations — name
mismatches and arity errors in properties are caught here rather than by a
failing proof, which is the DSL-frontend discipline the paper advocates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple, Union

from ..lang.errors import ValidationError
from ..lang.validate import ProgramInfo
from . import tracepreds
from .patterns import (
    ActionPattern,
    CallPat,
    CompPat,
    MsgPat,
    PVar,
    RecvPat,
    SelectPat,
    SendPat,
    SpawnPat,
)


@dataclass(frozen=True)
class TraceProperty:
    """``name: [A] primitive [B]`` with an optional human description."""

    name: str
    primitive: str
    a: ActionPattern
    b: ActionPattern
    description: str = ""

    def __str__(self) -> str:
        return f"{self.name}: [{self.a}] {self.primitive} [{self.b}]"

    def holds_on(self, trace) -> bool:
        """Oracle check on a concrete trace."""
        return tracepreds.holds(self.primitive, self.a, self.b, trace)

    def violations_on(self, trace):
        """Counterexamples on a concrete trace."""
        return tracepreds.violations(self.primitive, self.a, self.b, trace)


@dataclass(frozen=True)
class NonInterference:
    """A non-interference declaration (paper sections 4.2 and 5.2).

    ``high_patterns`` select the high components (θc maps a component to
    *high* iff some pattern matches its type and configuration); everything
    else is low.  ``high_vars`` is θv, the set of high global variables.
    ``params`` are universally quantified labeling parameters: the browser's
    "different domains do not interfere" is expressed with high patterns
    ``Tab(?d)``/``CookieProc(?d)`` and ``params=("d",)`` — NI must hold for
    every instantiation of ``d``.
    """

    name: str
    high_patterns: Tuple[CompPat, ...]
    high_vars: FrozenSet[str] = frozenset()
    params: Tuple[str, ...] = ()
    description: str = ""

    def __str__(self) -> str:
        pats = ", ".join(str(p) for p in self.high_patterns)
        quant = f"forall {', '.join(self.params)}. " if self.params else ""
        return f"{self.name}: {quant}NoInterference high=[{pats}] " \
               f"highvars={sorted(self.high_vars)}"


Property = Union[TraceProperty, NonInterference]


@dataclass(frozen=True)
class SpecifiedProgram:
    """A validated program together with its validated properties.

    This is the unit the prover, the harness and the examples all consume:
    the whole content of one REFLEX source file.
    """

    info: ProgramInfo
    properties: Tuple[Property, ...] = ()

    @property
    def program(self):
        return self.info.program

    @property
    def name(self) -> str:
        return self.info.program.name

    def trace_properties(self) -> Tuple[TraceProperty, ...]:
        return tuple(
            p for p in self.properties if isinstance(p, TraceProperty)
        )

    def ni_properties(self) -> Tuple[NonInterference, ...]:
        return tuple(
            p for p in self.properties if isinstance(p, NonInterference)
        )

    def property_named(self, name: str) -> Property:
        for p in self.properties:
            if p.name == name:
                return p
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Validation of properties against a program
# ---------------------------------------------------------------------------


def _check_comp_pat(pat: CompPat, info: ProgramInfo, where: str) -> None:
    decl = info.comp_table.get(pat.ctype)
    if decl is None:
        raise ValidationError(
            f"{where}: pattern mentions undeclared component type "
            f"{pat.ctype}"
        )
    if pat.config is not None and len(pat.config) != len(decl.config):
        raise ValidationError(
            f"{where}: component pattern {pat} has {len(pat.config)} config "
            f"fields but {pat.ctype} declares {len(decl.config)}"
        )


def _check_msg_pat(pat: MsgPat, info: ProgramInfo, where: str) -> None:
    decl = info.msg_table.get(pat.name)
    if decl is None:
        raise ValidationError(
            f"{where}: pattern mentions undeclared message type {pat.name}"
        )
    if len(pat.payload) != decl.arity:
        raise ValidationError(
            f"{where}: message pattern {pat} has {len(pat.payload)} payload "
            f"fields but {pat.name} declares {decl.arity}"
        )


def _check_action_pat(pat: ActionPattern, info: ProgramInfo,
                      where: str) -> None:
    if isinstance(pat, (SendPat, RecvPat)):
        _check_comp_pat(pat.comp, info, where)
        _check_msg_pat(pat.msg, info, where)
    elif isinstance(pat, (SpawnPat, SelectPat)):
        _check_comp_pat(pat.comp, info, where)
    elif isinstance(pat, CallPat):
        pass  # call functions are not declared in the program
    else:
        raise ValidationError(f"{where}: unknown action pattern {pat!r}")


def _check_trace_property(prop: TraceProperty, info: ProgramInfo) -> None:
    where = f"property {prop.name}"
    _check_action_pat(prop.a, info, where)
    _check_action_pat(prop.b, info, where)
    tracepreds.check_wellformed(prop.primitive, prop.a, prop.b)


def _check_ni_property(prop: NonInterference, info: ProgramInfo) -> None:
    where = f"property {prop.name}"
    if not prop.high_patterns:
        raise ValidationError(f"{where}: empty high-component labeling")
    declared_params = set(prop.params)
    for pat in prop.high_patterns:
        _check_comp_pat(pat, info, where)
        used = pat.variables()
        stray = used - declared_params
        if stray:
            raise ValidationError(
                f"{where}: labeling pattern {pat} uses undeclared "
                f"parameters {sorted(stray)}"
            )
        if pat.config is not None:
            for fp in pat.config:
                if isinstance(fp, PVar) and fp.name not in declared_params:
                    raise ValidationError(
                        f"{where}: labeling variable {fp.name} is not a "
                        f"declared parameter"
                    )
    for var in prop.high_vars:
        if var not in info.global_types:
            raise ValidationError(
                f"{where}: high variable {var} is not a global of the "
                f"program"
            )


def specify(info: ProgramInfo, *properties: Property) -> SpecifiedProgram:
    """Bundle and validate: the one entry point producing a
    :class:`SpecifiedProgram`."""
    names = [p.name for p in properties]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValidationError(f"duplicate property names: {dupes}")
    for prop in properties:
        if isinstance(prop, TraceProperty):
            _check_trace_property(prop, info)
        elif isinstance(prop, NonInterference):
            _check_ni_property(prop, info)
        else:
            raise ValidationError(f"unknown property form: {prop!r}")
    return SpecifiedProgram(info, tuple(properties))
