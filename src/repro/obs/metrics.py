"""A metrics registry: counters, gauges, and log-bucketed histograms.

Counters answer "how many", gauges answer "how much right now", and the
histograms answer the distribution questions flat counters cannot —
solver-query latency, obligation wall time, worker queue wait.  The
registry is deliberately tiny:

* **cheap when off** — hot call sites go through the module-level
  :func:`observe`/:func:`gauge` helpers, which are a single module-global
  read plus a ``None`` check when no metrics-enabled sink is installed
  (the same fast path as ``obs.incr``);
* **process-portable** — :meth:`MetricsRegistry.export` is a plain dict
  of plain values that pickles; the parent folds worker registries in
  with :meth:`MetricsRegistry.merge`;
* **bounded** — a histogram is a fixed family of power-of-two buckets
  over a base resolution, so a million observations cost the same memory
  as ten.

Histogram semantics: bucket ``i`` holds values in
``(BASE * 2**(i-1), BASE * 2**i]`` (bucket 0 holds everything at or
below ``BASE``); quantiles are upper-bound estimates read off the bucket
boundaries, which is the right bias for latency alerting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Histogram base resolution in native units (seconds for latencies):
#: one microsecond.  Everything at or below it lands in bucket 0.
BASE = 1e-6

#: Quantiles reported by summaries and ``to_dict``.
QUANTILES = (0.5, 0.9, 0.99)


def bucket_index(value: float, base: float = BASE) -> int:
    """The log-bucket index of ``value``: 0 for ``value <= base``, else
    the smallest ``i`` with ``value <= base * 2**i``."""
    if value <= base:
        return 0
    index = 0
    bound = base
    while bound < value:
        bound *= 2.0
        index += 1
    return index


class Histogram:
    """A log-bucketed histogram over a fixed base resolution."""

    __slots__ = ("base", "count", "total", "min", "max", "buckets")

    def __init__(self, base: float = BASE) -> None:
        self.base = base
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bucket_index(value, self.base)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def bucket_bound(self, index: int) -> float:
        """Upper (inclusive) value bound of bucket ``index``."""
        return self.base * (2.0 ** index)

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 when empty)."""
        if self.count == 0:
            return 0.0
        needed = max(1, int(q * self.count + 0.999999))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= needed:
                return self.bucket_bound(index)
        return self.bucket_bound(max(self.buckets))

    def merge(self, other: dict) -> None:
        """Fold an exported histogram dict into this one."""
        self.count += other["count"]
        self.total += other["total"]
        for extreme, pick in (("min", min), ("max", max)):
            value = other.get(extreme)
            if value is not None:
                mine = getattr(self, extreme)
                setattr(self, extreme,
                        value if mine is None else pick(mine, value))
        for index, amount in other["buckets"].items():
            index = int(index)
            self.buckets[index] = self.buckets.get(index, 0) + amount

    def export(self) -> dict:
        """Pickle/JSON-friendly snapshot (mergeable)."""
        return {
            "base": self.base,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": dict(self.buckets),
        }

    def to_dict(self) -> dict:
        """JSON-ready summary: moments, quantile estimates, buckets."""
        out = {
            "count": self.count,
            "total": round(self.total, 6),
            "mean": round(self.total / self.count, 9) if self.count else 0.0,
            "min": round(self.min, 9) if self.min is not None else None,
            "max": round(self.max, 9) if self.max is not None else None,
            "buckets": {
                f"le_{self.bucket_bound(i):.9g}": self.buckets[i]
                for i in sorted(self.buckets)
            },
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = round(self.quantile(q), 9)
        return out


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run.

    The owning :class:`~repro.obs.telemetry.Telemetry` facade aliases its
    flat ``counters`` dict to :attr:`counters`, so ``obs.incr`` feeds the
    registry at no extra cost.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def merge(self, data: dict) -> None:
        """Fold an :meth:`export` snapshot (a worker's) into this
        registry.  Counters are *not* merged here — they travel on the
        flat telemetry path, which this registry aliases."""
        for name, value in data.get("gauges", {}).items():
            self.gauges.setdefault(name, value)
        for name, exported in data.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram(
                    exported.get("base", BASE)
                )
            histogram.merge(exported)

    def export(self) -> dict:
        """Pickle-friendly snapshot a worker ships to the parent."""
        return {
            "gauges": dict(self.gauges),
            "histograms": {
                name: h.export() for name, h in self.histograms.items()
            },
        }

    def to_dict(self) -> dict:
        """JSON-ready form: gauges and histogram summaries."""
        return {
            "gauges": {
                name: round(value, 9)
                for name, value in sorted(self.gauges.items())
            },
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
        }

    def summaries(self) -> List[Tuple[str, dict]]:
        """Histogram summaries, sorted by total time descending."""
        return sorted(
            ((name, h.to_dict()) for name, h in self.histograms.items()),
            key=lambda item: -item[1]["total"],
        )
