"""A metrics registry: counters, gauges, and log-bucketed histograms.

Counters answer "how many", gauges answer "how much right now", and the
histograms answer the distribution questions flat counters cannot —
solver-query latency, obligation wall time, worker queue wait.  The
registry is deliberately tiny:

* **cheap when off** — hot call sites go through the module-level
  :func:`observe`/:func:`gauge` helpers, which are a single module-global
  read plus a ``None`` check when no metrics-enabled sink is installed
  (the same fast path as ``obs.incr``);
* **process-portable** — :meth:`MetricsRegistry.export` is a plain dict
  of plain values that pickles; the parent folds worker registries in
  with :meth:`MetricsRegistry.merge`;
* **bounded** — a histogram is a fixed family of power-of-two buckets
  over a base resolution, so a million observations cost the same memory
  as ten.

Histogram semantics: bucket ``i`` holds values in
``(BASE * 2**(i-1), BASE * 2**i]`` (bucket 0 holds everything at or
below ``BASE``); quantiles are upper-bound estimates read off the bucket
boundaries, which is the right bias for latency alerting.

Thread-safety: a histogram serializes its own mutations and snapshots
with a per-instance lock, and the registry serializes histogram
*creation*, so a sampler thread snapshotting a live registry races the
observing threads without losing counts or tearing a bucket map.  The
counter fast path stays lock-free — counters are per-sink and merged
under the owner's lock (the serve daemon's telemetry lock), and a plain
dict store is atomic under the GIL.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

#: Histogram base resolution in native units (seconds for latencies):
#: one microsecond.  Everything at or below it lands in bucket 0.
BASE = 1e-6

#: Quantiles reported by summaries and ``to_dict``.
QUANTILES = (0.5, 0.9, 0.99)


def bucket_index(value: float, base: float = BASE) -> int:
    """The log-bucket index of ``value``: 0 for ``value <= base``, else
    the smallest ``i`` with ``value <= base * 2**i``."""
    if value <= base:
        return 0
    index = 0
    bound = base
    while bound < value:
        bound *= 2.0
        index += 1
    return index


class Histogram:
    """A log-bucketed histogram over a fixed base resolution."""

    __slots__ = ("base", "count", "total", "min", "max", "buckets",
                 "_lock")

    def __init__(self, base: float = BASE) -> None:
        self.base = base
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            index = bucket_index(value, self.base)
            self.buckets[index] = self.buckets.get(index, 0) + 1

    def bucket_bound(self, index: int) -> float:
        """Upper (inclusive) value bound of bucket ``index``."""
        return self.base * (2.0 ** index)

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 when empty)."""
        with self._lock:
            count = self.count
            buckets = dict(self.buckets)
        if count == 0:
            return 0.0
        needed = max(1, int(q * count + 0.999999))
        seen = 0
        for index in sorted(buckets):
            seen += buckets[index]
            if seen >= needed:
                return self.bucket_bound(index)
        return self.bucket_bound(max(buckets))

    def merge(self, other: dict) -> None:
        """Fold an exported histogram dict into this one.

        A snapshot exported under a *different* base resolution is
        renormalized rather than folded blindly: each foreign bucket's
        count moves to the local bucket containing the foreign bucket's
        upper bound.  That preserves the histogram's one invariant —
        quantiles are upper-bound estimates — at the cost of some extra
        conservatism, instead of silently mis-bucketing merged worker
        data (a base-1e-6 bucket 3 is 8 µs; the same index under base
        1e-3 is 8 ms — three orders of magnitude of silent skew).
        """
        other_base = other.get("base", self.base)
        with self._lock:
            self.count += other["count"]
            self.total += other["total"]
            for extreme, pick in (("min", min), ("max", max)):
                value = other.get(extreme)
                if value is not None:
                    mine = getattr(self, extreme)
                    setattr(self, extreme,
                            value if mine is None else pick(mine, value))
            renormalize = other_base != self.base
            for index, amount in other["buckets"].items():
                index = int(index)
                if renormalize:
                    bound = other_base * (2.0 ** index)
                    index = bucket_index(bound, self.base)
                self.buckets[index] = self.buckets.get(index, 0) + amount

    def export(self) -> dict:
        """Pickle/JSON-friendly snapshot (mergeable)."""
        with self._lock:
            return {
                "base": self.base,
                "count": self.count,
                "total": self.total,
                "min": self.min,
                "max": self.max,
                "buckets": dict(self.buckets),
            }

    def to_dict(self) -> dict:
        """JSON-ready summary: moments, quantile estimates, buckets."""
        snap = self.export()
        count, total = snap["count"], snap["total"]
        out = {
            "count": count,
            "total": round(total, 6),
            "mean": round(total / count, 9) if count else 0.0,
            "min": (round(snap["min"], 9)
                    if snap["min"] is not None else None),
            "max": (round(snap["max"], 9)
                    if snap["max"] is not None else None),
            "buckets": {
                f"le_{self.bucket_bound(i):.9g}": snap["buckets"][i]
                for i in sorted(snap["buckets"])
            },
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = round(self.quantile(q), 9)
        return out


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run.

    The owning :class:`~repro.obs.telemetry.Telemetry` facade aliases its
    flat ``counters`` dict to :attr:`counters`, so ``obs.incr`` feeds the
    registry at no extra cost.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._create_lock = threading.Lock()

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` (last write wins)."""
        self.gauges[name] = float(value)

    def _histogram(self, name: str, base: float = BASE) -> Histogram:
        """The named histogram, created under the registry lock so two
        racing threads cannot each create one and lose the other's
        observations."""
        histogram = self.histograms.get(name)
        if histogram is None:
            with self._create_lock:
                histogram = self.histograms.get(name)
                if histogram is None:
                    histogram = self.histograms[name] = Histogram(base)
        return histogram

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        self._histogram(name).observe(value)

    def merge(self, data: dict) -> None:
        """Fold an :meth:`export` snapshot (a worker's) into this
        registry.  Counters are *not* merged here — they travel on the
        flat telemetry path, which this registry aliases."""
        for name, value in data.get("gauges", {}).items():
            self.gauges.setdefault(name, value)
        for name, exported in data.get("histograms", {}).items():
            histogram = self._histogram(name,
                                        exported.get("base", BASE))
            histogram.merge(exported)

    def export(self) -> dict:
        """Pickle-friendly snapshot a worker ships to the parent."""
        return {
            "gauges": dict(self.gauges),
            "histograms": {
                name: h.export() for name, h in self.histograms.items()
            },
        }

    def to_dict(self) -> dict:
        """JSON-ready form: gauges and histogram summaries."""
        return {
            "gauges": {
                name: round(value, 9)
                for name, value in sorted(self.gauges.items())
            },
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
        }

    def summaries(self) -> List[Tuple[str, dict]]:
        """Histogram summaries, sorted by total time descending."""
        return sorted(
            ((name, h.to_dict()) for name, h in self.histograms.items()),
            key=lambda item: -item[1]["total"],
        )
