"""The telemetry sink: named counters plus a flat list of timed spans.

Design constraints, in order:

* **cheap when off** — the hot call sites (``Facts.implies`` runs tens of
  thousands of times per benchmark) go through :func:`incr`, which is a
  single module-global read and a ``None`` check when no sink is
  installed;
* **process-portable** — a worker process installs its own sink, runs a
  task, and returns ``(counters, spans)`` for the parent to
  :meth:`Telemetry.merge`; spans are plain frozen dataclasses so they
  pickle;
* **structured output** — :meth:`Telemetry.to_dict` is what
  ``python -m repro verify --profile --json`` embeds, and
  :meth:`Telemetry.render` is the human-readable block.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Span:
    """One timed region: a name, elapsed seconds, sorted attributes."""

    name: str
    seconds: float
    attrs: Tuple[Tuple[str, str], ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready form of the span."""
        return {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "attrs": dict(self.attrs),
        }


class Telemetry:
    """A sink accumulating counters and spans for one run."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.spans: List[Span] = []

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def record(self, span_: Span) -> None:
        """Append one finished span."""
        self.spans.append(span_)

    def merge(self, counters: Dict[str, int],
              spans: Iterable[Span]) -> None:
        """Fold a worker's counters and spans into this sink."""
        for name, amount in counters.items():
            self.incr(name, amount)
        self.spans.extend(spans)

    def stage_seconds(self) -> Dict[str, float]:
        """Total seconds per span name (e.g. plan / search / check)."""
        out: Dict[str, float] = {}
        for span_ in self.spans:
            out[span_.name] = out.get(span_.name, 0.0) + span_.seconds
        return out

    def to_dict(self) -> dict:
        """JSON-ready form: counters, per-stage totals, and raw spans."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "stage_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.stage_seconds().items())
            },
            "spans": [span_.to_dict() for span_ in self.spans],
        }

    def render(self) -> str:
        """Human-readable profile block (counters + stage totals)."""
        lines = ["profile:"]
        stages = self.stage_seconds()
        if stages:
            lines.append("  stage seconds:")
            for name, seconds in sorted(stages.items()):
                lines.append(f"    {name:24s} {seconds:10.4f}")
        if self.counters:
            lines.append("  counters:")
            for name, amount in sorted(self.counters.items()):
                lines.append(f"    {name:32s} {amount:10d}")
        if len(lines) == 1:
            lines.append("  (no events recorded)")
        return "\n".join(lines)


#: The installed sink (one per process; workers install their own).
_ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The currently installed sink, or ``None``."""
    return _ACTIVE


def incr(name: str, amount: int = 1) -> None:
    """Count an event on the active sink; no-op when none is installed."""
    sink = _ACTIVE
    if sink is not None:
        sink.counters[name] = sink.counters.get(name, 0) + amount


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Time the enclosed block as a span on the active sink.

    When no sink is installed the block runs untimed at no cost.
    """
    sink = _ACTIVE
    if sink is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        sink.record(Span(
            name,
            time.perf_counter() - start,
            tuple(sorted((key, str(value)) for key, value in attrs.items())),
        ))


@contextmanager
def use(sink: Telemetry) -> Iterator[Telemetry]:
    """Install ``sink`` for the duration of the block (re-entrant)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = sink
    try:
        yield sink
    finally:
        _ACTIVE = previous
