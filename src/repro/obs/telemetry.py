"""The telemetry sink: the compatibility facade over the obs subsystem.

Historically this module *was* the whole observability layer — named
counters plus a flat list of timed spans.  It is now the front door to
the real subsystem (:mod:`repro.obs.trace`, :mod:`repro.obs.metrics`,
:mod:`repro.obs.events`): a :class:`Telemetry` still exposes
``counters``/``spans``/``incr``/``record``/``merge``/``to_dict``/
``render`` exactly as before, and optionally hosts a hierarchical
:class:`~repro.obs.trace.Tracer`, a
:class:`~repro.obs.metrics.MetricsRegistry` and an
:class:`~repro.obs.events.EventLog` that the same instrumented call
sites feed when enabled.

Design constraints, in order:

* **cheap when off** — the hot call sites (``Facts.implies`` runs tens of
  thousands of times per benchmark) go through :func:`incr`, which is a
  single module-global read and a ``None`` check when no sink is
  installed; :func:`observe`, :func:`gauge` and :func:`event` follow the
  same fast path and additionally no-op when their component is off;
* **bounded** — the raw span list is capped: per-name totals stay exact
  (maintained incrementally), but only the ``max_spans`` slowest raw
  spans are retained, so large parallel runs cannot grow the sink
  without bound;
* **process-portable** — a worker installs its own sink, runs a task,
  and ships :meth:`Telemetry.export` home; the parent folds it in with
  :meth:`Telemetry.merge_export`, normalizing worker clock offsets.
  The legacy ``merge(counters, spans)`` form still works;
* **structured output** — :meth:`Telemetry.to_dict` is what
  ``python -m repro verify --profile --json`` embeds (now with optional
  ``trace``/``metrics``/``events`` sections), and
  :meth:`Telemetry.render` is the human-readable block, largest
  contributors first.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .events import EventLog
from .metrics import MetricsRegistry
from .trace import Tracer, new_run_id


def _default_max_spans() -> int:
    """The raw-span retention cap (``REPRO_PROFILE_MAX_SPANS``)."""
    try:
        return max(1, int(os.environ.get("REPRO_PROFILE_MAX_SPANS", 256)))
    except ValueError:
        return 256


@dataclass(frozen=True)
class Span:
    """One timed region: a name, elapsed seconds, sorted attributes."""

    name: str
    seconds: float
    attrs: Tuple[Tuple[str, str], ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready form of the span."""
        return {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "attrs": dict(self.attrs),
        }


class Telemetry:
    """A sink accumulating counters and spans for one run.

    With ``trace``/``metrics``/``events`` enabled the sink additionally
    hosts the corresponding subsystem component; all three default off,
    so a plain ``Telemetry()`` behaves exactly as it always has.
    """

    def __init__(self, *, trace: bool = False, metrics: bool = False,
                 events: bool = False, run_id: Optional[str] = None,
                 worker: str = "main",
                 max_spans: Optional[int] = None,
                 tags: Optional[Dict[str, object]] = None) -> None:
        if run_id is None and (trace or events):
            run_id = new_run_id()
        self.run_id = run_id
        self.worker = worker
        #: Request-context tags (e.g. the serve daemon's ``submit_id``)
        #: merged into every span's attrs and every event's fields, so
        #: one submission's work is traceable end to end — through
        #: coalesced verify groups and across the worker-pool boundary
        #: (:mod:`repro.prover.parallel` ships tags to its workers).
        #: Explicit attrs/fields win on key collision.  Empty by
        #: default, so the hot path pays only a falsy check.
        self.tags: Dict[str, object] = dict(tags) if tags else {}
        self.metrics: Optional[MetricsRegistry] = \
            MetricsRegistry() if metrics else None
        # Alias the registry's counters so ``incr`` feeds both at once.
        self.counters: Dict[str, int] = (
            self.metrics.counters if self.metrics is not None else {}
        )
        self.tracer: Optional[Tracer] = (
            Tracer(run_id=run_id, worker=worker) if trace else None
        )
        self.events: Optional[EventLog] = (
            EventLog(run_id=run_id, worker=worker) if events else None
        )
        self.spans: List[Span] = []
        self.max_spans = (max_spans if max_spans is not None
                          else _default_max_spans())
        self._span_totals: Dict[str, List[float]] = {}  # name → [n, secs]
        self._spans_dropped = 0

    def incr(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def _retain(self, span_: Span) -> None:
        """Keep ``span_`` among the retained raw spans, evicting the
        cheapest one once the cap is exceeded."""
        self.spans.append(span_)
        if len(self.spans) > self.max_spans:
            cheapest = min(range(len(self.spans)),
                           key=lambda i: self.spans[i].seconds)
            del self.spans[cheapest]
            self._spans_dropped += 1

    def record(self, span_: Span) -> None:
        """Append one finished span (exact totals, capped raw list)."""
        total = self._span_totals.get(span_.name)
        if total is None:
            self._span_totals[span_.name] = [1, span_.seconds]
        else:
            total[0] += 1
            total[1] += span_.seconds
        self._retain(span_)

    def merge(self, counters: Dict[str, int],
              spans: Iterable[Span]) -> None:
        """Fold a worker's counters and spans into this sink."""
        for name, amount in counters.items():
            self.incr(name, amount)
        for span_ in spans:
            self.record(span_)

    # -- process portability -------------------------------------------------

    def export(self) -> dict:
        """Pickle-friendly snapshot of everything a worker collected."""
        out = {
            "counters": dict(self.counters),
            "spans": list(self.spans),
            "span_totals": {name: tuple(total) for name, total
                            in self._span_totals.items()},
            "spans_dropped": self._spans_dropped,
            "worker": self.worker,
        }
        if self.tracer is not None:
            out["trace"] = self.tracer.export()
        if self.metrics is not None:
            out["metrics"] = self.metrics.export()
        if self.events is not None:
            out["events"] = self.events.export()
        return out

    def merge_export(self, data: dict) -> None:
        """Fold a worker's :meth:`export` snapshot into this sink, with
        clock-offset normalization for trace spans and events."""
        for name, amount in data.get("counters", {}).items():
            self.incr(name, amount)
        for name, (count, seconds) in data.get("span_totals",
                                               {}).items():
            total = self._span_totals.get(name)
            if total is None:
                self._span_totals[name] = [count, seconds]
            else:
                total[0] += count
                total[1] += seconds
        for span_ in data.get("spans", ()):
            self._retain(span_)
        self._spans_dropped += data.get("spans_dropped", 0)
        trace = data.get("trace")
        if trace is not None and self.tracer is not None:
            self.tracer.merge(trace["worker"], trace["epoch_wall"],
                              trace["spans"])
        metrics = data.get("metrics")
        if metrics is not None and self.metrics is not None:
            self.metrics.merge(metrics)
        events = data.get("events")
        if events is not None and self.events is not None:
            self.events.merge(events["epoch_wall"], events["events"])

    # -- output --------------------------------------------------------------

    def stage_seconds(self) -> Dict[str, float]:
        """Total seconds per span name (e.g. plan / search / check).

        Exact even after raw-span eviction: totals are maintained
        incrementally as spans are recorded."""
        return {name: total[1]
                for name, total in self._span_totals.items()}

    def span_counts(self) -> Dict[str, int]:
        """Recorded span count per name (exact, like the totals)."""
        return {name: int(total[0])
                for name, total in self._span_totals.items()}

    def to_dict(self) -> dict:
        """JSON-ready form: counters, per-stage totals, and the retained
        (top-``max_spans`` slowest) raw spans, slowest first."""
        retained = sorted(self.spans, key=lambda s: -s.seconds)
        out = {
            "counters": dict(sorted(self.counters.items())),
            "stage_seconds": {
                name: round(seconds, 6)
                for name, seconds in sorted(self.stage_seconds().items())
            },
            "spans": [span_.to_dict() for span_ in retained],
            "spans_total": len(retained) + self._spans_dropped,
            "spans_dropped": self._spans_dropped,
        }
        if self.run_id is not None:
            out["run_id"] = self.run_id
        if self.tracer is not None:
            out["trace"] = self.tracer.to_dict()
        if self.metrics is not None:
            out["metrics"] = self.metrics.to_dict()
        if self.events is not None:
            out["events"] = self.events.to_dicts()
        return out

    def render(self) -> str:
        """Human-readable profile block (counters + stage totals),
        largest contributors first."""
        lines = ["profile:"]
        stages = self.stage_seconds()
        if stages:
            lines.append("  stage seconds:")
            for name, seconds in sorted(stages.items(),
                                        key=lambda kv: (-kv[1], kv[0])):
                lines.append(f"    {name:24s} {seconds:10.4f}")
        if self.counters:
            lines.append("  counters:")
            for name, amount in sorted(self.counters.items(),
                                       key=lambda kv: (-kv[1], kv[0])):
                lines.append(f"    {name:32s} {amount:10d}")
        if len(lines) == 1:
            lines.append("  (no events recorded)")
        return "\n".join(lines)


#: The installed sink (one per process; workers install their own).
_ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The currently installed sink, or ``None``."""
    return _ACTIVE


def metrics_active() -> Optional[MetricsRegistry]:
    """The active sink's metrics registry, or ``None`` — the fast path
    hot call sites check before paying for a clock read."""
    sink = _ACTIVE
    return None if sink is None else sink.metrics


def incr(name: str, amount: int = 1) -> None:
    """Count an event on the active sink; no-op when none is installed."""
    sink = _ACTIVE
    if sink is not None:
        sink.counters[name] = sink.counters.get(name, 0) + amount


def observe(name: str, value: float) -> None:
    """Record a histogram observation; no-op unless the active sink has
    metrics enabled."""
    sink = _ACTIVE
    if sink is not None and sink.metrics is not None:
        sink.metrics.observe(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge; no-op unless the active sink has metrics enabled."""
    sink = _ACTIVE
    if sink is not None and sink.metrics is not None:
        sink.metrics.gauge(name, value)


def event(kind: str, /, **fields: object) -> None:
    """Append a flight-recorder event; no-op unless the active sink has
    an event log (``kind`` is positional-only, so events may carry a
    ``kind`` field of their own)."""
    sink = _ACTIVE
    if sink is not None and sink.events is not None:
        if sink.tags:
            fields = {**sink.tags, **fields}
        sink.events.emit(kind, **fields)


def flush_events() -> int:
    """Flush the active sink's event log to its bound JSONL file, if
    any; returns how many events were written."""
    sink = _ACTIVE
    if sink is not None and sink.events is not None:
        return sink.events.flush()
    return 0


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Time the enclosed block as a span on the active sink.

    When no sink is installed the block runs untimed at no cost.  The
    sink is captured at entry, so a mid-block sink swap (a nested
    :func:`use`) cannot split or lose the span; with tracing enabled the
    span also lands in the hierarchical trace, parented on the context's
    current span.
    """
    sink = _ACTIVE
    if sink is None:
        yield
        return
    if sink.tags:
        attrs = {**sink.tags, **attrs}
    frozen = tuple(sorted(
        (key, str(value)) for key, value in attrs.items()
    ))
    tracer = sink.tracer
    open_span = tracer.push(name, frozen) if tracer is not None else None
    start = time.perf_counter()
    try:
        yield
    finally:
        sink.record(Span(name, time.perf_counter() - start, frozen))
        if tracer is not None:
            tracer.pop(open_span)


@contextmanager
def use(sink: Telemetry) -> Iterator[Telemetry]:
    """Install ``sink`` for the duration of the block (re-entrant)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = sink
    try:
        yield sink
    finally:
        _ACTIVE = previous
