"""Observability for the prover stack and runtime: counters, spans,
hierarchical traces, metrics, and a flight-recorder event log.

The prover, tactics, solver and symbolic evaluator report events here —
solver entailment calls, enumerated symbolic paths, proof-store hits and
misses, syntactic-skip rates — the engine wraps each pipeline stage
(plan / search / check) in a timed span, and the runtime's supervisor,
monitor and fault injector append structured events.  Everything is a
no-op unless a :class:`Telemetry` sink is installed with :func:`use`, so
the default verification path pays only a module-global ``None`` check
per event; tracing, metrics and the event log are additionally off
unless the sink enables them.

Typical use::

    from repro import obs

    with obs.use(obs.Telemetry()) as telemetry:
        verifier.verify_all()
    print(telemetry.render())

A fully instrumented run enables the subsystems explicitly::

    sink = obs.Telemetry(trace=True, metrics=True, events=True)
    with obs.use(sink):
        verifier.verify_all(jobs=4)
    obs.export.write_chrome_trace("t.json", sink.to_dict())

Worker processes install their own sink and ship
:meth:`Telemetry.export` back to the parent, which folds it in with
:meth:`Telemetry.merge_export` (the legacy ``counters``/``spans`` pair
via :meth:`Telemetry.merge` still works).  See ``docs/observability.md``
for the architecture, the event schema, and the ``repro report``
walkthrough.
"""

from . import export
from .events import Event, EventLog, read_jsonl
from .metrics import Histogram, MetricsRegistry
from .timeseries import Sampler, TimeSeries, Window, registry_snapshot
from .telemetry import (
    Span,
    Telemetry,
    active,
    event,
    flush_events,
    gauge,
    incr,
    metrics_active,
    observe,
    span,
    use,
)
from .trace import Tracer, TraceSpan, new_run_id

__all__ = [
    "Event",
    "EventLog",
    "Histogram",
    "MetricsRegistry",
    "Sampler",
    "Span",
    "Telemetry",
    "TimeSeries",
    "TraceSpan",
    "Tracer",
    "Window",
    "active",
    "event",
    "export",
    "flush_events",
    "gauge",
    "incr",
    "metrics_active",
    "new_run_id",
    "observe",
    "read_jsonl",
    "registry_snapshot",
    "span",
    "use",
]
