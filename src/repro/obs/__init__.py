"""Observability for the prover stack: counters and span timings.

The prover, tactics, solver and symbolic evaluator report events here —
solver entailment calls, enumerated symbolic paths, proof-store hits and
misses, syntactic-skip rates — and the engine wraps each pipeline stage
(plan / search / check) in a timed span.  Everything is a no-op unless a
:class:`Telemetry` sink is installed with :func:`use`, so the default
verification path pays only a module-global ``None`` check per event.

Typical use::

    from repro import obs

    with obs.use(obs.Telemetry()) as telemetry:
        verifier.verify_all()
    print(telemetry.render())

Worker processes install their own sink and ship ``counters``/``spans``
back to the parent, which folds them in with :meth:`Telemetry.merge`.
"""

from .telemetry import Span, Telemetry, active, incr, span, use

__all__ = [
    "Span",
    "Telemetry",
    "active",
    "incr",
    "span",
    "use",
]
