"""Hierarchical tracing: spans with identity, ancestry and a timeline.

The flat :class:`~repro.obs.telemetry.Span` answers "how much time went
into stage X overall"; this module answers the questions a slow or flaky
run actually raises — *which* obligation was slowest, what each worker
was doing *when*, and how the stages nest inside one another:

* every :class:`TraceSpan` carries a stable ``span_id`` and the
  ``parent_id`` of the span it ran inside, so exports can rebuild the
  tree;
* spans record a wall-clock **start offset** from the run epoch (not
  just a duration), so a timeline view lines the workers up;
* the *current* span is tracked in a :mod:`contextvars` variable — the
  ``engine`` → ``pipeline`` → ``tactics`` → ``solver`` call chain nests
  correctly without threading a span argument through every layer;
* a :class:`Tracer` is pickle-friendly to merge: a worker process ships
  ``Tracer.export()`` home and the parent's :meth:`Tracer.merge`
  re-offsets every span by the difference of the two epochs (both read
  the same machine wall clock), so one coherent parent timeline results.

Span identifiers embed the worker name and a per-process serial, so ids
stay unique after merging trees from many workers and pool generations.
"""

from __future__ import annotations

import itertools
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

#: The span currently open in this task context, as ``(tracer, span_id)``.
#: Tagging with the tracer keeps nesting honest across mid-run sink
#: swaps: a span opened under a different tracer is never adopted as a
#: parent.
_CURRENT: ContextVar[Optional[Tuple["Tracer", str]]] = ContextVar(
    "repro_obs_current_span", default=None
)

#: Per-process tracer serials (reset after fork, keyed by pid) — they
#: make span-id prefixes unique when one process hosts many tracers.
_SERIALS = itertools.count(1)
_SERIALS_PID = os.getpid()


def _next_serial() -> int:
    """The next tracer serial for this process (fork-aware)."""
    global _SERIALS, _SERIALS_PID
    pid = os.getpid()
    if pid != _SERIALS_PID:
        _SERIALS = itertools.count(1)
        _SERIALS_PID = pid
    return next(_SERIALS)


def new_run_id() -> str:
    """A fresh random run identifier (hex, collision-proof in practice)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceSpan:
    """One finished span in the hierarchical trace.

    ``start`` is seconds since the owning run's epoch; ``worker`` names
    the process-level track the span ran on (``main`` or ``w<pid>``).
    """

    name: str
    span_id: str
    parent_id: Optional[str]
    start: float
    seconds: float
    worker: str
    attrs: Tuple[Tuple[str, str], ...] = ()

    @property
    def end(self) -> float:
        """Offset of the span's end from the run epoch."""
        return self.start + self.seconds

    def to_dict(self) -> dict:
        """JSON-ready form of the span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": round(self.start, 6),
            "seconds": round(self.seconds, 6),
            "worker": self.worker,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpan":
        """Rebuild a span from its :meth:`to_dict` form."""
        return cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=float(data["start"]),
            seconds=float(data["seconds"]),
            worker=data.get("worker", "main"),
            attrs=tuple(sorted(
                (str(k), str(v))
                for k, v in (data.get("attrs") or {}).items()
            )),
        )


class _OpenSpan:
    """Bookkeeping for a span that has started but not finished."""

    __slots__ = ("name", "span_id", "parent_id", "start", "attrs", "token")

    def __init__(self, name, span_id, parent_id, start, attrs, token):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.attrs = attrs
        self.token = token


class Tracer:
    """Collects one process's span tree for a run.

    The parent process's tracer owns the run epoch; worker tracers are
    merged into it with clock-offset normalization (both epochs are
    ``time.time()`` readings of the same machine clock).
    """

    def __init__(self, run_id: Optional[str] = None,
                 worker: str = "main") -> None:
        self.run_id = run_id or new_run_id()
        self.worker = worker
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        self._prefix = f"{worker}.{_next_serial()}"
        self._ids = itertools.count(1)
        self.spans: List[TraceSpan] = []

    # -- recording -----------------------------------------------------------

    def push(self, name: str,
             attrs: Tuple[Tuple[str, str], ...] = ()) -> _OpenSpan:
        """Open a span: assign its id, adopt the context's current span
        (of *this* tracer) as parent, and become current."""
        current = _CURRENT.get()
        parent_id = current[1] if current is not None \
            and current[0] is self else None
        span_id = f"{self._prefix}.{next(self._ids)}"
        open_span = _OpenSpan(
            name, span_id, parent_id,
            time.perf_counter() - self._epoch_perf,
            attrs, None,
        )
        open_span.token = _CURRENT.set((self, span_id))
        return open_span

    def pop(self, open_span: _OpenSpan,
            seconds: Optional[float] = None) -> TraceSpan:
        """Close a span, restore the previous current span, and record
        the finished :class:`TraceSpan`."""
        _CURRENT.reset(open_span.token)
        if seconds is None:
            seconds = (time.perf_counter() - self._epoch_perf
                       - open_span.start)
        finished = TraceSpan(
            name=open_span.name,
            span_id=open_span.span_id,
            parent_id=open_span.parent_id,
            start=open_span.start,
            seconds=max(0.0, seconds),
            worker=self.worker,
            attrs=open_span.attrs,
        )
        self.spans.append(finished)
        return finished

    # -- merging -------------------------------------------------------------

    def merge(self, worker: str, epoch_wall: float,
              spans: Iterable[TraceSpan]) -> None:
        """Fold a worker tracer's spans into this timeline, shifting
        every start by the difference of the two wall-clock epochs."""
        offset = epoch_wall - self.epoch_wall
        for span_ in spans:
            self.spans.append(TraceSpan(
                name=span_.name,
                span_id=span_.span_id,
                parent_id=span_.parent_id,
                start=span_.start + offset,
                seconds=span_.seconds,
                worker=span_.worker if span_.worker != "main" else worker,
                attrs=span_.attrs,
            ))

    def export(self) -> dict:
        """Pickle-friendly snapshot a worker ships to the parent."""
        return {
            "worker": self.worker,
            "epoch_wall": self.epoch_wall,
            "spans": list(self.spans),
        }

    # -- output --------------------------------------------------------------

    def workers(self) -> List[str]:
        """The distinct worker tracks, parent first, then sorted."""
        seen = {span_.worker for span_ in self.spans}
        ordered = [self.worker] if self.worker in seen else []
        ordered.extend(sorted(seen - {self.worker}))
        return ordered

    def span_index(self) -> Dict[str, TraceSpan]:
        """Spans by id (merged trees included)."""
        return {span_.span_id: span_ for span_ in self.spans}

    def to_dict(self) -> dict:
        """JSON-ready form: run identity, epoch, and every span."""
        return {
            "run_id": self.run_id,
            "worker": self.worker,
            "epoch_wall": round(self.epoch_wall, 6),
            "spans": [span_.to_dict() for span_ in self.spans],
        }
