"""Exporters: Chrome trace-event JSON and the self-contained text report.

Two consumers, two formats:

* :func:`chrome_trace` turns a hierarchical trace (the
  ``telemetry["trace"]`` section of a ``repro verify --json`` payload)
  into the Chrome trace-event format — load the file at
  ``ui.perfetto.dev`` (or ``chrome://tracing``) and every worker appears
  as its own track, spans nested as they ran;
* :func:`render_report` turns a whole run payload into the text report
  behind ``repro report <run.json>``: slowest obligations, per-stage and
  per-worker utilization, histogram summaries, and cache statistics.

Both operate on plain JSON dicts (not live objects), so they work
equally on an in-process :meth:`Telemetry.to_dict` and on a ``run.json``
loaded back from disk.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

#: How many slowest obligations the text report lists.
REPORT_TOP_OBLIGATIONS = 10


def _telemetry_of(payload: dict) -> dict:
    """The telemetry section of a run payload (or the payload itself,
    when handed a bare telemetry dict)."""
    if "telemetry" in payload:
        return payload["telemetry"]
    return payload


def chrome_trace(trace: dict) -> dict:
    """Chrome trace-event JSON for one hierarchical trace dict.

    One process, one thread ("track") per worker; every span becomes a
    complete ("X") event with microsecond timestamps, its identity and
    ancestry preserved in ``args``.
    """
    spans = trace.get("spans", [])
    workers: List[str] = []
    for span in spans:
        worker = span.get("worker", "main")
        if worker not in workers:
            workers.append(worker)
    main = trace.get("worker", "main")
    workers.sort(key=lambda w: (w != main, w))
    tids = {worker: index for index, worker in enumerate(workers)}
    events: List[dict] = [{
        "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
        "args": {"name": f"repro run {trace.get('run_id', '?')}"},
    }]
    for worker, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({
            "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
            "args": {"name": worker},
        })
    for span in spans:
        args = dict(span.get("attrs", {}))
        args["span_id"] = span["span_id"]
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        events.append({
            "ph": "X",
            "pid": 0,
            "tid": tids[span.get("worker", "main")],
            "name": span["name"],
            "cat": "repro",
            "ts": round(span["start"] * 1e6, 3),
            "dur": round(span["seconds"] * 1e6, 3),
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run_id": trace.get("run_id")},
    }


def write_chrome_trace(path: str, payload: dict) -> None:
    """Write the Chrome trace for a run payload (or telemetry dict, or
    bare trace dict) to ``path``."""
    telemetry = _telemetry_of(payload)
    trace = telemetry.get("trace", telemetry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(trace), handle, indent=1)
        handle.write("\n")


# ---------------------------------------------------------------------------
# The text report
# ---------------------------------------------------------------------------


def _obligation_rows(telemetry: dict) -> List[dict]:
    """Slowest-obligation rows: hierarchical spans preferred, flat spans
    as the fallback, slowest first."""
    trace = telemetry.get("trace")
    spans: Sequence[dict]
    if trace is not None:
        spans = [s for s in trace.get("spans", [])
                 if s["name"] == "obligation"]
    else:
        spans = [s for s in telemetry.get("spans", [])
                 if s["name"] == "obligation"]
    rows = []
    for span in spans:
        attrs = span.get("attrs", {})
        where = attrs.get("part", "")
        rows.append({
            "property": attrs.get("property", "?"),
            "kind": attrs.get("kind", "?"),
            "part": where,
            "worker": span.get("worker", "main"),
            "seconds": span["seconds"],
        })
    rows.sort(key=lambda r: -r["seconds"])
    return rows


def _union_seconds(intervals: List[tuple]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    total = 0.0
    edge = float("-inf")
    for start, end in sorted(intervals):
        if end <= edge:
            continue
        total += end - max(start, edge)
        edge = end
    return total


def _worker_rows(trace: dict) -> List[dict]:
    """Per-worker busy/utilization rows from a hierarchical trace.

    A worker's *busy* time is the interval union of its root spans
    (spans whose parent is absent from the trace — the tops of each
    shipped tree; a union, because per-worker one-off work such as the
    symbolic step build is captured as its own root overlapping the
    task that triggered it); utilization is busy time over the whole
    run window."""
    spans = trace.get("spans", [])
    if not spans:
        return []
    known = {span["span_id"] for span in spans}
    window_start = min(span["start"] for span in spans)
    window_end = max(span["start"] + span["seconds"] for span in spans)
    window = max(window_end - window_start, 1e-9)
    roots: Dict[str, List[tuple]] = {}
    counts: Dict[str, int] = {}
    for span in spans:
        worker = span.get("worker", "main")
        counts[worker] = counts.get(worker, 0) + 1
        if span.get("parent_id") not in known:
            roots.setdefault(worker, []).append(
                (span["start"], span["start"] + span["seconds"])
            )
    busy = {worker: _union_seconds(intervals)
            for worker, intervals in roots.items()}
    return [{
        "worker": worker,
        "spans": counts[worker],
        "busy": busy.get(worker, 0.0),
        "utilization": busy.get(worker, 0.0) / window,
    } for worker in sorted(counts, key=lambda w: (w != trace.get(
        "worker", "main"), w))]


def _cache_rows(counters: Dict[str, int]) -> List[dict]:
    """Hit/miss/ratio rows for every ``<name>.hit``/``<name>.miss``
    counter pair, plus standalone ``*.size`` gauges-as-counters."""
    prefixes = sorted({
        name[:-len(".hit")] for name in counters if name.endswith(".hit")
    } | {
        name[:-len(".miss")] for name in counters
        if name.endswith(".miss")
    })
    rows = []
    for prefix in prefixes:
        hits = counters.get(f"{prefix}.hit", 0)
        misses = counters.get(f"{prefix}.miss", 0)
        total = hits + misses
        rows.append({
            "cache": prefix,
            "hits": hits,
            "misses": misses,
            "ratio": hits / total if total else 0.0,
            "size": counters.get(f"{prefix}.size"),
        })
    return rows


def render_report(payload: dict) -> str:
    """The self-contained text report for one run payload."""
    telemetry = _telemetry_of(payload)
    lines: List[str] = []
    program = payload.get("program")
    title = "run report"
    if program:
        title += f" — {program}"
    if telemetry.get("run_id"):
        title += f" (run {telemetry['run_id']})"
    lines.append(title)
    if "wall_seconds" in payload:
        lines.append(
            f"wall {payload['wall_seconds']:.3f}s, cpu-side total "
            f"{payload.get('total_seconds', 0.0):.3f}s, "
            f"all_proved={payload.get('all_proved')}"
        )

    obligations = _obligation_rows(telemetry)
    lines.append("")
    lines.append(f"slowest obligations (top {REPORT_TOP_OBLIGATIONS} of "
                 f"{len(obligations)}):")
    if obligations:
        for row in obligations[:REPORT_TOP_OBLIGATIONS]:
            where = f" {row['part']}" if row["part"] else ""
            lines.append(
                f"  {row['seconds']:9.4f}s  {row['property']}"
                f"{where}  [{row['kind']}, {row['worker']}]"
            )
    else:
        lines.append("  (no obligation spans recorded)")

    stages = telemetry.get("stage_seconds", {})
    if stages:
        lines.append("")
        lines.append("stage seconds:")
        for name, seconds in sorted(stages.items(),
                                    key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {name:24s} {seconds:10.4f}")

    trace = telemetry.get("trace")
    if trace is not None:
        rows = _worker_rows(trace)
        if rows:
            lines.append("")
            lines.append("worker utilization:")
            lines.append(f"  {'worker':<12} {'spans':>6} {'busy(s)':>9} "
                         f"{'util':>6}")
            for row in rows:
                lines.append(
                    f"  {row['worker']:<12} {row['spans']:>6} "
                    f"{row['busy']:>9.4f} "
                    f"{row['utilization'] * 100:>5.1f}%"
                )

    metrics = telemetry.get("metrics")
    if metrics and metrics.get("histograms"):
        lines.append("")
        lines.append("histograms:")
        lines.append(
            f"  {'metric':<28} {'count':>7} {'mean':>10} {'p50':>10} "
            f"{'p90':>10} {'p99':>10} {'max':>10}"
        )
        ordered = sorted(metrics["histograms"].items(),
                         key=lambda kv: -kv[1].get("total", 0.0))
        for name, summary in ordered:
            lines.append(
                f"  {name:<28} {summary['count']:>7} "
                f"{summary['mean']:>10.6f} {summary['p50']:>10.6f} "
                f"{summary['p90']:>10.6f} {summary['p99']:>10.6f} "
                f"{summary['max'] or 0.0:>10.6f}"
            )
    if metrics and metrics.get("gauges"):
        lines.append("")
        lines.append("gauges:")
        for name, value in sorted(metrics["gauges"].items()):
            lines.append(f"  {name:<36} {value:>12.4f}")

    cache_rows = _cache_rows(telemetry.get("counters", {}))
    if cache_rows:
        lines.append("")
        lines.append("cache statistics:")
        lines.append(f"  {'cache':<24} {'hits':>9} {'misses':>9} "
                     f"{'hit%':>6}")
        for row in cache_rows:
            lines.append(
                f"  {row['cache']:<24} {row['hits']:>9} "
                f"{row['misses']:>9} {row['ratio'] * 100:>5.1f}%"
            )

    events = telemetry.get("events")
    if events:
        by_kind: Dict[str, int] = {}
        for event in events:
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        lines.append("")
        lines.append(f"events ({len(events)} total):")
        for kind, count in sorted(by_kind.items(),
                                  key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {kind:<32} {count:>7}")
    return "\n".join(lines)


def load_run(path: str) -> dict:
    """Load a ``repro verify --json`` payload (or bare telemetry dict)
    from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def validate_trace_tree(trace: dict) -> List[str]:
    """Structural complaints about a trace dict: orphaned parents and
    children sticking out of their parent's interval.  Empty means the
    tree is well-formed (used by tests and ``repro report``)."""
    complaints: List[str] = []
    spans = trace.get("spans", [])
    index = {span["span_id"]: span for span in spans}
    slack = 1e-4  # rounding slack: offsets are serialized at 1µs grain
    for span in spans:
        parent_id: Optional[str] = span.get("parent_id")
        if parent_id is None:
            continue
        parent = index.get(parent_id)
        if parent is None:
            complaints.append(
                f"span {span['span_id']} has unknown parent {parent_id}"
            )
            continue
        if span["start"] < parent["start"] - slack or (
                span["start"] + span["seconds"]
                > parent["start"] + parent["seconds"] + slack):
            complaints.append(
                f"span {span['span_id']} [{span['start']:.6f}, "
                f"{span['start'] + span['seconds']:.6f}] outside parent "
                f"{parent_id} [{parent['start']:.6f}, "
                f"{parent['start'] + parent['seconds']:.6f}]"
            )
    return complaints
