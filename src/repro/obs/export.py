"""Exporters: Chrome traces, the text report, Prometheus exposition.

Three consumers, three formats:

* :func:`chrome_trace` turns a hierarchical trace (the
  ``telemetry["trace"]`` section of a ``repro verify --json`` payload)
  into the Chrome trace-event format — load the file at
  ``ui.perfetto.dev`` (or ``chrome://tracing``) and every worker appears
  as its own track, spans nested as they ran;
* :func:`render_report` turns a whole run payload into the text report
  behind ``repro report <run.json>``: slowest obligations, per-stage and
  per-worker utilization, histogram summaries, and cache statistics —
  plus, for a serve daemon's stats payload, the live-operations view
  (recent per-submission latency breakdowns and windowed rates);
* :func:`prometheus_exposition` renders a metrics snapshot (counters,
  gauges, log-bucketed histograms) in the Prometheus text exposition
  format, which is what the serve daemon's ``metrics`` frame carries so
  any scraper — or ``curl`` piped through the client — can ingest it.
  :func:`validate_exposition` is the structural lint the CI smoke job
  and the tests run over generated output.

All of them operate on plain JSON dicts (not live objects), so they
work equally on an in-process :meth:`Telemetry.to_dict` and on a
``run.json`` loaded back from disk.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional, Sequence

#: How many slowest obligations the text report lists.
REPORT_TOP_OBLIGATIONS = 10


def _telemetry_of(payload: dict) -> dict:
    """The telemetry section of a run payload (or the payload itself,
    when handed a bare telemetry dict)."""
    if "telemetry" in payload:
        return payload["telemetry"]
    return payload


def chrome_trace(trace: dict) -> dict:
    """Chrome trace-event JSON for one hierarchical trace dict.

    One process, one thread ("track") per worker; every span becomes a
    complete ("X") event with microsecond timestamps, its identity and
    ancestry preserved in ``args``.
    """
    spans = trace.get("spans", [])
    workers: List[str] = []
    for span in spans:
        worker = span.get("worker", "main")
        if worker not in workers:
            workers.append(worker)
    main = trace.get("worker", "main")
    workers.sort(key=lambda w: (w != main, w))
    tids = {worker: index for index, worker in enumerate(workers)}
    events: List[dict] = [{
        "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
        "args": {"name": f"repro run {trace.get('run_id', '?')}"},
    }]
    for worker, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({
            "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
            "args": {"name": worker},
        })
    for span in spans:
        args = dict(span.get("attrs", {}))
        args["span_id"] = span["span_id"]
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        events.append({
            "ph": "X",
            "pid": 0,
            "tid": tids[span.get("worker", "main")],
            "name": span["name"],
            "cat": "repro",
            "ts": round(span["start"] * 1e6, 3),
            "dur": round(span["seconds"] * 1e6, 3),
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run_id": trace.get("run_id")},
    }


def write_chrome_trace(path: str, payload: dict) -> None:
    """Write the Chrome trace for a run payload (or telemetry dict, or
    bare trace dict) to ``path``."""
    telemetry = _telemetry_of(payload)
    trace = telemetry.get("trace", telemetry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(trace), handle, indent=1)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

#: Metric names must match this after sanitation (colons are legal in
#: the format but reserved for recording rules, so we never emit them).
_PROM_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One sample line: name, optional {labels}, a number (incl. +Inf/NaN).
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"([-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$"
)


def _prom_name(name: str, prefix: str = "repro") -> str:
    """A dotted metric name in Prometheus form: prefixed, with every
    run of non-alphanumeric characters collapsed to one underscore."""
    sanitized = re.sub(r"[^a-zA-Z0-9]+", "_", name).strip("_")
    out = f"{prefix}_{sanitized}" if prefix else sanitized
    if not _PROM_NAME.match(out):
        out = f"{prefix}_invalid_metric" if prefix else "invalid_metric"
    return out


def _prom_number(value: float) -> str:
    """A sample value in exposition form (integers stay integral)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_exposition(snapshot: dict, prefix: str = "repro") -> str:
    """Render a metrics snapshot in the Prometheus text format.

    ``snapshot`` is the :func:`repro.obs.timeseries.registry_snapshot`
    shape — ``counters`` (monotonic totals, exposed with the conventional
    ``_total`` suffix), ``gauges``, and ``histograms`` (the
    :meth:`~repro.obs.metrics.Histogram.export` shape, whose sparse
    log-spaced buckets become the cumulative ``le`` series Prometheus
    expects, closed by the mandatory ``+Inf`` bucket).

    The output is deterministic (names sorted) and ends with a newline,
    per the format spec.
    """
    lines: List[str] = []

    def emit(name: str, kind: str, source: str,
             samples: List[str]) -> None:
        lines.append(f"# HELP {name} repro metric {source}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    for source in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][source]
        name = _prom_name(f"{source}_total", prefix)
        emit(name, "counter", source, [f"{name} {_prom_number(value)}"])
    for source in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][source]
        name = _prom_name(source, prefix)
        emit(name, "gauge", source, [f"{name} {_prom_number(value)}"])
    for source in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][source]
        name = _prom_name(source, prefix)
        base = hist.get("base", 1e-6)
        count = hist.get("count", 0)
        total = hist.get("total", 0.0)
        cumulative = 0
        samples: List[str] = []
        buckets = {int(k): v for k, v in hist.get("buckets", {}).items()}
        for index in sorted(buckets):
            cumulative += buckets[index]
            bound = base * (2.0 ** index)
            samples.append(
                f'{name}_bucket{{le="{bound:.9g}"}} {cumulative}'
            )
        samples.append(f'{name}_bucket{{le="+Inf"}} {count}')
        samples.append(f"{name}_sum {_prom_number(round(total, 9))}")
        samples.append(f"{name}_count {count}")
        emit(name, "histogram", source, samples)
    return "\n".join(lines) + "\n" if lines else "\n"


def validate_exposition(text: str) -> List[str]:
    """Structural complaints about a Prometheus text exposition.

    Checks the invariants a scraper relies on: every sample line parses,
    every sample is preceded by a ``# TYPE`` for its metric family,
    histogram ``_bucket`` series are cumulative (non-decreasing in
    ``le`` order) and closed by ``+Inf``, and the payload ends with a
    newline.  Empty means valid (the CI smoke job asserts exactly that).
    """
    complaints: List[str] = []
    if not text.endswith("\n"):
        complaints.append("exposition does not end with a newline")
    typed: Dict[str, str] = {}
    bucket_last: Dict[str, int] = {}
    bucket_closed: Dict[str, bool] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                if parts[1] == "TYPE":
                    typed[parts[2]] = parts[3] if len(parts) > 3 else ""
                continue
            complaints.append(f"line {lineno}: malformed comment {line!r}")
            continue
        if not _PROM_SAMPLE.match(line):
            complaints.append(f"line {lineno}: unparsable sample {line!r}")
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        family = re.sub(r"_(total|bucket|sum|count)$", "", name)
        if name not in typed and family not in typed:
            complaints.append(
                f"line {lineno}: sample {name} has no preceding # TYPE"
            )
        if name.endswith("_bucket"):
            le = re.search(r'le="([^"]+)"', line)
            value = int(float(line.rsplit(" ", 1)[1]))
            if le is None:
                complaints.append(
                    f"line {lineno}: histogram bucket without le label"
                )
                continue
            previous = bucket_last.get(name)
            if previous is not None and value < previous:
                complaints.append(
                    f"line {lineno}: {name} buckets not cumulative "
                    f"({value} < {previous})"
                )
            bucket_last[name] = value
            if le.group(1) == "+Inf":
                bucket_closed[name] = True
            elif name not in bucket_closed:
                bucket_closed[name] = False
    for name, closed in sorted(bucket_closed.items()):
        if not closed:
            complaints.append(f"{name} has no +Inf bucket")
    return complaints


# ---------------------------------------------------------------------------
# The text report
# ---------------------------------------------------------------------------


def _obligation_rows(telemetry: dict) -> List[dict]:
    """Slowest-obligation rows: hierarchical spans preferred, flat spans
    as the fallback, slowest first."""
    trace = telemetry.get("trace")
    spans: Sequence[dict]
    if trace is not None:
        spans = [s for s in trace.get("spans", [])
                 if s["name"] == "obligation"]
    else:
        spans = [s for s in telemetry.get("spans", [])
                 if s["name"] == "obligation"]
    rows = []
    for span in spans:
        attrs = span.get("attrs", {})
        where = attrs.get("part", "")
        rows.append({
            "property": attrs.get("property", "?"),
            "kind": attrs.get("kind", "?"),
            "part": where,
            "worker": span.get("worker", "main"),
            "seconds": span["seconds"],
        })
    rows.sort(key=lambda r: -r["seconds"])
    return rows


def _union_seconds(intervals: List[tuple]) -> float:
    """Total length of the union of ``(start, end)`` intervals."""
    total = 0.0
    edge = float("-inf")
    for start, end in sorted(intervals):
        if end <= edge:
            continue
        total += end - max(start, edge)
        edge = end
    return total


def _worker_rows(trace: dict) -> List[dict]:
    """Per-worker busy/utilization rows from a hierarchical trace.

    A worker's *busy* time is the interval union of its root spans
    (spans whose parent is absent from the trace — the tops of each
    shipped tree; a union, because per-worker one-off work such as the
    symbolic step build is captured as its own root overlapping the
    task that triggered it); utilization is busy time over the whole
    run window."""
    spans = trace.get("spans", [])
    if not spans:
        return []
    known = {span["span_id"] for span in spans}
    window_start = min(span["start"] for span in spans)
    window_end = max(span["start"] + span["seconds"] for span in spans)
    window = max(window_end - window_start, 1e-9)
    roots: Dict[str, List[tuple]] = {}
    counts: Dict[str, int] = {}
    for span in spans:
        worker = span.get("worker", "main")
        counts[worker] = counts.get(worker, 0) + 1
        if span.get("parent_id") not in known:
            roots.setdefault(worker, []).append(
                (span["start"], span["start"] + span["seconds"])
            )
    busy = {worker: _union_seconds(intervals)
            for worker, intervals in roots.items()}
    return [{
        "worker": worker,
        "spans": counts[worker],
        "busy": busy.get(worker, 0.0),
        "utilization": busy.get(worker, 0.0) / window,
    } for worker in sorted(counts, key=lambda w: (w != trace.get(
        "worker", "main"), w))]


def _cache_rows(counters: Dict[str, int]) -> List[dict]:
    """Hit/miss/ratio rows for every ``<name>.hit``/``<name>.miss``
    counter pair, plus standalone ``*.size`` gauges-as-counters."""
    prefixes = sorted({
        name[:-len(".hit")] for name in counters if name.endswith(".hit")
    } | {
        name[:-len(".miss")] for name in counters
        if name.endswith(".miss")
    })
    rows = []
    for prefix in prefixes:
        hits = counters.get(f"{prefix}.hit", 0)
        misses = counters.get(f"{prefix}.miss", 0)
        total = hits + misses
        rows.append({
            "cache": prefix,
            "hits": hits,
            "misses": misses,
            "ratio": hits / total if total else 0.0,
            "size": counters.get(f"{prefix}.size"),
        })
    return rows


def _serve_lines(payload: dict, serve: dict) -> List[str]:
    """The live-operations section of a serve daemon's stats payload:
    daemon vitals, recent per-submission latency breakdowns, and the
    rolling time-series rates the daemon's sampler retained."""
    lines: List[str] = []
    vitals = [f"batches {serve.get('batches', 0)}",
              f"submissions {serve.get('submissions', 0)}"]
    if "uptime_s" in payload:
        vitals.insert(0, f"up {payload['uptime_s']:.0f}s")
    if "schema_version" in payload:
        vitals.append(f"stats schema v{payload['schema_version']}")
    if "generated_at" in payload:
        vitals.append(f"generation #{payload['generated_at']}")
    lines.append("")
    lines.append("serve daemon: " + ", ".join(vitals))

    recent = serve.get("recent_submissions") or []
    if recent:
        lines.append("")
        lines.append(f"recent submissions (latest "
                     f"{len(recent)}; milliseconds):")
        lines.append(f"  {'submit':<10} {'admit':>7} {'queue':>7} "
                     f"{'verify':>8} {'fanout':>7} {'total':>8}  outcome")
        for row in recent:
            breakdown = row.get("breakdown", {})
            lines.append(
                f"  {row.get('submit_id', '?'):<10} "
                f"{breakdown.get('admission_ms', 0):>7.1f} "
                f"{breakdown.get('queue_ms', 0):>7.1f} "
                f"{breakdown.get('verify_ms', 0):>8.1f} "
                f"{breakdown.get('fanout_ms', 0):>7.1f} "
                f"{breakdown.get('total_ms', 0):>8.1f}  "
                f"{row.get('outcome', '?')}"
            )

    series = payload.get("timeseries")
    if isinstance(series, dict) and series.get("rates"):
        lines.append("")
        span = series.get("span_seconds", 0.0)
        lines.append(f"rolling window ({span:.0f}s retained):")
        for name, rate in sorted(series["rates"].items(),
                                 key=lambda kv: (-kv[1], kv[0]))[:12]:
            lines.append(f"  {name:<36} {rate:>10.3f}/s")
        for name, summary in sorted(
                (series.get("histograms") or {}).items()):
            lines.append(
                f"  {name:<36} p50 {summary.get('p50', 0):.4f}s  "
                f"p99 {summary.get('p99', 0):.4f}s  "
                f"n={summary.get('count', 0)}"
            )
    return lines


def render_report(payload: dict) -> str:
    """The self-contained text report for one run payload."""
    telemetry = _telemetry_of(payload)
    lines: List[str] = []
    program = payload.get("program")
    title = "run report"
    if program:
        title += f" — {program}"
    if telemetry.get("run_id"):
        title += f" (run {telemetry['run_id']})"
    lines.append(title)
    if "wall_seconds" in payload:
        lines.append(
            f"wall {payload['wall_seconds']:.3f}s, cpu-side total "
            f"{payload.get('total_seconds', 0.0):.3f}s, "
            f"all_proved={payload.get('all_proved')}"
        )

    serve = payload.get("serve")
    if isinstance(serve, dict):
        lines.extend(_serve_lines(payload, serve))

    obligations = _obligation_rows(telemetry)
    lines.append("")
    lines.append(f"slowest obligations (top {REPORT_TOP_OBLIGATIONS} of "
                 f"{len(obligations)}):")
    if obligations:
        for row in obligations[:REPORT_TOP_OBLIGATIONS]:
            where = f" {row['part']}" if row["part"] else ""
            lines.append(
                f"  {row['seconds']:9.4f}s  {row['property']}"
                f"{where}  [{row['kind']}, {row['worker']}]"
            )
    else:
        lines.append("  (no obligation spans recorded)")

    stages = telemetry.get("stage_seconds", {})
    if stages:
        lines.append("")
        lines.append("stage seconds:")
        for name, seconds in sorted(stages.items(),
                                    key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {name:24s} {seconds:10.4f}")

    trace = telemetry.get("trace")
    if trace is not None:
        rows = _worker_rows(trace)
        if rows:
            lines.append("")
            lines.append("worker utilization:")
            lines.append(f"  {'worker':<12} {'spans':>6} {'busy(s)':>9} "
                         f"{'util':>6}")
            for row in rows:
                lines.append(
                    f"  {row['worker']:<12} {row['spans']:>6} "
                    f"{row['busy']:>9.4f} "
                    f"{row['utilization'] * 100:>5.1f}%"
                )

    metrics = telemetry.get("metrics")
    if metrics and metrics.get("histograms"):
        lines.append("")
        lines.append("histograms:")
        lines.append(
            f"  {'metric':<28} {'count':>7} {'mean':>10} {'p50':>10} "
            f"{'p90':>10} {'p99':>10} {'max':>10}"
        )
        ordered = sorted(metrics["histograms"].items(),
                         key=lambda kv: -kv[1].get("total", 0.0))
        for name, summary in ordered:
            lines.append(
                f"  {name:<28} {summary['count']:>7} "
                f"{summary['mean']:>10.6f} {summary['p50']:>10.6f} "
                f"{summary['p90']:>10.6f} {summary['p99']:>10.6f} "
                f"{summary['max'] or 0.0:>10.6f}"
            )
    if metrics and metrics.get("gauges"):
        lines.append("")
        lines.append("gauges:")
        for name, value in sorted(metrics["gauges"].items()):
            lines.append(f"  {name:<36} {value:>12.4f}")

    cache_rows = _cache_rows(telemetry.get("counters", {}))
    if cache_rows:
        lines.append("")
        lines.append("cache statistics:")
        lines.append(f"  {'cache':<24} {'hits':>9} {'misses':>9} "
                     f"{'hit%':>6}")
        for row in cache_rows:
            lines.append(
                f"  {row['cache']:<24} {row['hits']:>9} "
                f"{row['misses']:>9} {row['ratio'] * 100:>5.1f}%"
            )

    events = telemetry.get("events")
    if events:
        by_kind: Dict[str, int] = {}
        for event in events:
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        lines.append("")
        lines.append(f"events ({len(events)} total):")
        for kind, count in sorted(by_kind.items(),
                                  key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {kind:<32} {count:>7}")
    return "\n".join(lines)


def load_run(path: str) -> dict:
    """Load a ``repro verify --json`` payload (or bare telemetry dict)
    from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def validate_trace_tree(trace: dict) -> List[str]:
    """Structural complaints about a trace dict: orphaned parents and
    children sticking out of their parent's interval.  Empty means the
    tree is well-formed (used by tests and ``repro report``)."""
    complaints: List[str] = []
    spans = trace.get("spans", [])
    index = {span["span_id"]: span for span in spans}
    slack = 1e-4  # rounding slack: offsets are serialized at 1µs grain
    for span in spans:
        parent_id: Optional[str] = span.get("parent_id")
        if parent_id is None:
            continue
        parent = index.get(parent_id)
        if parent is None:
            complaints.append(
                f"span {span['span_id']} has unknown parent {parent_id}"
            )
            continue
        if span["start"] < parent["start"] - slack or (
                span["start"] + span["seconds"]
                > parent["start"] + parent["seconds"] + slack):
            complaints.append(
                f"span {span['span_id']} [{span['start']:.6f}, "
                f"{span['start'] + span['seconds']:.6f}] outside parent "
                f"{parent_id} [{parent['start']:.6f}, "
                f"{parent['start'] + parent['seconds']:.6f}]"
            )
    return complaints
