"""The flight recorder: an append-only log of structured events.

Traces and metrics say how long things took; the event log says *what
happened, in order* — which is the question a chaos-harness violation or
a flaky parallel run actually poses.  Events are small frozen records
(a sequence number, a wall-clock offset, a kind, sorted key/value
fields) appended in causal order: an injected fault is logged before the
supervisor action it provokes, which is logged before any monitor
violation it causes, because each is emitted at the moment it happens.

The log serializes to JSON Lines — one event per line — so a failing
chaos seed leaves a post-mortem-debuggable artifact even if the process
dies mid-run: :meth:`EventLog.bind` attaches a file and
:meth:`EventLog.flush` appends everything not yet written (the chaos
harness flushes once per episode).

A week-long daemon run cannot grow one JSONL file without bound, so the
file backing rotates: past ``max_bytes`` (flag on :meth:`bind`, default
from ``REPRO_EVENTS_MAX_BYTES``; 0 disables) the live file is renamed to
``<path>.1`` — shifting ``.1`` to ``.2`` and so on, keeping the newest
``keep`` rotated files (``REPRO_EVENTS_KEEP``, default 3) — and a fresh
live file is started.  Sequence numbers are issued by the log, not the
file, so ``seq`` stays globally unique and monotonic across rotations;
concatenating the rotated files oldest-first replays the run in order.

Emission goes through :func:`repro.obs.event`, which is a module-global
read plus a ``None`` check when no event-enabled sink is installed.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

#: Rotation defaults, overridable per :meth:`EventLog.bind` call.
DEFAULT_MAX_BYTES_ENV = "REPRO_EVENTS_MAX_BYTES"
DEFAULT_KEEP_ENV = "REPRO_EVENTS_KEEP"
DEFAULT_KEEP = 3


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _jsonable(value: object) -> object:
    """Coerce a field value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass(frozen=True)
class Event:
    """One structured event: identity, time offset, kind, fields."""

    seq: int
    t: float  # seconds since the owning log's epoch
    kind: str
    worker: str
    fields: Tuple[Tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready form (field keys flattened into the record; the
        envelope keys ``seq``/``t``/``kind``/``worker`` always win, so a
        field cannot clobber the event's identity)."""
        out = {
            "seq": self.seq,
            "t": round(self.t, 6),
            "kind": self.kind,
            "worker": self.worker,
        }
        for key, value in self.fields:
            out.setdefault(key, value)
        return out


class EventLog:
    """An append-only, optionally file-backed event log for one run."""

    def __init__(self, run_id: Optional[str] = None,
                 worker: str = "main") -> None:
        self.run_id = run_id
        self.worker = worker
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        self.events: List[Event] = []
        self._path: Optional[str] = None
        self._flushed = 0
        #: next sequence number — independent of ``len(events)`` so
        #: :meth:`compact` cannot re-issue a sequence number
        self._seq = 0
        self._dropped = 0
        self._max_bytes = 0
        self._keep = DEFAULT_KEEP
        self._rotations = 0
        self._bytes_written = 0

    @property
    def dropped(self) -> int:
        """Events compacted out of memory (they remain on disk)."""
        return self._dropped

    @property
    def rotations(self) -> int:
        """How many times the bound file has been rotated."""
        return self._rotations

    def emit(self, kind: str, /, **fields: object) -> Event:
        """Append one event, stamped with the current time offset.

        ``kind`` is positional-only so a field may also be named
        ``kind`` (obligation events use it for the obligation kind).
        """
        event = Event(
            seq=self._seq,
            t=time.perf_counter() - self._epoch_perf,
            kind=kind,
            worker=self.worker,
            fields=tuple(sorted(
                (key, _jsonable(value)) for key, value in fields.items()
            )),
        )
        self._seq += 1
        self.events.append(event)
        return event

    # -- merging -------------------------------------------------------------

    def merge(self, epoch_wall: float, events: Iterable[Event]) -> None:
        """Fold a worker log's events in, re-stamping sequence numbers
        (their internal order is preserved) and re-offsetting times onto
        this log's epoch."""
        offset = epoch_wall - self.epoch_wall
        for event in events:
            self.events.append(Event(
                seq=self._seq,
                t=event.t + offset,
                kind=event.kind,
                worker=event.worker,
                fields=event.fields,
            ))
            self._seq += 1

    def export(self) -> dict:
        """Pickle-friendly snapshot a worker ships to the parent."""
        return {
            "worker": self.worker,
            "epoch_wall": self.epoch_wall,
            "events": list(self.events),
        }

    # -- file backing --------------------------------------------------------

    def bind(self, path: str, max_bytes: Optional[int] = None,
             keep: Optional[int] = None) -> None:
        """Attach a JSONL file; the file is truncated, and subsequent
        :meth:`flush` calls append events not yet written.

        ``max_bytes`` (default ``REPRO_EVENTS_MAX_BYTES``, 0 = never)
        caps the live file: a flush that would grow it past the cap
        rotates first.  ``keep`` (default ``REPRO_EVENTS_KEEP``, 3)
        bounds how many rotated files survive."""
        self._path = path
        self._flushed = 0
        self._bytes_written = 0
        self._max_bytes = (max_bytes if max_bytes is not None
                           else _env_int(DEFAULT_MAX_BYTES_ENV, 0))
        self._keep = max(1, keep if keep is not None
                         else _env_int(DEFAULT_KEEP_ENV, DEFAULT_KEEP))
        with open(path, "w", encoding="utf-8"):
            pass

    def _rotate(self) -> None:
        """Shift ``path.N`` → ``path.N+1`` (newest-first, dropping
        anything past ``keep``), move the live file to ``path.1`` and
        start a fresh live file."""
        assert self._path is not None
        for n in range(self._keep - 1, 0, -1):
            src = f"{self._path}.{n}"
            if os.path.exists(src):
                os.replace(src, f"{self._path}.{n + 1}")
        os.replace(self._path, f"{self._path}.1")
        with open(self._path, "w", encoding="utf-8"):
            pass
        self._bytes_written = 0
        self._rotations += 1

    def flush(self) -> int:
        """Append every unwritten event to the bound file; returns how
        many were written (0 when unbound or up to date).  Rotates the
        file first when the pending write would cross ``max_bytes``
        (sequence numbers are the log's, so they stay globally unique
        and monotonic across rotations)."""
        if self._path is None or self._flushed >= len(self.events):
            return 0
        pending = self.events[self._flushed:]
        payload = "".join(
            json.dumps(event.to_dict(), sort_keys=True) + "\n"
            for event in pending
        )
        if (self._max_bytes > 0 and self._bytes_written > 0
                and self._bytes_written + len(payload) > self._max_bytes):
            self._rotate()
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(payload)
        self._bytes_written += len(payload)
        self._flushed = len(self.events)
        return len(pending)

    def compact(self) -> int:
        """Drop already-flushed events from memory; returns how many.

        A soak emitting millions of events cannot hold them all: after
        each :meth:`flush` the written prefix is safe on disk, so
        compaction frees it while :attr:`dropped` keeps the accounting
        exact.  Unflushed (or unbound) events are never dropped."""
        if self._flushed == 0:
            return 0
        dropped = self._flushed
        del self.events[:dropped]
        self._dropped += dropped
        self._flushed = 0
        return dropped

    def write_jsonl(self, path: str) -> None:
        """Write the whole log to ``path`` as JSON Lines."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event.to_dict(),
                                        sort_keys=True) + "\n")

    # -- output --------------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        """Every event in JSON-ready form, in append (causal) order."""
        return [event.to_dict() for event in self.events]


def read_jsonl(path: str) -> List[dict]:
    """Load a JSONL flight-recorder file back into event dicts."""
    out: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
