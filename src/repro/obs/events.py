"""The flight recorder: an append-only log of structured events.

Traces and metrics say how long things took; the event log says *what
happened, in order* — which is the question a chaos-harness violation or
a flaky parallel run actually poses.  Events are small frozen records
(a sequence number, a wall-clock offset, a kind, sorted key/value
fields) appended in causal order: an injected fault is logged before the
supervisor action it provokes, which is logged before any monitor
violation it causes, because each is emitted at the moment it happens.

The log serializes to JSON Lines — one event per line — so a failing
chaos seed leaves a post-mortem-debuggable artifact even if the process
dies mid-run: :meth:`EventLog.bind` attaches a file and
:meth:`EventLog.flush` appends everything not yet written (the chaos
harness flushes once per episode).

Emission goes through :func:`repro.obs.event`, which is a module-global
read plus a ``None`` check when no event-enabled sink is installed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


def _jsonable(value: object) -> object:
    """Coerce a field value to something ``json.dumps`` accepts."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass(frozen=True)
class Event:
    """One structured event: identity, time offset, kind, fields."""

    seq: int
    t: float  # seconds since the owning log's epoch
    kind: str
    worker: str
    fields: Tuple[Tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        """JSON-ready form (field keys flattened into the record; the
        envelope keys ``seq``/``t``/``kind``/``worker`` always win, so a
        field cannot clobber the event's identity)."""
        out = {
            "seq": self.seq,
            "t": round(self.t, 6),
            "kind": self.kind,
            "worker": self.worker,
        }
        for key, value in self.fields:
            out.setdefault(key, value)
        return out


class EventLog:
    """An append-only, optionally file-backed event log for one run."""

    def __init__(self, run_id: Optional[str] = None,
                 worker: str = "main") -> None:
        self.run_id = run_id
        self.worker = worker
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        self.events: List[Event] = []
        self._path: Optional[str] = None
        self._flushed = 0
        #: next sequence number — independent of ``len(events)`` so
        #: :meth:`compact` cannot re-issue a sequence number
        self._seq = 0
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """Events compacted out of memory (they remain on disk)."""
        return self._dropped

    def emit(self, kind: str, /, **fields: object) -> Event:
        """Append one event, stamped with the current time offset.

        ``kind`` is positional-only so a field may also be named
        ``kind`` (obligation events use it for the obligation kind).
        """
        event = Event(
            seq=self._seq,
            t=time.perf_counter() - self._epoch_perf,
            kind=kind,
            worker=self.worker,
            fields=tuple(sorted(
                (key, _jsonable(value)) for key, value in fields.items()
            )),
        )
        self._seq += 1
        self.events.append(event)
        return event

    # -- merging -------------------------------------------------------------

    def merge(self, epoch_wall: float, events: Iterable[Event]) -> None:
        """Fold a worker log's events in, re-stamping sequence numbers
        (their internal order is preserved) and re-offsetting times onto
        this log's epoch."""
        offset = epoch_wall - self.epoch_wall
        for event in events:
            self.events.append(Event(
                seq=self._seq,
                t=event.t + offset,
                kind=event.kind,
                worker=event.worker,
                fields=event.fields,
            ))
            self._seq += 1

    def export(self) -> dict:
        """Pickle-friendly snapshot a worker ships to the parent."""
        return {
            "worker": self.worker,
            "epoch_wall": self.epoch_wall,
            "events": list(self.events),
        }

    # -- file backing --------------------------------------------------------

    def bind(self, path: str) -> None:
        """Attach a JSONL file; the file is truncated, and subsequent
        :meth:`flush` calls append events not yet written."""
        self._path = path
        self._flushed = 0
        with open(path, "w", encoding="utf-8"):
            pass

    def flush(self) -> int:
        """Append every unwritten event to the bound file; returns how
        many were written (0 when unbound or up to date)."""
        if self._path is None or self._flushed >= len(self.events):
            return 0
        pending = self.events[self._flushed:]
        with open(self._path, "a", encoding="utf-8") as handle:
            for event in pending:
                handle.write(json.dumps(event.to_dict(),
                                        sort_keys=True) + "\n")
        self._flushed = len(self.events)
        return len(pending)

    def compact(self) -> int:
        """Drop already-flushed events from memory; returns how many.

        A soak emitting millions of events cannot hold them all: after
        each :meth:`flush` the written prefix is safe on disk, so
        compaction frees it while :attr:`dropped` keeps the accounting
        exact.  Unflushed (or unbound) events are never dropped."""
        if self._flushed == 0:
            return 0
        dropped = self._flushed
        del self.events[:dropped]
        self._dropped += dropped
        self._flushed = 0
        return dropped

    def write_jsonl(self, path: str) -> None:
        """Write the whole log to ``path`` as JSON Lines."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event.to_dict(),
                                        sort_keys=True) + "\n")

    # -- output --------------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        """Every event in JSON-ready form, in append (causal) order."""
        return [event.to_dict() for event in self.events]


def read_jsonl(path: str) -> List[dict]:
    """Load a JSONL flight-recorder file back into event dicts."""
    out: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
