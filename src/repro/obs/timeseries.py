"""Rolling time-series over a metrics registry: live signals, fixed memory.

The :class:`~repro.obs.metrics.MetricsRegistry` accumulates *totals* for
one run — the right shape for a post-mortem report, the wrong shape for
an operator watching a live daemon, who asks *windowed* questions:
what's the submission rate right now?  what was the p99 verify latency
over the last 60 seconds?  is the shed rate climbing?

This module answers them with fixed memory.  A :class:`TimeSeries`
holds a bounded ring of :class:`Window` records; each window stores the
*deltas* between two registry snapshots — counter increments, histogram
bucket increments — plus gauge last-values.  Because the underlying
histograms are log-bucketed with a fixed base, window deltas merge by
bucket-wise addition, so "p99 over the last N windows" is an exact
re-aggregation of the retained deltas, never an approximation on top of
an approximation.

The :class:`Sampler` is the background thread that feeds a series from
a live registry on a fixed interval; its snapshot function and clock
are injectable, so the serve daemon hands it a *locked* snapshot of the
shared telemetry sink, tests drive it with a fake clock, and the soak
harness samples deterministically with round numbers as the time axis
(no wall clock ⇒ bit-for-bit reproducible reports).

Everything here works on plain exported dicts (the
:meth:`MetricsRegistry.export` shape plus a ``counters`` map), so a
series can be rebuilt from shipped snapshots as easily as from a live
registry.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from .metrics import BASE, QUANTILES, Histogram

#: Default ring capacity: at the default 1 s interval, two minutes of
#: history — enough for a 60 s SLO window with slack.
DEFAULT_CAPACITY = 120

#: Default sampling interval (seconds).
DEFAULT_INTERVAL = 1.0


def registry_snapshot(counters: Dict[str, int],
                      exported_metrics: dict) -> dict:
    """Normalize a (counters, :meth:`MetricsRegistry.export`) pair into
    the snapshot shape :meth:`TimeSeries.record` consumes."""
    return {
        "counters": dict(counters),
        "gauges": dict(exported_metrics.get("gauges", {})),
        "histograms": {
            name: {
                "base": hist.get("base", BASE),
                "count": hist.get("count", 0),
                "total": hist.get("total", 0.0),
                "buckets": dict(hist.get("buckets", {})),
            }
            for name, hist in exported_metrics.get("histograms",
                                                   {}).items()
        },
    }


class Window:
    """One sampling window: deltas between two snapshots.

    ``t0``/``t1`` are the window's bounds on whatever clock the caller
    samples with (wall seconds for a daemon, round numbers for the soak
    harness).  Counter and histogram deltas are clamped at zero — a
    registry swapped mid-flight (a new cache generation, a merged
    worker export arriving late) must read as a quiet window, never as
    a negative rate.
    """

    __slots__ = ("t0", "t1", "counters", "gauges", "histograms")

    def __init__(self, t0: float, t1: float,
                 counters: Dict[str, int],
                 gauges: Dict[str, float],
                 histograms: Dict[str, dict]) -> None:
        self.t0 = t0
        self.t1 = t1
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms

    @property
    def seconds(self) -> float:
        """The window's span (floored at a microsecond so rates from a
        degenerate window cannot divide by zero)."""
        return max(self.t1 - self.t0, 1e-6)

    def to_dict(self) -> dict:
        """JSON-ready form (bucket keys stringified by json anyway)."""
        return {
            "t0": self.t0,
            "t1": self.t1,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "base": hist["base"],
                    "count": hist["count"],
                    "total": hist["total"],
                    "buckets": dict(hist["buckets"]),
                }
                for name, hist in self.histograms.items()
            },
        }


def _histogram_delta(current: dict, previous: Optional[dict]) -> dict:
    """Bucket-wise delta of two exported histograms (clamped at 0).

    A ``previous`` with a different base is treated as absent: the
    registry was rebuilt with a different resolution, so the only safe
    reading is "this window starts fresh"."""
    if previous is not None and previous.get("base") != current.get(
            "base"):
        previous = None
    if previous is None:
        previous = {"count": 0, "total": 0.0, "buckets": {}}
    prev_buckets = previous.get("buckets", {})
    buckets = {}
    for index, amount in current.get("buckets", {}).items():
        index = int(index)
        delta = amount - prev_buckets.get(index,
                                          prev_buckets.get(str(index), 0))
        if delta > 0:
            buckets[index] = delta
    return {
        "base": current.get("base", BASE),
        "count": max(0, current.get("count", 0)
                     - previous.get("count", 0)),
        "total": max(0.0, current.get("total", 0.0)
                     - previous.get("total", 0.0)),
        "buckets": buckets,
    }


class TimeSeries:
    """A bounded ring of sampling windows with windowed queries.

    Thread-safe: the sampler thread records while protocol threads
    query.  Memory is fixed: at most ``capacity`` windows, each holding
    only the names that actually moved during the window.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = max(2, int(capacity))
        self._lock = threading.Lock()
        self._windows: List[Window] = []
        self._previous: Optional[dict] = None
        self._previous_t: Optional[float] = None
        self._samples = 0
        self._dropped = 0

    # -- recording -----------------------------------------------------------

    def record(self, t: float, snapshot: dict) -> Optional[Window]:
        """Fold one registry snapshot in; returns the completed window
        (``None`` for the very first sample, which only anchors the
        series).  ``snapshot`` is the :func:`registry_snapshot` shape.

        A ``t`` at or before the previous sample's time re-anchors the
        series instead of producing a zero- or negative-span window
        (the soak harness samples on round numbers, which a restarted
        phase could replay)."""
        with self._lock:
            self._samples += 1
            previous, previous_t = self._previous, self._previous_t
            self._previous, self._previous_t = snapshot, t
            if previous is None or previous_t is None \
                    or t <= previous_t:
                return None
            prev_counters = previous.get("counters", {})
            counters = {}
            for name, value in snapshot.get("counters", {}).items():
                delta = value - prev_counters.get(name, 0)
                if delta > 0:
                    counters[name] = delta
            prev_hists = previous.get("histograms", {})
            histograms = {}
            for name, hist in snapshot.get("histograms", {}).items():
                delta = _histogram_delta(hist, prev_hists.get(name))
                if delta["count"] > 0 or delta["buckets"]:
                    histograms[name] = delta
            window = Window(
                t0=previous_t, t1=t,
                counters=counters,
                gauges=dict(snapshot.get("gauges", {})),
                histograms=histograms,
            )
            self._windows.append(window)
            if len(self._windows) > self.capacity:
                del self._windows[:len(self._windows) - self.capacity]
                self._dropped += 1
            return window

    # -- queries -------------------------------------------------------------

    def _select(self, over: Optional[float]) -> List[Window]:
        """The retained windows whose *end* falls within ``over`` units
        of the newest sample (all of them when ``over`` is ``None``)."""
        if not self._windows:
            return []
        if over is None:
            return list(self._windows)
        horizon = self._windows[-1].t1 - over
        return [w for w in self._windows if w.t1 > horizon]

    def span(self, over: Optional[float] = None) -> float:
        """The selected windows' total span (0.0 when empty)."""
        with self._lock:
            selected = self._select(over)
        return sum(w.seconds for w in selected)

    def rate(self, counter: str, over: Optional[float] = None) -> float:
        """The counter's average per-unit-time rate over the selected
        windows (0.0 when the series is empty)."""
        with self._lock:
            selected = self._select(over)
        span = sum(w.seconds for w in selected)
        if span <= 0:
            return 0.0
        total = sum(w.counters.get(counter, 0) for w in selected)
        return total / span

    def total(self, counter: str, over: Optional[float] = None) -> int:
        """The counter's total increments over the selected windows."""
        with self._lock:
            selected = self._select(over)
        return sum(w.counters.get(counter, 0) for w in selected)

    def gauge_last(self, name: str) -> Optional[float]:
        """The most recent window's value for a gauge (or ``None``)."""
        with self._lock:
            for window in reversed(self._windows):
                if name in window.gauges:
                    return window.gauges[name]
        return None

    def _merged_histogram(self, name: str,
                          over: Optional[float]) -> Optional[Histogram]:
        selected = self._select(over)
        merged: Optional[Histogram] = None
        for window in selected:
            delta = window.histograms.get(name)
            if delta is None:
                continue
            if merged is None:
                merged = Histogram(delta.get("base", BASE))
            merged.merge({
                "count": delta["count"],
                "total": delta["total"],
                "min": None,
                "max": None,
                "base": delta.get("base", BASE),
                "buckets": delta["buckets"],
            })
        return merged

    def quantile(self, histogram: str, q: float,
                 over: Optional[float] = None) -> Optional[float]:
        """Upper-bound ``q``-quantile of a histogram over the selected
        windows (``None`` when nothing was observed in them)."""
        with self._lock:
            merged = self._merged_histogram(histogram, over)
        if merged is None or merged.count == 0:
            return None
        return merged.quantile(q)

    def count_over(self, histogram: str, threshold: float,
                   over: Optional[float] = None) -> Tuple[int, int]:
        """``(violations, total)``: how many observations in the
        selected windows *may* exceed ``threshold``, and how many there
        were at all.  A bucket whose upper bound exceeds the threshold
        counts as violating wholesale — the same upper-bound bias the
        quantiles carry, which is the right side to err on for SLO
        burn accounting."""
        with self._lock:
            merged = self._merged_histogram(histogram, over)
        if merged is None or merged.count == 0:
            return 0, 0
        violations = sum(
            amount for index, amount in merged.buckets.items()
            if merged.bucket_bound(index) > threshold
        )
        return violations, merged.count

    def histogram_summary(self, histogram: str,
                          over: Optional[float] = None
                          ) -> Optional[dict]:
        """count / mean / quantiles of a histogram over the selected
        windows (``None`` when nothing was observed in them)."""
        with self._lock:
            merged = self._merged_histogram(histogram, over)
        if merged is None or merged.count == 0:
            return None
        out = {
            "count": merged.count,
            "total": round(merged.total, 6),
            "mean": round(merged.total / merged.count, 9),
        }
        for q in QUANTILES:
            out[f"p{int(q * 100)}"] = round(merged.quantile(q), 9)
        return out

    # -- export --------------------------------------------------------------

    def stats(self) -> dict:
        """Bookkeeping: samples taken, windows retained/evicted."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "samples": self._samples,
                "windows": len(self._windows),
                "evicted": self._dropped,
            }

    def counter_names(self) -> List[str]:
        """Every counter that moved in any retained window, sorted."""
        with self._lock:
            names = set()
            for window in self._windows:
                names.update(window.counters)
        return sorted(names)

    def histogram_names(self) -> List[str]:
        """Every histogram that moved in any retained window, sorted."""
        with self._lock:
            names = set()
            for window in self._windows:
                names.update(window.histograms)
        return sorted(names)

    def to_dict(self, over: Optional[float] = None,
                windows: bool = False) -> dict:
        """JSON-ready snapshot: bookkeeping, per-counter rates, gauge
        last-values and histogram summaries over the selected windows;
        ``windows=True`` additionally includes the raw window ring (the
        CI artifact / forensic form)."""
        out = {
            "stats": self.stats(),
            "span_seconds": round(self.span(over), 6),
            "rates": {
                name: round(self.rate(name, over), 6)
                for name in self.counter_names()
            },
            "gauges": {},
            "histograms": {},
        }
        with self._lock:
            gauge_names = set()
            for window in self._windows:
                gauge_names.update(window.gauges)
        for name in sorted(gauge_names):
            value = self.gauge_last(name)
            if value is not None:
                out["gauges"][name] = round(value, 9)
        for name in self.histogram_names():
            summary = self.histogram_summary(name, over)
            if summary is not None:
                out["histograms"][name] = summary
        if windows:
            with self._lock:
                out["windows"] = [w.to_dict() for w in self._windows]
        return out


class Sampler:
    """A background thread feeding a :class:`TimeSeries` on an interval.

    ``snapshot`` returns the :func:`registry_snapshot` shape — the
    caller owns whatever locking the underlying registry needs (the
    serve daemon snapshots under its telemetry lock).  Snapshot failures
    are counted and swallowed: a sampling hiccup must never take the
    host process down.  ``clock`` is injectable for tests.
    """

    def __init__(self, snapshot: Callable[[], dict],
                 series: Optional[TimeSeries] = None,
                 interval: float = DEFAULT_INTERVAL,
                 clock: Callable[[], float] = None) -> None:
        import time

        self.snapshot = snapshot
        self.series = series if series is not None else TimeSeries()
        self.interval = max(0.01, float(interval))
        self.clock = clock if clock is not None else time.monotonic
        self.errors = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def sample_once(self) -> Optional[Window]:
        """Take one sample now (also what the thread loop calls)."""
        try:
            snapshot = self.snapshot()
        except Exception:  # noqa: BLE001 - sampling must never raise
            self.errors += 1
            return None
        return self.series.record(self.clock(), snapshot)

    def start(self) -> None:
        """Start the daemon sampling thread (idempotent); anchors the
        series with an immediate first sample so the first interval
        already yields a window."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self.sample_once()
        self._thread = threading.Thread(target=self._loop,
                                        name="obs-sampler", daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def stop(self, final_sample: bool = True) -> None:
        """Stop the thread (idempotent); by default takes one final
        sample so the tail of the run is not lost."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None
        if final_sample:
            self.sample_once()


#: Convenient pair type for callers that build both at once.
SamplerPair = Tuple[Sampler, TimeSeries]
