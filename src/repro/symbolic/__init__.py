"""Symbolic machinery: terms, simplification, the path-condition solver,
pattern/template unification, symbolic evaluation, and the behavioral
abstraction ``BehAbs`` the prover inducts over.

Terms are hash-consed (see :mod:`repro.symbolic.expr`) and the hot
simplify/DNF/solver paths are memoized behind the knobs in
:mod:`repro.symbolic.cache`; ``docs/performance.md`` describes the layer.
"""

from .behabs import (
    AbstractionChecker,
    Exchange,
    GenericStep,
    InitSummary,
    RejectedTrace,
    generic_step,
    init_summary,
)
from .expr import (
    FreshNames,
    SComp,
    SConst,
    SOp,
    SProj,
    STuple,
    SVar,
    Term,
    free_vars,
    intern_table_size,
    lift_value,
    reset_interning,
    sand,
    sconst,
    seq_,
    sne,
    snot,
    snum,
    sor,
    sstr,
    substitute,
    term_children,
)
from .seval import FoundFact, MissingFact, SymPath, eval_sexpr, sym_exec
from .simplify import dnf, linearize, simplify, term_type
from .solver import Facts, cube_implies, cube_inconsistent
from .templates import (
    TCall,
    TRecv,
    TSelect,
    TSend,
    TSpawn,
    Template,
    substitute_template,
)
from .unify import SymMatch, match_comp_term, match_template

__all__ = [
    "AbstractionChecker",
    "Exchange",
    "GenericStep",
    "InitSummary",
    "RejectedTrace",
    "generic_step",
    "init_summary",
    "FreshNames",
    "SComp",
    "SConst",
    "SOp",
    "SProj",
    "STuple",
    "SVar",
    "Term",
    "free_vars",
    "intern_table_size",
    "lift_value",
    "reset_interning",
    "sand",
    "sconst",
    "seq_",
    "sne",
    "snot",
    "snum",
    "sor",
    "sstr",
    "substitute",
    "term_children",
    "FoundFact",
    "MissingFact",
    "SymPath",
    "eval_sexpr",
    "sym_exec",
    "dnf",
    "linearize",
    "simplify",
    "term_type",
    "Facts",
    "cube_implies",
    "cube_inconsistent",
    "TCall",
    "TRecv",
    "TSelect",
    "TSend",
    "TSpawn",
    "Template",
    "substitute_template",
    "SymMatch",
    "match_comp_term",
    "match_template",
]
