"""Action templates: symbolic counterparts of trace actions.

Where the interpreter records :class:`~repro.runtime.actions.ASend` etc.
with concrete values, symbolic evaluation of a handler produces *templates*
whose component and payload slots hold :mod:`repro.symbolic.expr` terms.
One template stands for the family of concrete actions obtained by
instantiating its terms — the unit the behavioral abstraction reasons over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from .expr import SComp, SVar, Term


@dataclass(frozen=True)
class TSelect:
    """The kernel selected ``comp``."""

    comp: SComp

    def __str__(self) -> str:
        return f"Select({self.comp})"


@dataclass(frozen=True)
class TRecv:
    """The kernel received ``msg(payload...)`` from ``comp``."""

    comp: SComp
    msg: str
    payload: Tuple[Term, ...]

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.payload)
        return f"Recv({self.comp}, {self.msg}({args}))"


@dataclass(frozen=True)
class TSend:
    """The kernel sent ``msg(payload...)`` to ``comp``."""

    comp: SComp
    msg: str
    payload: Tuple[Term, ...]

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.payload)
        return f"Send({self.comp}, {self.msg}({args}))"


@dataclass(frozen=True)
class TSpawn:
    """The kernel spawned ``comp``."""

    comp: SComp

    def __str__(self) -> str:
        return f"Spawn({self.comp})"


@dataclass(frozen=True)
class TCall:
    """The kernel invoked ``func(args...)`` and the world answered with the
    fresh symbolic ``result``."""

    func: str
    args: Tuple[Term, ...]
    result: SVar

    def __str__(self) -> str:
        args = ", ".join(str(p) for p in self.args)
        return f"Call({self.func}({args}) = {self.result})"


Template = Union[TSelect, TRecv, TSend, TSpawn, TCall]


def template_comp(t: Template):
    """The component term of a template, or ``None`` for calls."""
    if isinstance(t, TCall):
        return None
    return t.comp


def substitute_template(t: Template, mapping) -> Template:
    """Apply a term substitution to every slot of a template."""
    from .expr import substitute

    if isinstance(t, TSelect):
        return TSelect(substitute(t.comp, mapping))
    if isinstance(t, TRecv):
        return TRecv(
            substitute(t.comp, mapping), t.msg,
            tuple(substitute(p, mapping) for p in t.payload),
        )
    if isinstance(t, TSend):
        return TSend(
            substitute(t.comp, mapping), t.msg,
            tuple(substitute(p, mapping) for p in t.payload),
        )
    if isinstance(t, TSpawn):
        return TSpawn(substitute(t.comp, mapping))
    if isinstance(t, TCall):
        result = substitute(t.result, mapping)
        if not isinstance(result, SVar):  # pragma: no cover - defensive
            raise TypeError("call result slot must remain a variable")
        return TCall(
            t.func,
            tuple(substitute(a, mapping) for a in t.args),
            result,
        )
    raise TypeError(f"not a template: {t!r}")
