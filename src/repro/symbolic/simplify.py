"""Term simplification and normalization.

The prover's entailment checks live or die by normalization: the same fact
must reach the solver in the same shape regardless of which handler produced
it.  This module provides:

* :func:`simplify` — bottom-up rewriting: constant folding, equality
  decomposition at tuple type, component-identity decisions that are purely
  structural (distinct Init components, freshly spawned components), boolean
  flattening and absorption, and linear normalization of numeric atoms.
* :func:`dnf` — disjunctive normal form over simplified terms.  Symbolic
  execution forks a branch per DNF disjunct, so downstream path conditions
  are always plain conjunctions of *literals* (atoms or negated atoms),
  which is the fragment the solver decides.
* :func:`term_type` — type reconstruction for terms.

Domain-specific reduction strategies were one of the paper's key
optimizations (section 6.4: 80× average speedup); :func:`simplify` is where
those strategies live in this reproduction.

Both :func:`simplify` and the DNF expansion walk terms with explicit
stacks — never native recursion over term structure — so pathologically
deep terms (long handler sequences compile to deep ``SOp`` chains) cannot
overflow the interpreter stack mid-proof.  Because terms are immutable
and interned (:mod:`repro.symbolic.expr`), both functions memoize their
results in bounded process-wide LRU caches; ``repro.symbolic.cache``
holds the switch and the size knobs, and the differential tests assert
the cached results are byte-identical to uncached ones.
"""

from __future__ import annotations

from collections import OrderedDict
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..lang import types as ty
from ..lang.errors import SymbolicError
from ..lang.values import VBool, VNum, VStr, VTuple
from . import cache as _cache
from .expr import (
    S_FALSE,
    S_TRUE,
    SComp,
    SConst,
    SOp,
    SProj,
    STuple,
    SVar,
    Term,
    sand,
    term_children,
)

# ---------------------------------------------------------------------------
# Types of terms
# ---------------------------------------------------------------------------


def term_type(t: Term) -> ty.Type:
    """Reconstruct the REFLEX type of a term."""
    if isinstance(t, SConst):
        from ..lang.values import type_of

        return type_of(t.value)
    if isinstance(t, SVar):
        return t.type
    if isinstance(t, STuple):
        return ty.TupleType(tuple(term_type(e) for e in t.elems))
    if isinstance(t, SProj):
        base = term_type(t.base)
        if not isinstance(base, ty.TupleType):
            raise SymbolicError(f"projection of non-tuple term {t}")
        return base.elems[t.index]
    if isinstance(t, SComp):
        return ty.CompType(t.ctype)
    if isinstance(t, SOp):
        if t.op in ("eq", "not", "and", "or", "lt", "le"):
            return ty.BOOL
        if t.op in ("add", "sub"):
            return ty.NUM
        if t.op == "concat":
            return ty.STR
    raise SymbolicError(f"cannot type term {t!r}")


# ---------------------------------------------------------------------------
# Linear arithmetic normalization
# ---------------------------------------------------------------------------

#: A linear polynomial: constant + sum(coeff * atom); atoms are non-linear
#: numeric terms (variables, projections, ...).
Linear = Tuple[Fraction, Tuple[Tuple[Term, Fraction], ...]]


def linearize(t: Term) -> Linear:
    """Normalize a numeric term into ``constant + Σ coeff·atom`` form."""
    const, coeffs = _lin(t)
    items = tuple(sorted(
        ((a, c) for a, c in coeffs.items() if c != 0),
        key=lambda item: repr(item[0]),
    ))
    return const, items


def _lin(t: Term) -> Tuple[Fraction, Dict[Term, Fraction]]:
    const = Fraction(0)
    coeffs: Dict[Term, Fraction] = {}
    stack: List[Tuple[Term, int]] = [(t, 1)]
    while stack:
        current, sign = stack.pop()
        if isinstance(current, SConst) and isinstance(current.value, VNum):
            const += sign * current.value.n
        elif isinstance(current, SOp) and current.op in ("add", "sub"):
            stack.append((current.args[0], sign))
            stack.append((
                current.args[1],
                sign if current.op == "add" else -sign,
            ))
        else:
            # anything else is an opaque numeric atom
            coeffs[current] = coeffs.get(current, Fraction(0)) + sign
    return const, coeffs


def linear_to_term(lin: Linear) -> Term:
    """Rebuild a canonical term from a linear normal form."""
    const, items = lin
    parts: List[Term] = []
    for atom, coeff in items:
        if coeff == 1:
            parts.append(atom)
        else:
            # integer coefficients only arise from repeated addition of the
            # same atom; keep them as explicit sums for readability.
            reps = int(coeff)
            if Fraction(reps) != coeff or reps <= 0:
                raise SymbolicError(
                    f"non-integral linear coefficient {coeff} for {atom}"
                )
            parts.extend([atom] * reps)
    term: Optional[Term] = None
    for p in parts:
        term = p if term is None else SOp("add", (term, p))
    if term is None:
        return SConst(VNum(int(const)))
    if const != 0:
        if const == int(const):
            op = "add" if const > 0 else "sub"
            term = SOp(op, (term, SConst(VNum(abs(int(const))))))
        else:  # pragma: no cover - fractions never escape the solver
            raise SymbolicError(f"non-integral constant {const}")
    return term


# ---------------------------------------------------------------------------
# Simplification
# ---------------------------------------------------------------------------

#: The process-wide simplify memo (input term → simplified term), LRU
#: evicted at ``cache.SIMPLIFY_CACHE_SIZE``.  Sound to share across every
#: caller because terms are immutable and simplification is deterministic.
_SIMPLIFY_MEMO: "OrderedDict[Term, Term]" = OrderedDict()

#: The process-wide DNF memo (simplified term → tuple of cubes).
_DNF_MEMO: "OrderedDict[Term, Tuple[Cube, ...]]" = OrderedDict()

#: Reentrancy depth of :func:`simplify`/:func:`dnf`; evicting only at
#: depth zero keeps entries an in-flight outer call still relies on.
_DEPTH = 0


def clear_caches() -> None:
    """Empty the simplify and DNF memos."""
    _SIMPLIFY_MEMO.clear()
    _DNF_MEMO.clear()


def cache_sizes() -> Dict[str, int]:
    """Current entry counts of this module's memos."""
    return {
        "simplify.cache.size": len(_SIMPLIFY_MEMO),
        "dnf.cache.size": len(_DNF_MEMO),
    }


def simplify(t: Term) -> Term:
    """Bottom-up simplification; idempotent on its own output."""
    global _DEPTH
    if isinstance(t, (SConst, SVar)):
        return t
    if not _cache.enabled():
        return _simplify_into(t, {})
    memo = _SIMPLIFY_MEMO
    hit = memo.get(t)
    if hit is not None:
        obs.incr("simplify.cache.hit")
        memo.move_to_end(t)
        return hit
    obs.incr("simplify.cache.miss")
    _DEPTH += 1
    try:
        result = _simplify_into(t, memo)
    finally:
        _DEPTH -= 1
        if _DEPTH == 0:
            limit = _cache.SIMPLIFY_CACHE_SIZE
            while len(memo) > limit:
                memo.popitem(last=False)
    return result


def _resolved(t: Term, memo: Dict[Term, Term]) -> Term:
    """The simplified form of a child ``t`` (leaves simplify to themselves
    and are kept out of the memo)."""
    if isinstance(t, (SConst, SVar)):
        return t
    return memo[t]


def _simplify_into(t: Term, memo: Dict[Term, Term]) -> Term:
    """Iterative post-order simplification of ``t``, recording every
    visited (non-leaf) sub-term's simplified form in ``memo``."""
    stack: List[Term] = [t]
    while stack:
        current = stack[-1]
        if current in memo:
            stack.pop()
            continue
        pending = [
            c for c in term_children(current)
            if not isinstance(c, (SConst, SVar)) and c not in memo
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        memo[current] = _simplify_node(current, memo)
    return memo[t]


def _simplify_node(t: Term, memo: Dict[Term, Term]) -> Term:
    """Rebuild one node from its already-simplified children."""
    if isinstance(t, STuple):
        return STuple(tuple(_resolved(e, memo) for e in t.elems))
    if isinstance(t, SComp):
        return SComp(
            t.label, t.ctype,
            tuple(_resolved(e, memo) for e in t.config),
            t.origin, t.seq,
        )
    if isinstance(t, SProj):
        base = _resolved(t.base, memo)
        if isinstance(base, STuple):
            return base.elems[t.index]
        if isinstance(base, SConst) and isinstance(base.value, VTuple):
            from .expr import lift_value

            return simplify(SProj(lift_value(base.value), t.index))
        return SProj(base, t.index)
    if isinstance(t, SOp):
        args = tuple(_resolved(a, memo) for a in t.args)
        return _simplify_op(t.op, args)
    raise SymbolicError(f"cannot simplify {t!r}")


def _simplify_op(op: str, args: Tuple[Term, ...]) -> Term:
    if op == "eq":
        return _simplify_eq(args[0], args[1])
    if op == "not":
        return _simplify_not(args[0])
    if op in ("and", "or"):
        return _simplify_bool(op, args)
    if op in ("add", "sub"):
        return linear_to_term(linearize(SOp(op, args)))
    if op in ("lt", "le"):
        return _simplify_cmp(op, args[0], args[1])
    if op == "concat":
        a, b = args
        if (isinstance(a, SConst) and isinstance(a.value, VStr)
                and isinstance(b, SConst) and isinstance(b.value, VStr)):
            return SConst(VStr(a.value.s + b.value.s))
        # "" is a unit for concatenation
        if isinstance(a, SConst) and isinstance(a.value, VStr) \
                and a.value.s == "":
            return b
        if isinstance(b, SConst) and isinstance(b.value, VStr) \
                and b.value.s == "":
            return a
        return SOp("concat", (a, b))
    raise SymbolicError(f"unknown operator {op}")


def _simplify_cmp(op: str, a: Term, b: Term) -> Term:
    """Comparisons: decide constant differences, normalize both sides."""
    const, items = linearize(SOp("sub", (b, a)))
    if not items:
        if op == "lt":
            return S_TRUE if const > 0 else S_FALSE
        return S_TRUE if const >= 0 else S_FALSE
    return SOp(op, (
        linear_to_term(linearize(a)),
        linear_to_term(linearize(b)),
    ))


def _simplify_eq(a: Term, b: Term) -> Term:
    if a == b:
        return S_TRUE
    # Expose concrete tuple structure before deciding anything.
    if isinstance(a, SConst) and isinstance(a.value, VTuple):
        from .expr import lift_value

        a = lift_value(a.value)
    if isinstance(b, SConst) and isinstance(b.value, VTuple):
        from .expr import lift_value

        b = lift_value(b.value)
    if isinstance(a, SConst) and isinstance(b, SConst):
        return S_TRUE if a.value == b.value else S_FALSE
    # Equality at tuple type decomposes element-wise whenever we can name
    # the elements on both sides (literally, or through projections).
    t = term_type(a)
    if isinstance(t, ty.TupleType) and (
        isinstance(a, STuple) or isinstance(b, STuple)
    ):
        elems_a = _tuple_elems(a, len(t.elems))
        elems_b = _tuple_elems(b, len(t.elems))
        return simplify(sand(*(
            SOp("eq", (x, y)) for x, y in zip(elems_a, elems_b)
        )))
    # Component identity that structure alone decides.
    if isinstance(a, SComp) and isinstance(b, SComp):
        decided = _comp_identity(a, b)
        if decided is not None:
            return S_TRUE if decided else S_FALSE
    # Booleans: eq(x, true) == x; eq(x, false) == not x.
    if isinstance(a, SConst) and isinstance(a.value, VBool):
        a, b = b, a
    if isinstance(b, SConst) and isinstance(b.value, VBool):
        return a if b.value.b else _simplify_not(a)
    # Numerics: normalize both sides linearly; a decided difference folds.
    if term_type(a) == ty.NUM:
        const, items = linearize(SOp("sub", (a, b)))
        if not items:
            return S_TRUE if const == 0 else S_FALSE
        return _canonical_num_eq(const, items)
    # Canonical argument order so that eq(x, y) and eq(y, x) coincide.
    if repr(a) > repr(b):
        a, b = b, a
    return SOp("eq", (a, b))


def _tuple_elems(t: Term, n: int) -> Tuple[Term, ...]:
    if isinstance(t, STuple):
        return t.elems
    return tuple(simplify(SProj(t, i)) for i in range(n))


def _canonical_num_eq(const: Fraction,
                      items: Tuple[Tuple[Term, Fraction], ...]) -> Term:
    """Canonical equality ``Σ coeff·atom + const == 0``: move the first atom
    to the left, the rest to the right."""
    head_atom, head_coeff = items[0]
    if head_coeff < 0:
        const, items = -const, tuple((a, -c) for a, c in items)
        head_atom, head_coeff = items[0]
    lhs = linear_to_term((Fraction(0), ((head_atom, head_coeff),)))
    rhs = linear_to_term((-const, tuple(
        (a, -c) for a, c in items[1:]
    )))
    return SOp("eq", (lhs, rhs))


def _comp_identity(a: SComp, b: SComp) -> Optional[bool]:
    """Decide component identity when structure alone suffices.

    Returns ``None`` when the solver must reason with context (e.g. whether
    the sender aliases an Init component).
    """
    if a.label == b.label:
        return True
    if a.ctype != b.ctype:
        return False
    if a.origin == "init" and b.origin == "init":
        return False  # Init spawns are pairwise distinct instances
    if a.origin == "fresh" or b.origin == "fresh":
        # A fresh spawn is distinct from every component that existed before
        # the handler ran, and from other fresh spawns (different moments).
        return False
    return None


def _simplify_not(a: Term) -> Term:
    if isinstance(a, SConst) and isinstance(a.value, VBool):
        return S_FALSE if a.value.b else S_TRUE
    if isinstance(a, SOp) and a.op == "not":
        return a.args[0]
    return SOp("not", (a,))


def _simplify_bool(op: str, args: Tuple[Term, ...]) -> Term:
    unit = S_TRUE if op == "and" else S_FALSE
    absorber = S_FALSE if op == "and" else S_TRUE
    flat: List[Term] = []
    for a in args:
        if isinstance(a, SOp) and a.op == op:
            flat.extend(a.args)
        else:
            flat.append(a)
    out: List[Term] = []
    seen = set()
    for a in flat:
        if a == absorber:
            return absorber
        if a == unit or a in seen:
            continue
        seen.add(a)
        out.append(a)
    # x ∧ ¬x → false;  x ∨ ¬x → true
    for a in out:
        if _simplify_not(a) in seen:
            return absorber
    if not out:
        return unit
    if len(out) == 1:
        return out[0]
    return SOp(op, tuple(out))


# ---------------------------------------------------------------------------
# Disjunctive normal form
# ---------------------------------------------------------------------------

#: A conjunction of literals (each an atom or its negation).
Cube = Tuple[Term, ...]


def is_atom(t: Term) -> bool:
    """Atoms: equalities, comparisons, and bare boolean terms."""
    if isinstance(t, SOp):
        return t.op in ("eq", "lt", "le")
    return True  # boolean variables / projections


def dnf(t: Term) -> List[Cube]:
    """DNF of a *simplified* boolean term: a list of cubes; the term is
    equivalent to the disjunction of the cubes' conjunctions.  ``[]`` means
    false; ``[()]`` means true."""
    global _DEPTH
    t = simplify(t)
    if not _cache.enabled():
        return _dnf(t, positive=True)
    hit = _DNF_MEMO.get(t)
    if hit is not None:
        obs.incr("dnf.cache.hit")
        _DNF_MEMO.move_to_end(t)
        return list(hit)
    obs.incr("dnf.cache.miss")
    _DEPTH += 1
    try:
        result = _dnf(t, positive=True)
    finally:
        _DEPTH -= 1
    # The memo holds an immutable snapshot; callers get private lists.
    _DNF_MEMO[t] = tuple(result)
    if _DEPTH == 0:
        limit = _cache.DNF_CACHE_SIZE
        while len(_DNF_MEMO) > limit:
            _DNF_MEMO.popitem(last=False)
    return result


def _dnf(t: Term, positive: bool) -> List[Cube]:
    """Iterative DNF expansion (explicit stack, memoized per call on
    ``(sub-term, polarity)``) — deep alternations cannot overflow the
    interpreter stack."""
    memo: Dict[Tuple[Term, bool], List[Cube]] = {}
    stack: List[Tuple[Term, bool]] = [(t, positive)]
    while stack:
        current, pos = stack[-1]
        key = (current, pos)
        if key in memo:
            stack.pop()
            continue
        if current == S_TRUE:
            memo[key] = [()] if pos else []
            stack.pop()
            continue
        if current == S_FALSE:
            memo[key] = [] if pos else [()]
            stack.pop()
            continue
        if isinstance(current, SOp) and current.op == "not":
            inner = (current.args[0], not pos)
            if inner not in memo:
                stack.append(inner)
                continue
            memo[key] = memo[inner]
            stack.pop()
            continue
        if isinstance(current, SOp) and current.op in ("and", "or"):
            children = [(a, pos) for a in current.args]
            pending = [c for c in children if c not in memo]
            if pending:
                stack.extend(pending)
                continue
            branches = [memo[c] for c in children]
            if (current.op == "and") == pos:
                cubes: List[Cube] = [()]
                for branch in branches:
                    cubes = [c1 + c2 for c1 in cubes for c2 in branch]
                memo[key] = cubes
            else:
                merged: List[Cube] = []
                for branch in branches:
                    merged.extend(branch)
                memo[key] = merged
            stack.pop()
            continue
        literal = current if pos else _simplify_not(current)
        memo[key] = [(literal,)]
        stack.pop()
    return memo[(t, positive)]
