"""Compiled symbolic plans: the closure-compiled prover hot path.

The interpretive pipeline re-walks handler ASTs once per
:class:`~repro.prover.engine.Verifier` — every ``verify_all`` round pays
the full symbolic evaluation of every handler again, plus the
obligation-key fingerprinting storm, even when the program has not
changed.  This module compiles each handler body once into a *step
program* — a tree of closures with the per-node constant work (literal
lifting, field-index resolution, name routing, pattern tests) lowered at
compile time — and keys the resulting :class:`CompiledPlan` on the
program's content digest in a process-wide cache, so repeated
verification of the same kernel executes plans instead of interpreting
ASTs.

Equivalence contract: for every program, the compiled executor produces
the *same terms in the same order* as :func:`repro.symbolic.seval.sym_exec`
— including the consumption order of the :class:`FreshNames` supply, the
``simplify``/``dnf`` call sequence and the feasibility pruning points —
so obligation keys, derivations and derivation keys are preserved
bit-for-bit.  The all-kernel compile-vs-interpret differential tests
(serial and ``--jobs``) are the net; ``--no-compile`` is the escape
hatch.

A :class:`CompiledPlan` also carries the per-kernel memos the engine
consults on its hot path:

* the built :class:`~repro.symbolic.behabs.GenericStep` (shared across
  ``Verifier`` instances and shipped to pool workers through the shared
  arena, see :mod:`repro.prover.shared`);
* obligation keys, memoized per (property, options, part);
* hot verdict payloads for already-discharged obligations, keyed by
  their content-addressed obligation key (successes only; the engine
  still replays the checker over served derivations).

``reset_interning`` clears the whole plan cache: a plan holds interned
terms, and mixing term generations would silently degrade the identity
fast paths.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..lang import ast
from ..lang.errors import SymbolicError
from ..lang.validate import CALL_RESULT_TYPE, ProgramInfo
from .expr import FreshNames, SComp, SOp, SProj, STuple, Term, lift_value
from .seval import (
    FoundFact,
    MissingFact,
    SymPath,
    _EvalState,
    _snapshot_env,
)
from .simplify import dnf, simplify
from .templates import TCall, TSend, TSpawn

#: ``fn(env, locals_, sender) -> Term`` — a compiled (raw, unsimplified)
#: expression, mirroring ``seval._eval``.
_ExprFn = Callable[[dict, dict, Optional[SComp]], Term]
#: ``fn(state, fresh) -> List[_EvalState]`` — a compiled command,
#: mirroring ``seval._exec``.
_CmdFn = Callable[[_EvalState, FreshNames], List[_EvalState]]


class _Compiler:
    """Compiles expressions and commands of one program into closures.

    Memoized per AST node identity; the compiler keeps the nodes alive
    through its memo tables, so ``id``-keying is stable.
    """

    def __init__(self, info: ProgramInfo) -> None:
        self.info = info
        self._exprs: Dict[int, Tuple[object, _ExprFn]] = {}
        self._cmds: Dict[int, Tuple[object, _CmdFn]] = {}

    # -- expressions ---------------------------------------------------------

    def expr(self, e: ast.Expr) -> _ExprFn:
        hit = self._exprs.get(id(e))
        if hit is not None:
            return hit[1]
        fn = self._compile_expr(e)
        self._exprs[id(e)] = (e, fn)
        return fn

    def eval_expr(self, e: ast.Expr) -> _ExprFn:
        """The compiled form of ``seval.eval_sexpr`` (simplified result)."""
        raw = self.expr(e)

        def run(env: dict, locals_: dict, sender: Optional[SComp]) -> Term:
            return simplify(raw(env, locals_, sender))

        return run

    def _compile_expr(self, e: ast.Expr) -> _ExprFn:
        if isinstance(e, ast.Lit):
            value = lift_value(e.value)
            return lambda env, locals_, sender: value
        if isinstance(e, ast.Name):
            name = e.name

            def run_name(env, locals_, sender):
                if name in locals_:
                    return locals_[name]
                if name in env:
                    return env[name]
                raise SymbolicError(
                    f"unbound name {name} in symbolic evaluation"
                )

            return run_name
        if isinstance(e, ast.Sender):
            def run_sender(env, locals_, sender):
                if sender is None:
                    raise SymbolicError("'sender' outside a handler")
                return sender

            return run_sender
        if isinstance(e, ast.Field):
            base = self.expr(e.comp)
            fld = e.field
            info = self.info
            # Pre-lower the field index for every component type that has
            # the field; the rare miss falls back to the interpreter's
            # lookup (and its error).
            indices: Dict[str, int] = {}
            for cname, decl in info.comp_table.items():
                try:
                    indices[cname] = decl.config_index(fld)
                except Exception:
                    pass

            def run_field(env, locals_, sender):
                comp = simplify(base(env, locals_, sender))
                if not isinstance(comp, SComp):
                    raise SymbolicError(
                        f"config access on non-component term {comp}"
                    )
                index = indices.get(comp.ctype)
                if index is None:
                    index = info.comp_table[comp.ctype].config_index(fld)
                return comp.config[index]

            return run_field
        if isinstance(e, ast.BinOp):
            left = self.expr(e.left)
            right = self.expr(e.right)
            if e.op == "ne":
                return lambda env, locals_, sender: SOp("not", (SOp(
                    "eq",
                    (left(env, locals_, sender), right(env, locals_, sender)),
                ),))
            op = e.op
            return lambda env, locals_, sender: SOp(op, (
                left(env, locals_, sender), right(env, locals_, sender),
            ))
        if isinstance(e, ast.Not):
            arg = self.expr(e.arg)
            return lambda env, locals_, sender: SOp(
                "not", (arg(env, locals_, sender),)
            )
        if isinstance(e, ast.TupleExpr):
            elems = tuple(self.expr(x) for x in e.elems)
            return lambda env, locals_, sender: STuple(tuple(
                fn(env, locals_, sender) for fn in elems
            ))
        if isinstance(e, ast.Proj):
            base = self.expr(e.tuple_expr)
            index = e.index
            return lambda env, locals_, sender: SProj(
                base(env, locals_, sender), index
            )
        raise SymbolicError(f"unknown expression form {e!r}")

    # -- commands ------------------------------------------------------------

    def cmd(self, c: ast.Cmd) -> _CmdFn:
        hit = self._cmds.get(id(c))
        if hit is not None:
            return hit[1]
        fn = self._compile_cmd(c)
        self._cmds[id(c)] = (c, fn)
        return fn

    def _compile_cmd(self, c: ast.Cmd) -> _CmdFn:
        if isinstance(c, ast.Nop):
            return lambda state, fresh: [state]
        if isinstance(c, ast.Assign):
            value_fn = self.eval_expr(c.expr)
            var = c.var

            def run_assign(state, fresh):
                value = value_fn(state.env, state.locals, state.sender)
                out = state.fork()
                out.env[var] = value
                return [out]

            return run_assign
        if isinstance(c, ast.Seq):
            parts = tuple(self.cmd(x) for x in c.cmds)

            def run_seq(state, fresh):
                states = [state]
                for part in parts:
                    next_states: List[_EvalState] = []
                    for s in states:
                        next_states.extend(part(s, fresh))
                    states = next_states
                return states

            return run_seq
        if isinstance(c, ast.If):
            return self._compile_if(c)
        if isinstance(c, ast.SendCmd):
            return self._compile_send(c)
        if isinstance(c, ast.SpawnCmd):
            return self._compile_spawn(c)
        if isinstance(c, ast.CallCmd):
            return self._compile_call(c)
        if isinstance(c, ast.LookupCmd):
            return self._compile_lookup(c)
        raise SymbolicError(f"unknown command form {c!r}")

    def _compile_if(self, c: ast.If) -> _CmdFn:
        cond_fn = self.eval_expr(c.cond)
        then_fn = self.cmd(c.then)
        else_fn = self.cmd(c.otherwise)

        def run_if(state, fresh):
            cond = cond_fn(state.env, state.locals, state.sender)
            out: List[_EvalState] = []
            for cube in dnf(cond):
                branch = state.fork()
                branch.cond = branch.cond + cube
                if branch.feasible():
                    out.extend(then_fn(branch, fresh))
            for cube in dnf(SOp("not", (cond,))):
                branch = state.fork()
                branch.cond = branch.cond + cube
                if branch.feasible():
                    out.extend(else_fn(branch, fresh))
            return out

        return run_if

    def _compile_send(self, c: ast.SendCmd) -> _CmdFn:
        target_fn = self.eval_expr(c.target)
        arg_fns = tuple(self.eval_expr(a) for a in c.args)
        msg = c.msg

        def run_send(state, fresh):
            target = target_fn(state.env, state.locals, state.sender)
            if not isinstance(target, SComp):
                raise SymbolicError(
                    f"send target did not evaluate to a component "
                    f"term: {c} -> {target}"
                )
            payload = tuple(
                fn(state.env, state.locals, state.sender) for fn in arg_fns
            )
            out = state.fork()
            out.actions = out.actions + (TSend(target, msg, payload),)
            return [out]

        return run_send

    def _compile_spawn(self, c: ast.SpawnCmd) -> _CmdFn:
        config_fns = tuple(self.eval_expr(a) for a in c.config)
        label_base = c.bind or c.ctype.lower()
        ctype = c.ctype
        bind = c.bind

        def run_spawn(state, fresh):
            config = tuple(
                fn(state.env, state.locals, state.sender)
                for fn in config_fns
            )
            comp = SComp(
                label=fresh.comp_label(label_base),
                ctype=ctype,
                config=config,
                origin="fresh",
                seq=fresh.seq(),
            )
            out = state.fork()
            out.actions = out.actions + (TSpawn(comp),)
            out.new_comps = out.new_comps + (comp,)
            out.known_comps = out.known_comps + (comp,)
            if bind is not None:
                out.locals[bind] = comp
            return [out]

        return run_spawn

    def _compile_call(self, c: ast.CallCmd) -> _CmdFn:
        arg_fns = tuple(self.eval_expr(a) for a in c.args)
        func = c.func
        bind = c.bind
        result_name = f"call_{func}"

        def run_call(state, fresh):
            args = tuple(
                fn(state.env, state.locals, state.sender) for fn in arg_fns
            )
            result = fresh.var(result_name, CALL_RESULT_TYPE, "call")
            out = state.fork()
            out.actions = out.actions + (TCall(func, args, result),)
            out.locals[bind] = result
            return [out]

        return run_call

    def _compile_lookup(self, c: ast.LookupCmd) -> _CmdFn:
        decl = self.info.comp_table[c.ctype]
        config_specs = tuple(
            (f"{c.bind}_{f.name}", f.type) for f in decl.config
        )
        pred_fn = self.eval_expr(c.pred)
        found_fn = self.cmd(c.found)
        missing_fn = self.cmd(c.missing)
        ctype = c.ctype
        bind = c.bind
        pred = c.pred

        def run_lookup(state, fresh):
            candidate = SComp(
                label=fresh.comp_label(bind),
                ctype=ctype,
                config=tuple(
                    fresh.var(name, type_, "config")
                    for name, type_ in config_specs
                ),
                origin="lookup",
                seq=fresh.seq(),
            )
            env_snapshot = _snapshot_env(state)
            out: List[_EvalState] = []

            pred_term = pred_fn(
                state.env, {**state.locals, bind: candidate}, state.sender
            )
            for cube in dnf(pred_term):
                branch = state.fork()
                branch.cond = branch.cond + cube
                branch.locals[bind] = candidate
                branch.lookup_facts = branch.lookup_facts + (FoundFact(
                    comp=candidate,
                    ctype=ctype,
                    bind=bind,
                    pred=pred,
                    env=env_snapshot,
                    sender=state.sender,
                    known_before=state.known_comps,
                    at_index=len(state.actions),
                ),)
                if branch.feasible():
                    out.extend(found_fn(branch, fresh))

            # Missing branch — see the soundness note in seval: only a
            # single-literal negation may strengthen the path condition.
            branch = state.fork()
            negative_literals: List[Term] = []
            for known in state.known_comps:
                if known.ctype != ctype:
                    continue
                known_pred = pred_fn(
                    state.env, {**state.locals, bind: known}, state.sender
                )
                negation_cubes = dnf(SOp("not", (known_pred,)))
                if len(negation_cubes) == 1:
                    negative_literals.extend(negation_cubes[0])
            branch.cond = branch.cond + tuple(negative_literals)
            branch.lookup_facts = branch.lookup_facts + (MissingFact(
                ctype=ctype,
                bind=bind,
                pred=pred,
                env=env_snapshot,
                sender=state.sender,
                known_before=state.known_comps,
                at_index=len(state.actions),
            ),)
            if branch.feasible():
                out.extend(missing_fn(branch, fresh))
            return out

        return run_lookup


def compiled_executor(info: ProgramInfo) -> Callable:
    """An executor with the :func:`repro.symbolic.seval.sym_exec`
    signature that runs compiled step programs instead of walking ASTs.

    Suitable as the ``executor`` argument of
    :func:`repro.symbolic.behabs.build_exchange`.
    """
    compiler = _Compiler(info)

    def run(info_, body, env, params, sender, known_comps, fresh,
            base_cond=(), base_actions=()):
        body_fn = compiler.cmd(body)
        start = _EvalState(
            env=dict(env),
            locals=dict(params),
            sender=sender,
            cond=tuple(base_cond),
            actions=tuple(base_actions),
            new_comps=(),
            known_comps=tuple(known_comps),
            lookup_facts=(),
        )
        states = body_fn(start, fresh)
        obs.incr("seval.paths", len(states))
        return [
            SymPath(
                cond=s.cond,
                env=tuple(sorted(s.env.items())),
                actions=s.actions,
                new_comps=s.new_comps,
                lookup_facts=s.lookup_facts,
            )
            for s in states
        ]

    return run


# ---------------------------------------------------------------------------
# The per-kernel compiled plan and its process-wide cache
# ---------------------------------------------------------------------------

#: Bound on cached hot verdict payloads per plan.
_RESULT_LIMIT = 1024


@dataclass
class CompiledPlan:
    """Everything the engine reuses across verifications of one kernel."""

    digest: str
    _step: Optional[object] = None
    _keys: Dict[Tuple[int, bool, object], str] = field(default_factory=dict)
    #: strong references pinning the ``id``-keyed properties in ``_keys``
    _key_refs: List[object] = field(default_factory=list)
    _results: "OrderedDict[str, Tuple[str, object]]" = field(
        default_factory=OrderedDict
    )

    def step_for(self, info: ProgramInfo):
        """The (memoized) :class:`GenericStep`, built with the compiled
        executor on first use."""
        if self._step is None:
            from .behabs import generic_step

            with obs.span("compile.plan", program=info.program.name):
                registry = obs.metrics_active()
                if registry is None:
                    self._step = generic_step(
                        info, executor=compiled_executor(info)
                    )
                else:
                    started = time.perf_counter()
                    self._step = generic_step(
                        info, executor=compiled_executor(info)
                    )
                    registry.observe("compile.seconds",
                                     time.perf_counter() - started)
            obs.incr("compile.plan.build")
        return self._step

    def seed_step(self, step: object) -> None:
        """Adopt a step built elsewhere (pool workers attach the parent's
        arena snapshot instead of re-building)."""
        self._step = step

    def obligation_key_for(self, prop: object, syntactic_skip: bool,
                           part: object,
                           compute: Callable[[], str]) -> str:
        """Memoized content-addressed obligation key.

        Keys are memoized per (property identity, skip flag, part); the
        property object is pinned so ``id`` reuse cannot alias.  The
        computed key is byte-identical to an unmemoized computation — the
        memo only skips the canonical-fingerprint render.
        """
        memo_key = (id(prop), syntactic_skip, part)
        hit = self._keys.get(memo_key)
        if hit is not None:
            obs.incr("compile.key.hit")
            return hit
        obs.incr("compile.key.miss")
        key = compute()
        self._keys[memo_key] = key
        self._key_refs.append(prop)
        return key

    def cached_result(self, key: str) -> Optional[Tuple[str, object]]:
        """The hot verdict payload for an obligation key, if recorded."""
        hit = self._results.get(key)
        if hit is None:
            obs.incr("compile.result.miss")
            return None
        obs.incr("compile.result.hit")
        self._results.move_to_end(key)
        return hit

    def record_result(self, key: str, kind: str, payload: object) -> None:
        """Record a successfully discharged obligation's payload."""
        self._results[key] = (kind, payload)
        while len(self._results) > _RESULT_LIMIT:
            self._results.popitem(last=False)

    def exportable_results(self) -> Dict[str, Tuple[str, object]]:
        """A plain-dict snapshot of the hot results (for the arena)."""
        return dict(self._results)

    def seed_results(self, results: Dict[str, Tuple[str, object]]) -> None:
        for key, value in results.items():
            self._results.setdefault(key, value)


#: Process-wide plans keyed by program content digest (bounded LRU).
_PLANS: "OrderedDict[str, CompiledPlan]" = OrderedDict()
_PLAN_LIMIT = 8


def plan_for(digest: str) -> CompiledPlan:
    """The compiled plan for a program digest (created on first use)."""
    plan = _PLANS.get(digest)
    if plan is None:
        obs.incr("compile.plan.miss")
        plan = CompiledPlan(digest)
        _PLANS[digest] = plan
        while len(_PLANS) > _PLAN_LIMIT:
            _PLANS.popitem(last=False)
    else:
        obs.incr("compile.plan.hit")
        _PLANS.move_to_end(digest)
    return plan


def clear_plans() -> None:
    """Drop every compiled plan (``reset_interning`` calls this: plans
    hold interned terms and must not outlive the intern table)."""
    _PLANS.clear()


def cache_sizes() -> Dict[str, int]:
    """Entry counts folded into ``repro verify --profile`` output."""
    return {
        "compile.plans.size": len(_PLANS),
        "compile.results.size": sum(
            len(plan._results) for plan in _PLANS.values()
        ),
    }
