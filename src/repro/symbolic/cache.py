"""Knobs and introspection for the symbolic caching layer.

Three caches sit on the prover's hot path, all keyed on interned terms
(see :mod:`repro.symbolic.expr`):

* the :func:`repro.symbolic.simplify.simplify` memo,
* the DNF memo in the same module,
* the solver query cache in :mod:`repro.symbolic.solver` (entailment and
  consistency answers keyed on the asserted-literal sequence).

This module owns the shared *enabled* flag (``ProverOptions.term_cache``
and the CLI's ``--no-term-cache`` flow through here), the bounded-size
limits (overridable via ``REPRO_SIMPLIFY_CACHE_SIZE``,
``REPRO_DNF_CACHE_SIZE`` and ``REPRO_SOLVER_CACHE_SIZE``), and the
introspection helpers the CLI folds into ``--profile`` output.  Caching
is *semantically invisible*: the differential tests assert byte-identical
verdicts, derivations and derivation keys with caches on and off.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator


def _env_size(name: str, default: int) -> int:
    """A cache-size limit from the environment, falling back on nonsense."""
    try:
        return max(0, int(os.environ.get(name, default)))
    except ValueError:
        return default


#: Maximum entries in the simplify memo (LRU evicted beyond this).
SIMPLIFY_CACHE_SIZE = _env_size("REPRO_SIMPLIFY_CACHE_SIZE", 65536)
#: Maximum entries in the DNF memo.
DNF_CACHE_SIZE = _env_size("REPRO_DNF_CACHE_SIZE", 16384)
#: Maximum entries in the solver query cache.
SOLVER_CACHE_SIZE = _env_size("REPRO_SOLVER_CACHE_SIZE", 32768)
#: Maximum entries in the solver prefix cache (built ``Facts`` states
#: keyed on their asserted-literal sequence; see ``facts_for``).
PREFIX_CACHE_SIZE = _env_size("REPRO_PREFIX_CACHE_SIZE", 4096)

#: The process-wide switch (``True`` = memoize).  Interning itself is
#: independent of this flag — identity fast paths stay sound either way.
_ENABLED = True


def enabled() -> bool:
    """Whether the simplify/DNF/solver caches are currently consulted."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    """Set the process-wide caching switch (workers call this from the
    pool initializer with ``ProverOptions.term_cache``)."""
    global _ENABLED
    _ENABLED = bool(value)


@contextmanager
def scope(value: bool) -> Iterator[None]:
    """Run a block with caching forced on or off, restoring the previous
    setting afterwards (used by ``Verifier.prove_property``)."""
    previous = _ENABLED
    set_enabled(value)
    try:
        yield
    finally:
        set_enabled(previous)


def clear_all() -> None:
    """Empty the simplify, DNF and solver caches (not the intern table)."""
    # Import the names, not the modules: the package __init__ rebinds
    # ``simplify`` to the function, shadowing the submodule attribute.
    from .simplify import clear_caches as clear_simplify
    from .solver import clear_caches as clear_solver

    clear_simplify()
    clear_solver()


def sizes() -> Dict[str, int]:
    """Current entry counts, named like the telemetry counters they
    accompany (folded into ``repro verify --profile`` output)."""
    from .expr import intern_table_size
    from .simplify import cache_sizes as simplify_sizes
    from .solver import cache_sizes as solver_sizes

    out = {"term.intern.size": intern_table_size()}
    out.update(simplify_sizes())
    out.update(solver_sizes())
    from . import compile as _compile

    out.update(_compile.cache_sizes())
    return out


def hit_ratios(counters: Dict[str, int]) -> Dict[str, float]:
    """Hit ratios for every ``<cache>.hit``/``<cache>.miss`` counter pair
    in ``counters`` (``<cache>.hit_ratio`` → hits / (hits + misses)).

    The CLI folds these into the metrics gauges so ``repro report`` can
    show cache effectiveness without re-deriving it from raw counters.
    """
    prefixes = {name[:-len(".hit")] for name in counters
                if name.endswith(".hit")}
    prefixes.update(name[:-len(".miss")] for name in counters
                    if name.endswith(".miss"))
    out: Dict[str, float] = {}
    for prefix in sorted(prefixes):
        hits = counters.get(f"{prefix}.hit", 0)
        misses = counters.get(f"{prefix}.miss", 0)
        total = hits + misses
        if total:
            out[f"{prefix}.hit_ratio"] = hits / total
    return out
