"""Symbolic evaluation of handlers.

Handlers are loop free (a LAC design decision, paper sections 3.3 and 7),
so a handler body denotes a *finite* set of paths.  :func:`sym_exec`
enumerates them: each :class:`SymPath` carries the path condition (a
conjunction of literals), the final values of the global variables, the
chronological list of emitted action templates, the components spawned, and
the ``lookup`` facts collected along the way.

``lookup`` contributes structured facts rather than plain constraints:

* a *found* fact records that the bound component is an arbitrary member of
  the component set (of the right type) satisfying the predicate, and
* a *missing* fact records that **no** component of the type in the set at
  that moment satisfies the predicate,

both of which the prover later converts into trace facts through the
component-set/Spawn-action correspondence (see
:mod:`repro.symbolic.behabs`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..lang import ast
from ..lang import types as ty
from ..lang.errors import SymbolicError
from ..lang.validate import CALL_RESULT_TYPE, ProgramInfo
from .expr import (
    FreshNames,
    SComp,
    SConst,
    SOp,
    SProj,
    STuple,
    SVar,
    Term,
    lift_value,
)
from .simplify import dnf, simplify
from .solver import Facts, facts_for
from .templates import Template, TCall, TSend, TSpawn


@dataclass(frozen=True)
class FoundFact:
    """``lookup`` succeeded: ``comp`` is an arbitrary member of the
    component set of type ``ctype`` satisfying ``pred`` (evaluated with
    ``bind`` mapped to the candidate in ``env``)."""

    comp: SComp
    ctype: str
    bind: str
    pred: ast.Expr
    env: Tuple[Tuple[str, Term], ...]
    sender: Optional[SComp]
    known_before: Tuple[SComp, ...]
    #: position in the path's action list when the lookup ran; actions at
    #: indices >= at_index happened after the lookup.
    at_index: int = 0


@dataclass(frozen=True)
class MissingFact:
    """``lookup`` failed: no component of ``ctype`` in the set (at that
    moment: every Init component, every earlier handler spawn, and every
    component spawned by previous exchanges) satisfies ``pred``."""

    ctype: str
    bind: str
    pred: ast.Expr
    env: Tuple[Tuple[str, Term], ...]
    sender: Optional[SComp]
    known_before: Tuple[SComp, ...]
    at_index: int = 0


LookupFact = object  # FoundFact | MissingFact


@dataclass(frozen=True)
class SymPath:
    """One path through a handler (or through Init)."""

    cond: Tuple[Term, ...]
    env: Tuple[Tuple[str, Term], ...]
    actions: Tuple[Template, ...]
    new_comps: Tuple[SComp, ...]
    lookup_facts: Tuple[LookupFact, ...]

    def env_dict(self) -> Dict[str, Term]:
        return dict(self.env)

    def facts(self) -> Facts:
        """A solver context pre-loaded with this path's condition (served
        through the prefix cache; always a private copy)."""
        return facts_for(self.cond)

    def __str__(self) -> str:
        cond = " and ".join(str(c) for c in self.cond) or "true"
        acts = "; ".join(str(a) for a in self.actions) or "(no actions)"
        return f"path [{cond}] -> {acts}"


@dataclass
class _EvalState:
    """Mutable-by-replacement evaluation state threaded through a body."""

    env: Dict[str, Term]
    locals: Dict[str, Term]
    sender: Optional[SComp]
    cond: Tuple[Term, ...]
    actions: Tuple[Template, ...]
    new_comps: Tuple[SComp, ...]
    known_comps: Tuple[SComp, ...]
    lookup_facts: Tuple[LookupFact, ...]

    def fork(self) -> "_EvalState":
        return _EvalState(
            env=dict(self.env),
            locals=dict(self.locals),
            sender=self.sender,
            cond=self.cond,
            actions=self.actions,
            new_comps=self.new_comps,
            known_comps=self.known_comps,
            lookup_facts=self.lookup_facts,
        )

    def feasible(self) -> bool:
        return not facts_for(self.cond).inconsistent()


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


def eval_sexpr(e: ast.Expr, env: Dict[str, Term], locals_: Dict[str, Term],
               sender: Optional[SComp], info: ProgramInfo) -> Term:
    """Evaluate a (pure) DSL expression to a simplified term."""
    return simplify(_eval(e, env, locals_, sender, info))


def _eval(e: ast.Expr, env: Dict[str, Term], locals_: Dict[str, Term],
          sender: Optional[SComp], info: ProgramInfo) -> Term:
    if isinstance(e, ast.Lit):
        return lift_value(e.value)
    if isinstance(e, ast.Name):
        if e.name in locals_:
            return locals_[e.name]
        if e.name in env:
            return env[e.name]
        raise SymbolicError(f"unbound name {e.name} in symbolic evaluation")
    if isinstance(e, ast.Sender):
        if sender is None:
            raise SymbolicError("'sender' outside a handler")
        return sender
    if isinstance(e, ast.Field):
        comp = _eval(e.comp, env, locals_, sender, info)
        comp = simplify(comp)
        if not isinstance(comp, SComp):
            raise SymbolicError(f"config access on non-component term {comp}")
        decl = info.comp_table[comp.ctype]
        return comp.config[decl.config_index(e.field)]
    if isinstance(e, ast.BinOp):
        left = _eval(e.left, env, locals_, sender, info)
        right = _eval(e.right, env, locals_, sender, info)
        if e.op == "ne":
            return SOp("not", (SOp("eq", (left, right)),))
        return SOp(e.op, (left, right))
    if isinstance(e, ast.Not):
        return SOp("not", (_eval(e.arg, env, locals_, sender, info),))
    if isinstance(e, ast.TupleExpr):
        return STuple(tuple(
            _eval(x, env, locals_, sender, info) for x in e.elems
        ))
    if isinstance(e, ast.Proj):
        return SProj(_eval(e.tuple_expr, env, locals_, sender, info),
                     e.index)
    raise SymbolicError(f"unknown expression form {e!r}")


# ---------------------------------------------------------------------------
# Command evaluation
# ---------------------------------------------------------------------------


def sym_exec(info: ProgramInfo, body: ast.Cmd, env: Dict[str, Term],
             params: Dict[str, Term], sender: Optional[SComp],
             known_comps: Tuple[SComp, ...], fresh: FreshNames,
             base_cond: Tuple[Term, ...] = (),
             base_actions: Tuple[Template, ...] = ()) -> List[SymPath]:
    """Enumerate the feasible paths of ``body``.

    ``env`` holds the pre-state global values, ``params`` the handler's
    payload bindings, ``known_comps`` the component terms known to exist
    before the handler runs (Init components); ``base_actions`` seeds the
    action list (the Select/Recv boundary actions of the exchange).
    """
    start = _EvalState(
        env=dict(env),
        locals=dict(params),
        sender=sender,
        cond=tuple(base_cond),
        actions=tuple(base_actions),
        new_comps=(),
        known_comps=tuple(known_comps),
        lookup_facts=(),
    )
    states = _exec(body, start, info, fresh)
    obs.incr("seval.paths", len(states))
    return [
        SymPath(
            cond=s.cond,
            env=tuple(sorted(s.env.items())),
            actions=s.actions,
            new_comps=s.new_comps,
            lookup_facts=s.lookup_facts,
        )
        for s in states
    ]


def _exec(cmd: ast.Cmd, state: _EvalState, info: ProgramInfo,
          fresh: FreshNames) -> List[_EvalState]:
    if isinstance(cmd, ast.Nop):
        return [state]
    if isinstance(cmd, ast.Assign):
        value = eval_sexpr(cmd.expr, state.env, state.locals, state.sender,
                           info)
        out = state.fork()
        out.env[cmd.var] = value
        return [out]
    if isinstance(cmd, ast.Seq):
        states = [state]
        for c in cmd.cmds:
            next_states: List[_EvalState] = []
            for s in states:
                next_states.extend(_exec(c, s, info, fresh))
            states = next_states
        return states
    if isinstance(cmd, ast.If):
        return _exec_if(cmd, state, info, fresh)
    if isinstance(cmd, ast.SendCmd):
        return [_exec_send(cmd, state, info)]
    if isinstance(cmd, ast.SpawnCmd):
        return [_exec_spawn(cmd, state, info, fresh)]
    if isinstance(cmd, ast.CallCmd):
        return [_exec_call(cmd, state, info, fresh)]
    if isinstance(cmd, ast.LookupCmd):
        return _exec_lookup(cmd, state, info, fresh)
    raise SymbolicError(f"unknown command form {cmd!r}")


def _exec_if(cmd: ast.If, state: _EvalState, info: ProgramInfo,
             fresh: FreshNames) -> List[_EvalState]:
    cond = eval_sexpr(cmd.cond, state.env, state.locals, state.sender, info)
    out: List[_EvalState] = []
    for cube in dnf(cond):
        branch = state.fork()
        branch.cond = branch.cond + cube
        if branch.feasible():
            out.extend(_exec(cmd.then, branch, info, fresh))
    for cube in dnf(SOp("not", (cond,))):
        branch = state.fork()
        branch.cond = branch.cond + cube
        if branch.feasible():
            out.extend(_exec(cmd.otherwise, branch, info, fresh))
    return out


def _exec_send(cmd: ast.SendCmd, state: _EvalState,
               info: ProgramInfo) -> _EvalState:
    target = eval_sexpr(cmd.target, state.env, state.locals, state.sender,
                        info)
    if not isinstance(target, SComp):
        raise SymbolicError(f"send target did not evaluate to a component "
                            f"term: {cmd} -> {target}")
    payload = tuple(
        eval_sexpr(a, state.env, state.locals, state.sender, info)
        for a in cmd.args
    )
    out = state.fork()
    out.actions = out.actions + (TSend(target, cmd.msg, payload),)
    return out


def _exec_spawn(cmd: ast.SpawnCmd, state: _EvalState, info: ProgramInfo,
                fresh: FreshNames) -> _EvalState:
    config = tuple(
        eval_sexpr(a, state.env, state.locals, state.sender, info)
        for a in cmd.config
    )
    comp = SComp(
        label=fresh.comp_label(cmd.bind or cmd.ctype.lower()),
        ctype=cmd.ctype,
        config=config,
        origin="fresh",
        seq=fresh.seq(),
    )
    out = state.fork()
    out.actions = out.actions + (TSpawn(comp),)
    out.new_comps = out.new_comps + (comp,)
    out.known_comps = out.known_comps + (comp,)
    if cmd.bind is not None:
        out.locals[cmd.bind] = comp
    return out


def _exec_call(cmd: ast.CallCmd, state: _EvalState, info: ProgramInfo,
               fresh: FreshNames) -> _EvalState:
    args = tuple(
        eval_sexpr(a, state.env, state.locals, state.sender, info)
        for a in cmd.args
    )
    result = fresh.var(f"call_{cmd.func}", CALL_RESULT_TYPE, "call")
    out = state.fork()
    out.actions = out.actions + (TCall(cmd.func, args, result),)
    out.locals[cmd.bind] = result
    return out


def _exec_lookup(cmd: ast.LookupCmd, state: _EvalState, info: ProgramInfo,
                 fresh: FreshNames) -> List[_EvalState]:
    decl = info.comp_table[cmd.ctype]
    candidate = SComp(
        label=fresh.comp_label(cmd.bind),
        ctype=cmd.ctype,
        config=tuple(
            fresh.var(f"{cmd.bind}_{f.name}", f.type, "config")
            for f in decl.config
        ),
        origin="lookup",
        seq=fresh.seq(),
    )
    env_snapshot = _snapshot_env(state)
    out: List[_EvalState] = []

    # Found branch: the candidate satisfies the predicate.
    pred_term = eval_sexpr(
        cmd.pred, state.env, {**state.locals, cmd.bind: candidate},
        state.sender, info,
    )
    for cube in dnf(pred_term):
        branch = state.fork()
        branch.cond = branch.cond + cube
        branch.locals[cmd.bind] = candidate
        branch.lookup_facts = branch.lookup_facts + (FoundFact(
            comp=candidate,
            ctype=cmd.ctype,
            bind=cmd.bind,
            pred=cmd.pred,
            env=env_snapshot,
            sender=state.sender,
            known_before=state.known_comps,
            at_index=len(state.actions),
        ),)
        if branch.feasible():
            out.extend(_exec(cmd.found, branch, info, fresh))

    # Missing branch: no component of the type satisfies the predicate.
    # Known components give *concrete* negative facts; the universal
    # residue about unknown components is carried by the MissingFact.
    #
    # Soundness note: the negation of the predicate may be a disjunction
    # (¬(a ∧ b) = ¬a ∨ ¬b).  Path conditions are conjunctions of literals,
    # so we may only record the negation when it is a single literal —
    # adding each disjunct as a separate literal would *strengthen* the
    # path condition and silently drop real executions from the case
    # analysis.  When the negation does not fit, we record nothing (the
    # path is merely less constrained, which is always sound).
    branch = state.fork()
    negative_literals: List[Term] = []
    for known in state.known_comps:
        if known.ctype != cmd.ctype:
            continue
        known_pred = eval_sexpr(
            cmd.pred, state.env, {**state.locals, cmd.bind: known},
            state.sender, info,
        )
        negation_cubes = dnf(SOp("not", (known_pred,)))
        if len(negation_cubes) == 1:
            negative_literals.extend(negation_cubes[0])
    branch.cond = branch.cond + tuple(negative_literals)
    branch.lookup_facts = branch.lookup_facts + (MissingFact(
        ctype=cmd.ctype,
        bind=cmd.bind,
        pred=cmd.pred,
        env=env_snapshot,
        sender=state.sender,
        known_before=state.known_comps,
        at_index=len(state.actions),
    ),)
    if branch.feasible():
        out.extend(_exec(cmd.missing, branch, info, fresh))
    return out


def _snapshot_env(state: _EvalState) -> Tuple[Tuple[str, Term], ...]:
    merged = dict(state.env)
    merged.update(state.locals)
    return tuple(sorted(merged.items()))
