"""The behavioral abstraction ``BehAbs`` (paper section 3.3).

``BehAbs`` characterizes every trace a program can produce, inductively:

* **base**: the state after running Init (a *single* concrete-shaped state,
  because Init is flat — see :mod:`repro.lang.validate`), summarized by
  :func:`init_summary`;
* **step**: from any reachable state, one *exchange* — the kernel receives
  some message ``m`` from some component ``c`` of some type and runs the
  corresponding handler (or nothing) — summarized once per (component type,
  message type) pair by :func:`generic_step`.

:class:`GenericStep` is the object every proof inducts over: for each
exchange it enumerates the handler's symbolic paths starting from an
*arbitrary* reachable pre-state (data globals are fresh symbolic variables;
component-reference globals are pinned to their Init components, which is
sound because validation makes them immutable after Init).

Component-set / trace correspondence (the once-and-for-all meta-theorem the
prover's lookup reasoning relies on, validated by the randomized soundness
oracle in the test suite):

1. every component in the kernel's set is either an Init component or has a
   ``Spawn`` action in the trace, and
2. every ``Spawn`` action's component is in the set — components are never
   removed.

This module also provides :class:`AbstractionChecker`, the executable form
of the paper's "sats" arrow (Figure 1): it replays a concrete trace against
the program's semantics and accepts iff the trace is one the abstraction
predicts.  The randomized soundness tests drive the real interpreter and
require every produced trace to be accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..lang import ast
from ..lang import types as ty
from ..lang.errors import SymbolicError
from ..lang.validate import CALL_RESULT_TYPE, ProgramInfo
from ..runtime.actions import ACall, ARecv, ASelect, ASend, ASpawn, Action
from ..runtime.interpreter import KernelState, eval_expr, _Scope
from ..runtime.trace import Trace
from ..lang.values import VBool, VComp, Value
from .expr import FreshNames, SComp, SVar, Term, lift_value
from .seval import SymPath, eval_sexpr, sym_exec
from .templates import TCall, TRecv, TSelect, TSpawn, Template

# ---------------------------------------------------------------------------
# Init summary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InitSummary:
    """The (unique) post-Init symbolic state: environment, trace templates,
    and the Init components."""

    env: Tuple[Tuple[str, Term], ...]
    actions: Tuple[Template, ...]
    comps: Tuple[SComp, ...]

    def env_dict(self) -> Dict[str, Term]:
        return dict(self.env)


def init_summary(info: ProgramInfo, fresh: FreshNames) -> InitSummary:
    """Evaluate the Init section symbolically.

    Everything is concrete except external call results, which are fresh
    symbolic variables (``init_call``) — the world answers them
    non-deterministically.
    """
    env: Dict[str, Term] = {}
    actions: List[Template] = []
    comps: List[SComp] = []
    for cmd in info.program.init:
        if isinstance(cmd, ast.Nop):
            continue
        if isinstance(cmd, ast.Assign):
            env[cmd.var] = eval_sexpr(cmd.expr, env, {}, None, info)
        elif isinstance(cmd, ast.SpawnCmd):
            config = tuple(
                eval_sexpr(e, env, {}, None, info) for e in cmd.config
            )
            comp = SComp(
                label=f"init_{cmd.bind}",
                ctype=cmd.ctype,
                config=config,
                origin="init",
                seq=fresh.seq(),
            )
            comps.append(comp)
            actions.append(TSpawn(comp))
            env[cmd.bind] = comp
        elif isinstance(cmd, ast.CallCmd):
            args = tuple(
                eval_sexpr(e, env, {}, None, info) for e in cmd.args
            )
            result = fresh.var(f"init_call_{cmd.func}", CALL_RESULT_TYPE,
                               "init_call")
            actions.append(TCall(cmd.func, args, result))
            env[cmd.bind] = result
        else:  # pragma: no cover - validation forbids this
            raise SymbolicError(f"non-flat Init command {cmd}")
    return InitSummary(
        env=tuple(sorted(env.items())),
        actions=tuple(actions),
        comps=tuple(comps),
    )


# ---------------------------------------------------------------------------
# Generic inductive step
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Exchange:
    """All symbolic paths of one (component type, message type) exchange.

    ``sender`` is an arbitrary component of the type (fresh configuration
    variables); ``payload`` are fresh payload variables; every path's action
    list starts with the ``Select``/``Recv`` boundary templates.
    """

    ctype: str
    msg: str
    sender: SComp
    payload: Tuple[SVar, ...]
    handler: Optional[ast.Handler]
    paths: Tuple[SymPath, ...]

    @property
    def key(self) -> Tuple[str, str]:
        return (self.ctype, self.msg)

    def __str__(self) -> str:
        return f"{self.ctype}=>{self.msg} ({len(self.paths)} paths)"


@dataclass(frozen=True)
class GenericStep:
    """The full inductive step: the arbitrary pre-state and every exchange.

    ``pre_env`` maps each global to its pre-state term: a fresh ``state``
    variable for data globals, the Init component term for component
    globals (immutable after Init).
    """

    info: ProgramInfo
    init: InitSummary
    pre_env: Tuple[Tuple[str, Term], ...]
    exchanges: Tuple[Exchange, ...]

    def pre_env_dict(self) -> Dict[str, Term]:
        return dict(self.pre_env)

    def exchange(self, ctype: str, msg: str) -> Exchange:
        for ex in self.exchanges:
            if ex.key == (ctype, msg):
                return ex
        raise KeyError((ctype, msg))


def arbitrary_pre_env(info: ProgramInfo, init: InitSummary,
                      fresh: FreshNames) -> Dict[str, Term]:
    """The environment of an arbitrary reachable state."""
    init_env = init.env_dict()
    env: Dict[str, Term] = {}
    for name_, type_ in info.global_types.items():
        if isinstance(type_, ty.CompType):
            env[name_] = init_env[name_]
        else:
            env[name_] = fresh.var(name_, type_, "state")
    return env


def generic_step(info: ProgramInfo,
                 fresh: Optional[FreshNames] = None,
                 executor=None) -> GenericStep:
    """Build the inductive step for ``info``.

    Deterministic, and *locally* so: the Init summary, the pre-state
    environment, and each exchange draw from their own prefixed name
    supplies, so editing one handler leaves every other exchange's terms
    unchanged — the property the incremental verifier relies on.

    ``executor`` selects the symbolic evaluator for handler bodies
    (``sym_exec``-compatible); the default walks the AST, while
    :func:`repro.symbolic.compile.compiled_executor` runs pre-compiled
    step programs.  Both produce identical terms in identical order.
    """
    init = init_summary(info, fresh or FreshNames("init:"))
    pre_env = arbitrary_pre_env(info, init, FreshNames("pre:"))
    exchanges: List[Exchange] = []
    for ctype, msg in info.program.exchange_keys():
        exchanges.append(build_exchange(
            info, ctype, msg, pre_env, init.comps,
            FreshNames(f"{ctype}.{msg}:"),
            executor=executor,
        ))
    return GenericStep(
        info=info,
        init=init,
        pre_env=tuple(sorted(pre_env.items())),
        exchanges=tuple(exchanges),
    )


def build_exchange(info: ProgramInfo, ctype: str, msg: str,
                   pre_env: Dict[str, Term], known: Tuple[SComp, ...],
                   fresh: FreshNames, executor=None) -> Exchange:
    """Symbolically evaluate one (component type, message type) exchange."""
    decl = info.comp_table[ctype]
    msg_decl = info.msg_table[msg]
    sender = SComp(
        label=fresh.comp_label(f"sender_{ctype}"),
        ctype=ctype,
        config=tuple(
            fresh.var(f"{ctype}_{f.name}", f.type, "config")
            for f in decl.config
        ),
        origin="sender",
        seq=fresh.seq(),
    )
    handler = info.program.handler_for(ctype, msg)
    if handler is not None:
        payload = tuple(
            fresh.var(f"{msg}_{param}", type_, "payload")
            for param, type_ in zip(handler.params, msg_decl.payload)
        )
        params = dict(zip(handler.params, payload))
        body: ast.Cmd = handler.body
    else:
        payload = tuple(
            fresh.var(f"{msg}_{i}", type_, "payload")
            for i, type_ in enumerate(msg_decl.payload)
        )
        params = {}
        body = ast.Nop()
    boundary: Tuple[Template, ...] = (
        TSelect(sender),
        TRecv(sender, msg, payload),
    )
    run = executor if executor is not None else sym_exec
    paths = run(
        info, body, pre_env, params, sender, known, fresh,
        base_actions=boundary,
    )
    return Exchange(
        ctype=ctype,
        msg=msg,
        sender=sender,
        payload=payload,
        handler=handler,
        paths=tuple(paths),
    )


# ---------------------------------------------------------------------------
# The executable "sats" arrow: trace acceptance
# ---------------------------------------------------------------------------


class RejectedTrace(Exception):
    """Raised by :class:`AbstractionChecker` with the reason a trace is not
    one the abstraction predicts."""


class AbstractionChecker:
    """Replays a concrete trace against the program semantics.

    Independent of the :class:`~repro.runtime.world.World`: call results and
    spawned component identities are taken from the trace itself, so the
    checker accepts exactly the traces the abstraction allows.  The
    randomized soundness suite asserts ``interpreter traces ⊆ accepted``.
    """

    def __init__(self, info: ProgramInfo) -> None:
        self.info = info

    def accepts(self, trace: Trace) -> bool:
        try:
            self.check(trace)
            return True
        except RejectedTrace:
            return False

    def check(self, trace: Trace) -> None:
        """Raise :class:`RejectedTrace` unless the trace is predicted."""
        actions = list(trace.chronological())
        cursor = _Cursor(actions)
        state = KernelState(comp_decls=dict(self.info.comp_table))
        self._replay_init(cursor, state)
        while not cursor.done():
            self._replay_exchange(cursor, state)

    # -- init -----------------------------------------------------------------

    def _replay_init(self, cursor: "_Cursor", state: KernelState) -> None:
        scope = _Scope({}, None)
        for cmd in self.info.program.init:
            if isinstance(cmd, ast.Nop):
                continue
            if isinstance(cmd, ast.Assign):
                state.env[cmd.var] = eval_expr(cmd.expr, state, scope)
            elif isinstance(cmd, ast.SpawnCmd):
                comp = self._expect_spawn(cursor, state, scope, cmd)
                state.env[cmd.bind] = VComp(comp)
            elif isinstance(cmd, ast.CallCmd):
                state.env[cmd.bind] = self._expect_call(cursor, state,
                                                        scope, cmd)
            else:  # pragma: no cover - validation forbids this
                raise RejectedTrace(f"non-flat Init command {cmd}")

    # -- exchanges --------------------------------------------------------------

    def _replay_exchange(self, cursor: "_Cursor",
                         state: KernelState) -> None:
        select = cursor.next("a Select action")
        if not isinstance(select, ASelect):
            raise RejectedTrace(f"expected Select, found {select}")
        if select.comp not in state.comps:
            raise RejectedTrace(
                f"Select of unknown component {select.comp}"
            )
        recv = cursor.next("a Recv action")
        if not isinstance(recv, ARecv) or recv.comp != select.comp:
            raise RejectedTrace(
                f"expected Recv from {select.comp}, found {recv}"
            )
        decl = self.info.msg_table.get(recv.msg)
        if decl is None or len(recv.payload) != decl.arity:
            raise RejectedTrace(f"malformed message in {recv}")
        handler = self.info.program.handler_for(recv.comp.ctype, recv.msg)
        if handler is None:
            return
        scope = _Scope(dict(zip(handler.params, recv.payload)), recv.comp)
        self._replay_cmd(handler.body, cursor, state, scope)

    def _replay_cmd(self, cmd: ast.Cmd, cursor: "_Cursor",
                    state: KernelState, scope: _Scope) -> _Scope:
        if isinstance(cmd, ast.Nop):
            return scope
        if isinstance(cmd, ast.Assign):
            state.env[cmd.var] = eval_expr(cmd.expr, state, scope)
            return scope
        if isinstance(cmd, ast.Seq):
            running = scope
            for c in cmd.cmds:
                running = self._replay_cmd(c, cursor, state, running)
            return scope
        if isinstance(cmd, ast.If):
            cond = eval_expr(cmd.cond, state, scope)
            if not isinstance(cond, VBool):
                raise RejectedTrace(f"non-boolean branch condition {cmd}")
            branch = cmd.then if cond.b else cmd.otherwise
            self._replay_cmd(branch, cursor, state, scope)
            return scope
        if isinstance(cmd, ast.SendCmd):
            target = eval_expr(cmd.target, state, scope)
            payload = tuple(
                eval_expr(a, state, scope) for a in cmd.args
            )
            action = cursor.next(f"Send for {cmd}")
            if not isinstance(action, ASend):
                raise RejectedTrace(f"expected Send, found {action}")
            if not isinstance(target, VComp) or action.comp != target.comp \
                    or action.msg != cmd.msg or action.payload != payload:
                raise RejectedTrace(
                    f"Send mismatch: program prescribes "
                    f"send({target}, {cmd.msg}{payload}), trace has {action}"
                )
            return scope
        if isinstance(cmd, ast.SpawnCmd):
            comp = self._expect_spawn(cursor, state, scope, cmd)
            if cmd.bind is not None:
                return scope.bind(cmd.bind, VComp(comp))
            return scope
        if isinstance(cmd, ast.CallCmd):
            result = self._expect_call(cursor, state, scope, cmd)
            return scope.bind(cmd.bind, result)
        if isinstance(cmd, ast.LookupCmd):
            for comp in state.lookup_components(cmd.ctype):
                candidate = scope.bind(cmd.bind, VComp(comp))
                verdict = eval_expr(cmd.pred, state, candidate)
                if isinstance(verdict, VBool) and verdict.b:
                    self._replay_cmd(cmd.found, cursor, state, candidate)
                    return scope
            self._replay_cmd(cmd.missing, cursor, state, scope)
            return scope
        raise RejectedTrace(f"unknown command form {cmd!r}")

    # -- helpers ---------------------------------------------------------------

    def _expect_spawn(self, cursor: "_Cursor", state: KernelState,
                      scope: _Scope, cmd: ast.SpawnCmd):
        config = tuple(
            eval_expr(e, state, scope) for e in cmd.config
        )
        action = cursor.next(f"Spawn for {cmd}")
        if not isinstance(action, ASpawn):
            raise RejectedTrace(f"expected Spawn, found {action}")
        comp = action.comp
        if comp.ctype != cmd.ctype or comp.config != config:
            raise RejectedTrace(
                f"Spawn mismatch: program prescribes {cmd.ctype}{config}, "
                f"trace has {action}"
            )
        if any(existing.ident == comp.ident for existing in state.comps):
            raise RejectedTrace(f"re-spawn of existing component {comp}")
        state.comps.append(comp)
        return comp

    def _expect_call(self, cursor: "_Cursor", state: KernelState,
                     scope: _Scope, cmd: ast.CallCmd) -> Value:
        args = tuple(eval_expr(e, state, scope) for e in cmd.args)
        action = cursor.next(f"Call for {cmd}")
        if not isinstance(action, ACall):
            raise RejectedTrace(f"expected Call, found {action}")
        if action.func != cmd.func or action.args != args:
            raise RejectedTrace(
                f"Call mismatch: program prescribes {cmd.func}{args}, "
                f"trace has {action}"
            )
        return action.result


class _Cursor:
    """A consuming cursor over the chronological action list."""

    def __init__(self, actions: List[Action]) -> None:
        self._actions = actions
        self._pos = 0

    def next(self, expectation: str) -> Action:
        if self._pos >= len(self._actions):
            raise RejectedTrace(f"trace ended; expected {expectation}")
        action = self._actions[self._pos]
        self._pos += 1
        return action

    def done(self) -> bool:
        return self._pos >= len(self._actions)
