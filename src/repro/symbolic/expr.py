"""Symbolic terms.

The behavioral abstraction (paper section 3.3) characterizes *arbitrary*
reachable states, so the symbolic evaluator manipulates terms over symbolic
variables rather than concrete values:

* :class:`SVar` — an unknown: a message payload field, an external call
  result, a configuration field of an arbitrary component, the value of a
  state variable at an arbitrary reachable state, or a universally
  quantified property/labeling parameter.  The ``origin`` tag records which,
  and drives the non-interference taint analysis.
* :class:`SComp` — a component *instance* term: the identity of a component
  the kernel holds a reference to.  Its ``origin`` encodes how the prover
  knows about it (spawned during Init, the current sender, found by
  ``lookup``, or freshly spawned by the current handler), which determines
  what distinctness facts the solver may use.
* :class:`SConst`, :class:`STuple`, :class:`SProj`, :class:`SOp` — the
  obvious congruence-closed structure over them.

Terms are immutable, hashable dataclasses; the simplifier
(:mod:`repro.symbolic.simplify`) and the solver (:mod:`repro.symbolic
.solver`) treat them purely structurally.

**Hash consing.**  Term constructors intern: structurally equal terms built
in the same process are the *same object*, so equality is usually a pointer
comparison and dictionary lookups (the simplify memo, the solver query
cache, union-find tables) hit the identity fast path.  Each term also
carries a stable 64-bit structural hash (``term_hash``), computed bottom-up
at construction from a keyed BLAKE2 digest — independent of
``PYTHONHASHSEED`` and of the process that built the term.

Correctness never *depends* on interning: ``__eq__`` falls back to a
structural comparison, so terms that predate :func:`reset_interning` (or
that crossed a process boundary) still compare equal to freshly interned
ones.  Pickled terms re-intern on load (``__reduce__`` routes through the
constructor), which is what keeps the tables consistent in
:mod:`repro.prover.parallel` workers — each worker resets to a fresh table
in its pool initializer and rebuilds it from the unpickled spec.
"""

from __future__ import annotations

import hashlib
import itertools
import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Tuple, Union

from .. import obs
from ..lang import types as ty
from ..lang.errors import SymbolicError
from ..lang.values import Value, VBool, VNum, VStr, VTuple

# ---------------------------------------------------------------------------
# Interning machinery
# ---------------------------------------------------------------------------

#: Debug escape hatch: ``REPRO_TERM_INTERN=0`` disables the intern table
#: (constructors return fresh objects; structural equality still holds).
_INTERNING = os.environ.get("REPRO_TERM_INTERN", "1") != "0"

#: The per-process intern table: ``(class, shallow field tuple) → term``.
_TABLE: Dict[tuple, "Term"] = {}


def _intern(cls, args: tuple):
    """Return the canonical instance of ``cls(*args)``, allocating (and
    remembering) one on first sight."""
    if not _INTERNING:
        return object.__new__(cls)
    key = (cls, args)
    hit = _TABLE.get(key)
    if hit is not None:
        obs.incr("term.intern.hit")
        return hit
    obs.incr("term.intern.miss")
    obj = object.__new__(cls)
    _TABLE[key] = obj
    return obj


def intern_table_size() -> int:
    """Number of distinct terms currently interned in this process."""
    return len(_TABLE)


def reset_interning() -> None:
    """Drop the intern table (fresh-table-per-worker contract).

    Existing terms stay valid — equality degrades gracefully to the
    structural fallback — and the canonical booleans are re-seeded so the
    module singletons stay the canonical representatives.  The memo
    caches are dropped with the table: their entries hold pre-reset
    objects that would otherwise linger as equal-but-not-identical
    representatives.
    """
    from . import cache as _cache

    _TABLE.clear()
    for singleton in (S_TRUE, S_FALSE):
        _TABLE[(SConst, (singleton.value,))] = singleton
    _cache.clear_all()
    # Compiled plans pin whole term graphs (the memoized GenericStep and
    # hot verdict payloads); letting them outlive the table would mix
    # pre- and post-reset term generations, so they are dropped with it.
    from . import compile as _compile

    _compile.clear_plans()


def _feed_hash(h, value) -> None:
    """Mix one (possibly nested) constructor field into a hash state."""
    if isinstance(value, _Node):
        h.update(b"T")
        h.update(value._shash.to_bytes(8, "big"))
    elif isinstance(value, tuple):
        h.update(b"(%d:" % len(value))
        for element in value:
            _feed_hash(h, element)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        h.update(b"s%d:" % len(raw))
        h.update(raw)
    elif isinstance(value, int):
        h.update(b"i")
        h.update(str(value).encode("ascii"))
    else:  # Value / Type leaves: reprs are canonical for frozen dataclasses
        raw = repr(value).encode("utf-8")
        h.update(b"r%d:" % len(raw))
        h.update(raw)


def _structural_eq(a, b) -> bool:
    """Field-by-field equality, iterative so arbitrarily deep terms never
    overflow the interpreter stack."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        if isinstance(x, _Node):
            if x.__class__ is not y.__class__ or x._shash != y._shash:
                return False
            for name in x.__dataclass_fields__:
                stack.append((getattr(x, name), getattr(y, name)))
        elif isinstance(x, tuple):
            if not isinstance(y, tuple) or len(x) != len(y):
                return False
            stack.extend(zip(x, y))
        elif x != y:
            return False
    return True


class _Node:
    """Shared term plumbing: stable hashing, fast equality, re-interning
    pickle support.  Subclasses are frozen dataclasses with ``eq=False``."""

    __slots__ = ()

    def __post_init__(self) -> None:
        """Compute the stable structural hash once, at first construction
        (an intern hit re-runs ``__init__`` but keeps the cached hash)."""
        if "_shash" not in self.__dict__:
            h = hashlib.blake2b(digest_size=8)
            h.update(self.__class__.__name__.encode("ascii"))
            for name in self.__dataclass_fields__:
                h.update(b"\x1f")
                _feed_hash(h, getattr(self, name))
            object.__setattr__(
                self, "_shash", int.from_bytes(h.digest(), "big")
            )

    @property
    def term_hash(self) -> int:
        """The stable 64-bit structural hash: equal for structurally equal
        terms in every process, regardless of ``PYTHONHASHSEED``."""
        return self._shash

    def __hash__(self) -> int:
        return self._shash

    def __eq__(self, other) -> bool:
        if self is other:  # interning makes this the common case
            return True
        if self.__class__ is not other.__class__:
            return NotImplemented
        if self._shash != other._shash:
            return False
        return _structural_eq(self, other)

    def __reduce__(self):
        # Route unpickling through the constructor so loaded terms intern
        # into the receiving process's table.
        return (self.__class__, tuple(
            getattr(self, name) for name in self.__dataclass_fields__
        ))


# ---------------------------------------------------------------------------
# Term constructors
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False)
class SConst(_Node):
    """A concrete value embedded in the term language."""

    value: Value

    def __new__(cls, value):
        return _intern(cls, (value,))

    def __str__(self) -> str:
        return str(self.value)


#: SVar origins, in the order the NI taint analysis cares about them.
SVAR_ORIGINS = (
    "payload",   # a payload field of the message being handled
    "call",      # the result of an external call (non-deterministic context)
    "config",    # a configuration field of an arbitrary component
    "state",     # a global variable's value at an arbitrary reachable state
    "param",     # a universally quantified property / labeling parameter
    "init_call", # a call result captured during Init
)


@dataclass(frozen=True, eq=False)
class SVar(_Node):
    """A symbolic variable.  Names are globally unique per obligation; the
    factory :class:`FreshNames` enforces this."""

    name: str
    type: ty.Type
    origin: str

    def __new__(cls, name, type, origin):  # noqa: A002 - field name
        return _intern(cls, (name, type, origin))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class STuple(_Node):
    """A literal tuple of terms."""

    elems: Tuple["Term", ...]

    def __new__(cls, elems):
        return _intern(cls, (elems,))

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.elems) + ")"


@dataclass(frozen=True, eq=False)
class SProj(_Node):
    """Projection out of a tuple-typed term that is not literally a tuple
    (e.g. the symbolic value of a tuple-typed state variable)."""

    base: "Term"
    index: int

    def __new__(cls, base, index):
        return _intern(cls, (base, index))

    def __str__(self) -> str:
        return f"{self.base}.{self.index}"


#: SComp origins.  Distinctness rules (enforced by the solver):
#: ``init`` components are pairwise distinct; a ``fresh`` component is
#: distinct from every component that existed before the current handler ran
#: (i.e. every non-``fresh`` component and earlier ``fresh`` ones); ``sender``
#: and ``lookup`` components are arbitrary members of the pre-state component
#: set and may alias ``init`` components or each other.
SCOMP_ORIGINS = ("init", "sender", "lookup", "fresh")


@dataclass(frozen=True, eq=False)
class SComp(_Node):
    """A component-instance term.

    ``label`` is unique per obligation (it names *how the prover refers* to
    the instance, not its runtime identity); ``config`` holds one term per
    configuration field.  ``seq`` orders ``fresh`` components so that later
    fresh spawns are provably distinct from earlier ones.
    """

    label: str
    ctype: str
    config: Tuple["Term", ...]
    origin: str
    seq: int = 0

    def __new__(cls, label, ctype, config, origin, seq=0):
        return _intern(cls, (label, ctype, config, origin, seq))

    def __str__(self) -> str:
        cfg = ", ".join(str(c) for c in self.config)
        return f"{self.label}:{self.ctype}({cfg})"


#: Operators of the term language.  ``eq`` is polymorphic; ``not``/``and``/
#: ``or`` boolean; ``add``/``sub``/``lt``/``le`` numeric; ``concat`` strings.
S_OPS = ("eq", "not", "and", "or", "add", "sub", "lt", "le", "concat")


@dataclass(frozen=True, eq=False)
class SOp(_Node):
    """An operator application over terms."""

    op: str
    args: Tuple["Term", ...]

    def __new__(cls, op, args):
        return _intern(cls, (op, args))

    def __str__(self) -> str:
        if self.op == "not":
            return f"!({self.args[0]})"
        if len(self.args) == 2:
            return f"({self.args[0]} {self.op} {self.args[1]})"
        inner = f" {self.op} ".join(str(a) for a in self.args)
        return f"({inner})"


Term = Union[SConst, SVar, STuple, SProj, SComp, SOp]

#: Canonical boolean constants.
S_TRUE = SConst(VBool(True))
S_FALSE = SConst(VBool(False))


def sconst(v: object) -> SConst:
    """Embed a Python value as a constant term."""
    from ..lang.values import from_python

    return SConst(from_python(v))


def snum(n: int) -> SConst:
    """A numeric constant term."""
    return SConst(VNum(n))


def sstr(s: str) -> SConst:
    """A string constant term."""
    return SConst(VStr(s))


def seq_(a: Term, b: Term) -> SOp:
    """The equality atom ``a == b``."""
    return SOp("eq", (a, b))


def sne(a: Term, b: Term) -> SOp:
    """The disequality literal ``a != b``."""
    return SOp("not", (SOp("eq", (a, b)),))


def snot(a: Term) -> SOp:
    """Boolean negation."""
    return SOp("not", (a,))


def sand(*args: Term) -> Term:
    """N-ary conjunction (empty = true, singleton = the term itself)."""
    if not args:
        return S_TRUE
    if len(args) == 1:
        return args[0]
    return SOp("and", tuple(args))


def sor(*args: Term) -> Term:
    """N-ary disjunction (empty = false, singleton = the term itself)."""
    if not args:
        return S_FALSE
    if len(args) == 1:
        return args[0]
    return SOp("or", tuple(args))


def sadd(a: Term, b: Term) -> SOp:
    """Numeric addition."""
    return SOp("add", (a, b))


def ssub(a: Term, b: Term) -> SOp:
    """Numeric subtraction."""
    return SOp("sub", (a, b))


# ---------------------------------------------------------------------------
# Traversal
# ---------------------------------------------------------------------------


def term_children(t: Term) -> Tuple[Term, ...]:
    """The direct sub-terms of ``t`` (empty for leaves)."""
    if isinstance(t, STuple):
        return t.elems
    if isinstance(t, SProj):
        return (t.base,)
    if isinstance(t, SComp):
        return t.config
    if isinstance(t, SOp):
        return t.args
    return ()


def sub_terms(t: Term) -> Iterator[Term]:
    """Yield ``t`` and all sub-terms, pre-order (iterative: safe on
    arbitrarily deep terms)."""
    stack = [t]
    while stack:
        current = stack.pop()
        yield current
        children = term_children(current)
        if children:
            stack.extend(reversed(children))


def free_vars(t: Term) -> FrozenSet[SVar]:
    """All symbolic variables occurring in ``t`` (including inside component
    configurations)."""
    return frozenset(x for x in sub_terms(t) if isinstance(x, SVar))


def comps_in(t: Term) -> FrozenSet[SComp]:
    """All component terms occurring in ``t``."""
    return frozenset(x for x in sub_terms(t) if isinstance(x, SComp))


def substitute(t: Term, mapping: Dict[Term, Term]) -> Term:
    """Capture-free substitution of whole sub-terms.

    Used by invariant generalization (replace payload terms by universal
    parameters) and by the checker when re-validating instantiations.
    Iterative post-order rebuild, so deep terms never overflow the stack.
    """
    memo: Dict[Term, Term] = {}
    stack: List[Term] = [t]
    while stack:
        current = stack[-1]
        if current in memo:
            stack.pop()
            continue
        hit = mapping.get(current)
        if hit is not None:
            memo[current] = hit
            stack.pop()
            continue
        children = term_children(current)
        pending = [c for c in children if c not in memo]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        if isinstance(current, STuple):
            memo[current] = STuple(
                tuple(memo[e] for e in current.elems)
            )
        elif isinstance(current, SProj):
            memo[current] = SProj(memo[current.base], current.index)
        elif isinstance(current, SComp):
            memo[current] = SComp(
                current.label,
                current.ctype,
                tuple(memo[e] for e in current.config),
                current.origin,
                current.seq,
            )
        elif isinstance(current, SOp):
            memo[current] = SOp(
                current.op, tuple(memo[a] for a in current.args)
            )
        else:
            memo[current] = current
    return memo[t]


# ---------------------------------------------------------------------------
# Fresh-name supply
# ---------------------------------------------------------------------------


class FreshNames:
    """A supply of unique variable and component labels.

    ``prefix`` namespaces the supply: the behavioral abstraction uses one
    supply per exchange (prefixed by the exchange key) so that editing one
    handler leaves every other exchange's terms byte-identical — which is
    what lets the incremental verifier revalidate old derivations against
    a re-built abstraction.  Distinct prefixes guarantee distinct names.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._counters = itertools.count()

    def var(self, hint: str, type_: ty.Type, origin: str) -> SVar:
        """A fresh symbolic variable tagged with its ``origin``."""
        if origin not in SVAR_ORIGINS:
            raise SymbolicError(f"unknown SVar origin {origin}")
        return SVar(f"{self.prefix}{hint}${next(self._counters)}", type_,
                    origin)

    def comp_label(self, hint: str) -> str:
        """A fresh component label."""
        return f"{self.prefix}{hint}${next(self._counters)}"

    def seq(self) -> int:
        """A fresh sequence number (orders ``fresh`` spawns)."""
        return next(self._counters)


def lift_value(v: Value) -> Term:
    """Embed a concrete value as a term, exposing tuple structure so the
    simplifier can decompose equalities element-wise."""
    if isinstance(v, VTuple):
        return STuple(tuple(lift_value(e) for e in v.elems))
    return SConst(v)
