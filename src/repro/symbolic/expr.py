"""Symbolic terms.

The behavioral abstraction (paper section 3.3) characterizes *arbitrary*
reachable states, so the symbolic evaluator manipulates terms over symbolic
variables rather than concrete values:

* :class:`SVar` — an unknown: a message payload field, an external call
  result, a configuration field of an arbitrary component, the value of a
  state variable at an arbitrary reachable state, or a universally
  quantified property/labeling parameter.  The ``origin`` tag records which,
  and drives the non-interference taint analysis.
* :class:`SComp` — a component *instance* term: the identity of a component
  the kernel holds a reference to.  Its ``origin`` encodes how the prover
  knows about it (spawned during Init, the current sender, found by
  ``lookup``, or freshly spawned by the current handler), which determines
  what distinctness facts the solver may use.
* :class:`SConst`, :class:`STuple`, :class:`SProj`, :class:`SOp` — the
  obvious congruence-closed structure over them.

Terms are immutable, hashable dataclasses; the simplifier
(:mod:`repro.symbolic.simplify`) and the solver (:mod:`repro.symbolic
.solver`) treat them purely structurally.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Tuple, Union

from ..lang import types as ty
from ..lang.errors import SymbolicError
from ..lang.values import Value, VBool, VNum, VStr, VTuple

# ---------------------------------------------------------------------------
# Term constructors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SConst:
    """A concrete value embedded in the term language."""

    value: Value

    def __str__(self) -> str:
        return str(self.value)


#: SVar origins, in the order the NI taint analysis cares about them.
SVAR_ORIGINS = (
    "payload",   # a payload field of the message being handled
    "call",      # the result of an external call (non-deterministic context)
    "config",    # a configuration field of an arbitrary component
    "state",     # a global variable's value at an arbitrary reachable state
    "param",     # a universally quantified property / labeling parameter
    "init_call", # a call result captured during Init
)


@dataclass(frozen=True)
class SVar:
    """A symbolic variable.  Names are globally unique per obligation; the
    factory :class:`FreshNames` enforces this."""

    name: str
    type: ty.Type
    origin: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class STuple:
    elems: Tuple["Term", ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.elems) + ")"


@dataclass(frozen=True)
class SProj:
    """Projection out of a tuple-typed term that is not literally a tuple
    (e.g. the symbolic value of a tuple-typed state variable)."""

    base: "Term"
    index: int

    def __str__(self) -> str:
        return f"{self.base}.{self.index}"


#: SComp origins.  Distinctness rules (enforced by the solver):
#: ``init`` components are pairwise distinct; a ``fresh`` component is
#: distinct from every component that existed before the current handler ran
#: (i.e. every non-``fresh`` component and earlier ``fresh`` ones); ``sender``
#: and ``lookup`` components are arbitrary members of the pre-state component
#: set and may alias ``init`` components or each other.
SCOMP_ORIGINS = ("init", "sender", "lookup", "fresh")


@dataclass(frozen=True)
class SComp:
    """A component-instance term.

    ``label`` is unique per obligation (it names *how the prover refers* to
    the instance, not its runtime identity); ``config`` holds one term per
    configuration field.  ``seq`` orders ``fresh`` components so that later
    fresh spawns are provably distinct from earlier ones.
    """

    label: str
    ctype: str
    config: Tuple["Term", ...]
    origin: str
    seq: int = 0

    def __str__(self) -> str:
        cfg = ", ".join(str(c) for c in self.config)
        return f"{self.label}:{self.ctype}({cfg})"


#: Operators of the term language.  ``eq`` is polymorphic; ``not``/``and``/
#: ``or`` boolean; ``add``/``sub``/``lt``/``le`` numeric; ``concat`` strings.
S_OPS = ("eq", "not", "and", "or", "add", "sub", "lt", "le", "concat")


@dataclass(frozen=True)
class SOp:
    op: str
    args: Tuple["Term", ...]

    def __str__(self) -> str:
        if self.op == "not":
            return f"!({self.args[0]})"
        if len(self.args) == 2:
            return f"({self.args[0]} {self.op} {self.args[1]})"
        inner = f" {self.op} ".join(str(a) for a in self.args)
        return f"({inner})"


Term = Union[SConst, SVar, STuple, SProj, SComp, SOp]

#: Canonical boolean constants.
S_TRUE = SConst(VBool(True))
S_FALSE = SConst(VBool(False))


def sconst(v: object) -> SConst:
    from ..lang.values import from_python

    return SConst(from_python(v))


def snum(n: int) -> SConst:
    return SConst(VNum(n))


def sstr(s: str) -> SConst:
    return SConst(VStr(s))


def seq_(a: Term, b: Term) -> SOp:
    return SOp("eq", (a, b))


def sne(a: Term, b: Term) -> SOp:
    return SOp("not", (SOp("eq", (a, b)),))


def snot(a: Term) -> SOp:
    return SOp("not", (a,))


def sand(*args: Term) -> Term:
    if not args:
        return S_TRUE
    if len(args) == 1:
        return args[0]
    return SOp("and", tuple(args))


def sor(*args: Term) -> Term:
    if not args:
        return S_FALSE
    if len(args) == 1:
        return args[0]
    return SOp("or", tuple(args))


def sadd(a: Term, b: Term) -> SOp:
    return SOp("add", (a, b))


def ssub(a: Term, b: Term) -> SOp:
    return SOp("sub", (a, b))


# ---------------------------------------------------------------------------
# Traversal
# ---------------------------------------------------------------------------


def sub_terms(t: Term) -> Iterator[Term]:
    """Yield ``t`` and all sub-terms, pre-order."""
    yield t
    if isinstance(t, STuple):
        for e in t.elems:
            yield from sub_terms(e)
    elif isinstance(t, SProj):
        yield from sub_terms(t.base)
    elif isinstance(t, SComp):
        for e in t.config:
            yield from sub_terms(e)
    elif isinstance(t, SOp):
        for a in t.args:
            yield from sub_terms(a)


def free_vars(t: Term) -> FrozenSet[SVar]:
    """All symbolic variables occurring in ``t`` (including inside component
    configurations)."""
    return frozenset(x for x in sub_terms(t) if isinstance(x, SVar))


def comps_in(t: Term) -> FrozenSet[SComp]:
    """All component terms occurring in ``t``."""
    return frozenset(x for x in sub_terms(t) if isinstance(x, SComp))


def substitute(t: Term, mapping: Dict[Term, Term]) -> Term:
    """Capture-free substitution of whole sub-terms.

    Used by invariant generalization (replace payload terms by universal
    parameters) and by the checker when re-validating instantiations.
    """
    hit = mapping.get(t)
    if hit is not None:
        return hit
    if isinstance(t, STuple):
        return STuple(tuple(substitute(e, mapping) for e in t.elems))
    if isinstance(t, SProj):
        return SProj(substitute(t.base, mapping), t.index)
    if isinstance(t, SComp):
        return SComp(
            t.label,
            t.ctype,
            tuple(substitute(e, mapping) for e in t.config),
            t.origin,
            t.seq,
        )
    if isinstance(t, SOp):
        return SOp(t.op, tuple(substitute(a, mapping) for a in t.args))
    return t


# ---------------------------------------------------------------------------
# Fresh-name supply
# ---------------------------------------------------------------------------


class FreshNames:
    """A supply of unique variable and component labels.

    ``prefix`` namespaces the supply: the behavioral abstraction uses one
    supply per exchange (prefixed by the exchange key) so that editing one
    handler leaves every other exchange's terms byte-identical — which is
    what lets the incremental verifier revalidate old derivations against
    a re-built abstraction.  Distinct prefixes guarantee distinct names.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._counters = itertools.count()

    def var(self, hint: str, type_: ty.Type, origin: str) -> SVar:
        if origin not in SVAR_ORIGINS:
            raise SymbolicError(f"unknown SVar origin {origin}")
        return SVar(f"{self.prefix}{hint}${next(self._counters)}", type_,
                    origin)

    def comp_label(self, hint: str) -> str:
        return f"{self.prefix}{hint}${next(self._counters)}"

    def seq(self) -> int:
        return next(self._counters)


def lift_value(v: Value) -> Term:
    """Embed a concrete value as a term, exposing tuple structure so the
    simplifier can decompose equalities element-wise."""
    if isinstance(v, VTuple):
        return STuple(tuple(lift_value(e) for e in v.elems))
    return SConst(v)
