"""Matching action patterns against action templates.

The concrete matcher (:mod:`repro.props.patterns`) answers "does this
pattern match this action, and with which variable binding?".  Its symbolic
twin here answers the same question about a *template*, whose slots are
terms: the result is a *conditional match* — a set of equality constraints
under which the instantiated template matches, together with a binding of
pattern variables to terms.

Three-valued outcome:

* ``None`` — the pattern can never match any instance of the template
  (different action kind, message name, component type, or arity): a purely
  static refutation.
* ``SymMatch(constraints=(), ...)`` — matches unconditionally.
* ``SymMatch(constraints=(c1, ...), ...)`` — matches exactly when the
  constraints hold; the prover conjoins them with the path condition and
  asks the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..props.patterns import (
    ActionPattern,
    CallPat,
    CompPat,
    FieldPattern,
    MsgPat,
    PLit,
    PVar,
    PWild,
    RecvPat,
    SelectPat,
    SendPat,
    SpawnPat,
)
from .expr import S_FALSE, S_TRUE, SComp, SOp, Term, lift_value
from .simplify import simplify
from .templates import (
    Template,
    TCall,
    TRecv,
    TSelect,
    TSend,
    TSpawn,
)

#: Pattern-variable bindings: property variable name → term.
SymBinding = Dict[str, Term]


@dataclass(frozen=True)
class SymMatch:
    """A conditional match: the template matches the pattern exactly when
    ``constraints`` hold, binding pattern variables per ``binding``."""

    constraints: Tuple[Term, ...]
    binding: Tuple[Tuple[str, Term], ...]

    def binding_dict(self) -> SymBinding:
        return dict(self.binding)

    def __str__(self) -> str:
        cs = " and ".join(str(c) for c in self.constraints) or "true"
        bs = ", ".join(f"{k}={v}" for k, v in self.binding)
        return f"match when [{cs}] binding [{bs}]"


def _match_field(pat: FieldPattern, term: Term, constraints: List[Term],
                 binding: SymBinding) -> bool:
    """Extend constraints/binding for one field; False = statically never."""
    if isinstance(pat, PWild):
        return True
    if isinstance(pat, PLit):
        c = simplify(SOp("eq", (term, lift_value(pat.value))))
        if c == S_FALSE:
            return False
        if c != S_TRUE:
            constraints.append(c)
        return True
    # PVar
    prior = binding.get(pat.name)
    if prior is None:
        binding[pat.name] = term
        return True
    if term is prior:  # interned terms: identical ⇒ equal, no constraint
        return True
    c = simplify(SOp("eq", (term, prior)))
    if c == S_FALSE:
        return False
    if c != S_TRUE:
        constraints.append(c)
    return True


def _match_comp(pat: CompPat, comp: SComp, constraints: List[Term],
                binding: SymBinding) -> bool:
    if pat.ctype != comp.ctype:
        return False
    if pat.config is None:
        return True
    if len(pat.config) != len(comp.config):
        return False
    for fp, term in zip(pat.config, comp.config):
        if not _match_field(fp, term, constraints, binding):
            return False
    return True


def _match_msg(pat: MsgPat, msg: str, payload: Tuple[Term, ...],
               constraints: List[Term], binding: SymBinding) -> bool:
    if pat.name != msg or len(pat.payload) != len(payload):
        return False
    for fp, term in zip(pat.payload, payload):
        if not _match_field(fp, term, constraints, binding):
            return False
    return True


def match_template(pattern: ActionPattern, template: Template,
                   binding: Optional[SymBinding] = None
                   ) -> Optional[SymMatch]:
    """Match ``pattern`` against ``template`` starting from ``binding``."""
    constraints: List[Term] = []
    env: SymBinding = dict(binding or {})

    if isinstance(pattern, SendPat) and isinstance(template, TSend):
        ok = (
            _match_comp(pattern.comp, template.comp, constraints, env)
            and _match_msg(pattern.msg, template.msg, template.payload,
                           constraints, env)
        )
    elif isinstance(pattern, RecvPat) and isinstance(template, TRecv):
        ok = (
            _match_comp(pattern.comp, template.comp, constraints, env)
            and _match_msg(pattern.msg, template.msg, template.payload,
                           constraints, env)
        )
    elif isinstance(pattern, SpawnPat) and isinstance(template, TSpawn):
        ok = _match_comp(pattern.comp, template.comp, constraints, env)
    elif isinstance(pattern, SelectPat) and isinstance(template, TSelect):
        ok = _match_comp(pattern.comp, template.comp, constraints, env)
    elif isinstance(pattern, CallPat) and isinstance(template, TCall):
        ok = pattern.func == template.func \
            and len(pattern.args) == len(template.args)
        if ok:
            for fp, term in zip(pattern.args, template.args):
                if not _match_field(fp, term, constraints, env):
                    ok = False
                    break
        if ok:
            ok = _match_field(pattern.result, template.result, constraints,
                              env)
    else:
        return None

    if not ok:
        return None
    return SymMatch(tuple(constraints), tuple(sorted(env.items())))


def match_comp_term(pat: CompPat, comp: SComp,
                    binding: Optional[SymBinding] = None
                    ) -> Optional[SymMatch]:
    """Match a bare component pattern against a component term (used by the
    non-interference labeling θc and by lookup-coverage reasoning)."""
    constraints: List[Term] = []
    env: SymBinding = dict(binding or {})
    if not _match_comp(pat, comp, constraints, env):
        return None
    return SymMatch(tuple(constraints), tuple(sorted(env.items())))
