"""A small decision procedure for the path-condition fragment.

Path conditions produced by symbolic evaluation are conjunctions of
*literals*: equalities and disequalities over strings, booleans, numbers,
tuples-via-projections and component identities, plus linear integer
comparisons.  :class:`Facts` decides this fragment with:

* union-find congruence classes with downward congruence on component
  configurations (identical components have identical configurations),
* structural distinctness of component terms (Init components are pairwise
  distinct; fresh spawns are distinct from anything pre-existing),
* Gaussian elimination over exact fractions for linear integer equalities,
  with sound integer reasoning for the comparisons the benchmarks need.

Soundness contract (what the proofs rely on):

* :meth:`Facts.inconsistent` returning ``True`` is **sound** — the asserted
  literals really are unsatisfiable.  Returning ``False`` merely means "not
  refuted" (the procedure is incomplete).
* :meth:`Facts.implies` returning ``True`` is **sound** — the conclusion
  really follows.  ``False`` means "could not show it".

The prover only ever uses the sound directions: infeasible paths are pruned
only on ``inconsistent() == True`` and requirements are discharged only on
``implies(...) == True``, mirroring how the paper's tactics either close a
goal or fail (section 5.3: the automation is incomplete but never wrong).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import contextmanager
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..lang import types as ty
from ..lang.values import VBool, VNum
from . import cache as _cache
from .expr import S_FALSE, S_TRUE, SComp, SConst, SOp, Term, snot
from .simplify import (
    Cube,
    Linear,
    _comp_identity,
    dnf,
    linearize,
    simplify,
    term_type,
)

#: The process-wide solver query cache.  A :class:`Facts` is a
#: deterministic fold over its asserted-literal sequence, so every query
#: answer is a pure function of ``(kind, asserted sequence, query term)``
#: — that tuple (of *interned terms*, never raw hashes, so collisions
#: cannot produce unsound answers) is the cache key.  Bounded LRU;
#: :mod:`repro.symbolic.cache` owns the size knob and the on/off switch.
_QUERY_CACHE: "OrderedDict[tuple, bool]" = OrderedDict()

#: The process-wide *prefix* cache: built :class:`Facts` states keyed on
#: the exact literal sequence asserted into them.  A :class:`Facts` is a
#: deterministic fold over its assertion log, so a cached state for a
#: prefix can be copied and extended instead of re-folding the whole
#: sequence — the compiled-pipeline hot path (path feasibility, NI case
#: analysis, occurrence facts) asks for the same prefixes thousands of
#: times.  Entries are never handed out directly: :func:`facts_for`
#: returns copies, so cached states stay frozen.
_PREFIX_CACHE: "OrderedDict[Tuple[Term, ...], Facts]" = OrderedDict()

#: Switch for the prefix cache, independent of the query-cache switch so
#: the ``--no-compile`` escape hatch can restore the pre-compiled-plan
#: solver behavior exactly (see :mod:`repro.symbolic.compile`).
_PREFIX_ENABLED = True


def clear_caches() -> None:
    """Empty the solver query cache and the prefix cache."""
    _QUERY_CACHE.clear()
    _PREFIX_CACHE.clear()


def cache_sizes() -> Dict[str, int]:
    """Current entry counts of the solver caches."""
    return {
        "solver.cache.size": len(_QUERY_CACHE),
        "solver.prefix.size": len(_PREFIX_CACHE),
    }


def set_prefix_enabled(value: bool) -> None:
    """Enable or disable the prefix cache (driven by
    ``ProverOptions.compile_plans``; the batched entailment API still
    works with it off, just without cross-call reuse)."""
    global _PREFIX_ENABLED
    _PREFIX_ENABLED = bool(value)


def prefix_enabled() -> bool:
    """Whether :func:`facts_for` may consult the prefix cache."""
    return _PREFIX_ENABLED and _cache.enabled()


@contextmanager
def prefix_scope(value: bool):
    """Temporarily force the prefix cache on or off (used by the engine
    so ``--no-compile`` restores the exact pre-compiled solver
    behavior)."""
    global _PREFIX_ENABLED
    saved = _PREFIX_ENABLED
    _PREFIX_ENABLED = bool(value)
    try:
        yield
    finally:
        _PREFIX_ENABLED = saved


def _query_cache_get(key: tuple) -> Optional[bool]:
    hit = _QUERY_CACHE.get(key)
    if hit is None:
        obs.incr("solver.cache.miss")
        return None
    obs.incr("solver.cache.hit")
    _QUERY_CACHE.move_to_end(key)
    return hit


def _query_cache_put(key: tuple, result: bool) -> None:
    _QUERY_CACHE[key] = result
    limit = _cache.SOLVER_CACHE_SIZE
    while len(_QUERY_CACHE) > limit:
        _QUERY_CACHE.popitem(last=False)


class Facts:
    """A conjunction of literals with incremental consistency checking."""

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._diseqs: List[Tuple[Term, Term]] = []
        #: linear rows asserted equal to zero
        self._zero_rows: List[Linear] = []
        #: linear rows asserted >= 0 (integers; lt is folded into le via +1)
        self._nonneg_rows: List[Linear] = []
        self._contradiction = False
        #: the assertion log: every ``assert_term`` entry in order, which
        #: (by determinism of the fold) fully determines this state and
        #: therefore keys the process-wide query cache
        self._asserted: List[Term] = []

    # -- copying -------------------------------------------------------------

    def copy(self) -> "Facts":
        """An independent copy (used for entailment probes)."""
        c = Facts.__new__(Facts)
        c._parent = dict(self._parent)
        c._diseqs = list(self._diseqs)
        c._zero_rows = list(self._zero_rows)
        c._nonneg_rows = list(self._nonneg_rows)
        c._contradiction = self._contradiction
        c._asserted = list(self._asserted)
        return c

    # -- union-find ----------------------------------------------------------

    def _find(self, t: Term) -> Term:
        path = []
        while t in self._parent:
            path.append(t)
            t = self._parent[t]
        for p in path:
            self._parent[p] = t
        return t

    def _prefer_rep(self, a: Term, b: Term) -> Tuple[Term, Term]:
        """(new_rep, absorbed): constants make the best representatives."""
        if isinstance(b, SConst):
            return b, a
        return a, b

    def _merge(self, a: Term, b: Term) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return
        if isinstance(ra, SConst) and isinstance(rb, SConst):
            if ra.value != rb.value:
                self._contradiction = True
                return
        if isinstance(ra, SComp) and isinstance(rb, SComp):
            decided = _comp_identity(ra, rb)
            if decided is False:
                self._contradiction = True
                return
        rep, absorbed = self._prefer_rep(ra, rb)
        self._parent[absorbed] = rep
        # Downward congruence on component configurations.
        if isinstance(ra, SComp) and isinstance(rb, SComp):
            for x, y in zip(ra.config, rb.config):
                self._merge(simplify(x), simplify(y))
                if self._contradiction:
                    return
        # Numeric classes feed the linear engine.
        if _is_numeric(ra) or _is_numeric(rb):
            self._add_zero_row(linearize(SOp("sub", (ra, rb))))
        self._recheck_diseqs()

    def _recheck_diseqs(self) -> None:
        for a, b in self._diseqs:
            if self._find(a) == self._find(b):
                self._contradiction = True
                return

    # -- linear engine ---------------------------------------------------------

    def _add_zero_row(self, row: Linear) -> None:
        const, items = row
        if not items:
            if const != 0:
                self._contradiction = True
            return
        self._zero_rows.append(row)
        if self._reduce_all() is None:
            self._contradiction = True

    def _reduce_all(self) -> Optional[List[Linear]]:
        """Row-reduce the zero rows; ``None`` signals inconsistency."""
        reduced: List[Linear] = []
        for row in self._zero_rows:
            row = _reduce_row(row, reduced)
            const, items = row
            if not items:
                if const != 0:
                    return None
                continue
            reduced.append(_scale_leading(row))
        return reduced

    def _row_implied_zero(self, row: Linear) -> bool:
        reduced = self._reduce_all()
        if reduced is None:
            return True  # inconsistent facts imply everything
        for derived in self._bound_pair_equalities(reduced):
            derived = _reduce_row(derived, reduced)
            if derived[1]:
                reduced = reduced + [_scale_leading(derived)]
        const, items = _reduce_row(self._normalize_row(row), reduced)
        return not items and const == 0

    def _bound_pair_equalities(self, reduced: List[Linear]) -> List[Linear]:
        """Equalities forced by opposite inequality bounds: if both
        ``e >= 0`` and ``-e >= 0`` hold then ``e == 0`` (e.g. ``x < 1``
        over the naturals forces ``x == 0``)."""
        evaluated: List[Linear] = []
        for row in self._nonneg_rows + self._natural_rows():
            r = _reduce_row(self._normalize_row(row), reduced)
            if r[1]:
                evaluated.append(r)
        forced: List[Linear] = []
        for i, (c1, it1) in enumerate(evaluated):
            negated = tuple((a, -c) for a, c in it1)
            for c2, it2 in evaluated[i + 1:]:
                if it2 == negated and c1 + c2 == 0:
                    forced.append((c1, it1))
        return forced

    def _normalize_row(self, row: Linear) -> Linear:
        """Rewrite a row's atoms through the union-find (reps only)."""
        const, items = row
        out: Dict[Term, Fraction] = {}
        total = const
        for atom, coeff in items:
            rep = self._find(atom)
            if isinstance(rep, SConst) and isinstance(rep.value, VNum):
                total += coeff * rep.value.n
            else:
                out[rep] = out.get(rep, Fraction(0)) + coeff
        return total, tuple(sorted(
            ((a, c) for a, c in out.items() if c != 0),
            key=lambda item: repr(item[0]),
        ))

    def _natural_rows(self) -> List[Linear]:
        """Numbers are naturals: every numeric atom mentioned anywhere is
        itself >= 0.  These implicit rows are what make e.g.
        ``attempts + 1 == 0`` refutable."""
        atoms = set()
        for _, items in self._zero_rows + self._nonneg_rows:
            for atom, _coeff in items:
                atoms.add(atom)
        for a, b in self._diseqs:
            if _is_numeric(a) or _is_numeric(b):
                for term in (a, b):
                    for atom, _coeff in linearize(term)[1]:
                        atoms.add(atom)
        return [
            (Fraction(0), ((atom, Fraction(1)),)) for atom in atoms
        ]

    def _nonneg_violated(self) -> bool:
        """Check the >= 0 rows under the current equalities, using only the
        sound derivations we implement: substitute known values and check
        the sign of fully-determined rows, and pair opposite rows."""
        reduced = self._reduce_all()
        if reduced is None:
            return True
        evaluated: List[Linear] = []
        for row in self._nonneg_rows + self._natural_rows():
            const, items = _reduce_row(self._normalize_row(row), reduced)
            if not items:
                if const < 0:
                    return True
                continue
            evaluated.append((const, items))
        # a >= 0 and -a - k >= 0 with k > 0 is a contradiction; more
        # generally two rows with opposite atom parts and negative constant
        # sum cannot both be non-negative.
        for i, (c1, it1) in enumerate(evaluated):
            negated = tuple((a, -c) for a, c in it1)
            for c2, it2 in evaluated[i + 1:]:
                if it2 == negated and c1 + c2 < 0:
                    return True
        return False

    # -- public API -------------------------------------------------------------

    def assert_term(self, t: Term) -> None:
        """Assert a boolean term (conjunctions are split; anything else must
        be a literal as produced by :func:`repro.symbolic.simplify.dnf`)."""
        t = simplify(t)
        if t == S_TRUE:
            return
        self._asserted.append(t)
        if t == S_FALSE:
            self._contradiction = True
            return
        if isinstance(t, SOp) and t.op == "and":
            for a in t.args:
                self.assert_term(a)
            return
        if isinstance(t, SOp) and t.op == "not":
            self._assert_negated(t.args[0])
            return
        if isinstance(t, SOp) and t.op == "eq":
            self._merge(t.args[0], t.args[1])
            return
        if isinstance(t, SOp) and t.op in ("lt", "le"):
            self._assert_cmp(t.op, t.args[0], t.args[1])
            return
        # Bare boolean atom.
        self._merge(t, S_TRUE)

    def assume_cube(self, cube: Cube) -> None:
        for literal in cube:
            self.assert_term(literal)

    def _assert_negated(self, atom: Term) -> None:
        if isinstance(atom, SOp) and atom.op == "eq":
            a, b = atom.args
            self._assert_diseq(a, b)
            return
        if isinstance(atom, SOp) and atom.op == "lt":
            self._assert_cmp("le", atom.args[1], atom.args[0])
            return
        if isinstance(atom, SOp) and atom.op == "le":
            self._assert_cmp("lt", atom.args[1], atom.args[0])
            return
        self._merge(atom, S_FALSE)

    def _assert_diseq(self, a: Term, b: Term) -> None:
        a, b = simplify(a), simplify(b)
        if _is_numeric(a) or _is_numeric(b):
            # A numeric disequality contradicts an implied equality.
            row = linearize(SOp("sub", (a, b)))
            if self._row_implied_zero(row):
                self._contradiction = True
                return
        if self._find(a) == self._find(b):
            self._contradiction = True
            return
        self._diseqs.append((a, b))

    def _assert_cmp(self, op: str, a: Term, b: Term) -> None:
        # le(a,b): b - a >= 0;  lt(a,b): b - a - 1 >= 0 over the integers.
        const, items = linearize(SOp("sub", (b, a)))
        if op == "lt":
            const -= 1
        if not items:
            if const < 0:
                self._contradiction = True
            return
        self._nonneg_rows.append((const, items))
        if self._nonneg_violated():
            self._contradiction = True

    def inconsistent(self) -> bool:
        """Sound when ``True``: the asserted facts are unsatisfiable."""
        if self._contradiction:
            return True
        if _cache.enabled():
            key = ("incon", tuple(self._asserted))
            hit = _query_cache_get(key)
            if hit is not None:
                if hit:
                    self._contradiction = True
                return hit
            result = self._inconsistent_uncached()
            _query_cache_put(key, result)
            return result
        return self._inconsistent_uncached()

    def _inconsistent_uncached(self) -> bool:
        if self._reduce_all() is None:
            self._contradiction = True
            return True
        if self._nonneg_violated():
            self._contradiction = True
            return True
        # Numeric disequalities whose sides the equalities force together.
        for a, b in self._diseqs:
            if _is_numeric(a) or _is_numeric(b):
                if self._row_implied_zero(linearize(SOp("sub", (a, b)))):
                    self._contradiction = True
                    return True
        return False

    def implies(self, t: Term) -> bool:
        """Sound when ``True``: the facts entail ``t``.

        Decided by refutation: every cube of the DNF of ``¬t`` must be
        inconsistent with the current facts.
        """
        obs.incr("solver.implies")
        registry = obs.metrics_active()
        if registry is None:
            return self._implies_timed(t)
        started = time.perf_counter()
        try:
            return self._implies_timed(t)
        finally:
            registry.observe("solver.query.seconds",
                             time.perf_counter() - started)

    def _implies_timed(self, t: Term) -> bool:
        """The body of :meth:`implies` (split out so the latency
        histogram can wrap it without a second code path)."""
        query = simplify(t)
        if _cache.enabled():
            key = ("implies", tuple(self._asserted), query)
            hit = _query_cache_get(key)
            if hit is not None:
                return hit
            result = self._implies_uncached(query)
            _query_cache_put(key, result)
            return result
        return self._implies_uncached(query)

    def _implies_uncached(self, query: Term) -> bool:
        if self.inconsistent():
            return True
        for cube in dnf(snot(query)):
            probe = self.copy()
            probe.assume_cube(cube)
            if not probe.inconsistent():
                return False
        return True

    def implies_all(self, queries: Iterable[Term],
                    stop_on_failure: bool = False) -> List[bool]:
        """Entailment for a batch of queries against one built state.

        Element-wise identical to calling :meth:`implies` per query (the
        property tests assert exactly that).  With ``stop_on_failure``
        the remaining queries after the first ``False`` are skipped and
        the result list is truncated — the short-circuit the tactics use
        when only the conjunction of the batch matters.
        """
        results: List[bool] = []
        for query in queries:
            result = self.implies(query)
            results.append(result)
            if stop_on_failure and not result:
                break
        return results

    def equal(self, a: Term, b: Term) -> bool:
        """Sound when ``True``: facts entail ``a == b``."""
        return self.implies(SOp("eq", (simplify(a), simplify(b))))


# ---------------------------------------------------------------------------
# Prefix-batched entailment
# ---------------------------------------------------------------------------


def _prefix_cache_put(key: Tuple[Term, ...], facts: Facts) -> None:
    _PREFIX_CACHE[key] = facts
    limit = _cache.PREFIX_CACHE_SIZE
    while len(_PREFIX_CACHE) > limit:
        _PREFIX_CACHE.popitem(last=False)


def facts_for(literals: Sequence[Term]) -> Facts:
    """A :class:`Facts` state with ``literals`` asserted in order.

    Semantically identical to folding ``assert_term`` over the sequence
    on a fresh state.  With the prefix cache enabled, the state is served
    from (or seeded into) the process-wide cache: an exact hit returns a
    copy of the cached state; otherwise the longest cached proper prefix
    is copied and only the suffix literals are discharged incrementally.
    The returned state is always a private copy — callers may assert
    further facts into it freely.
    """
    key = tuple(literals)
    if not prefix_enabled():
        facts = Facts()
        for literal in key:
            facts.assert_term(literal)
        return facts
    cached = _PREFIX_CACHE.get(key)
    if cached is not None:
        obs.incr("solver.prefix.hit")
        _PREFIX_CACHE.move_to_end(key)
        return cached.copy()
    obs.incr("solver.prefix.miss")
    facts = None
    suffix: Tuple[Term, ...] = key
    for cut in range(len(key) - 1, 0, -1):
        base = _PREFIX_CACHE.get(key[:cut])
        if base is not None:
            facts = base.copy()
            suffix = key[cut:]
            break
    if facts is None:
        facts = Facts()
    for literal in suffix:
        facts.assert_term(literal)
    _prefix_cache_put(key, facts.copy())
    return facts


def extend_facts(prefix: Sequence[Term], extra: Sequence[Term]) -> Facts:
    """``facts_for(prefix + extra)`` — the common "shared path condition
    plus a few local constraints" shape, spelled so call sites keep the
    prefix/suffix split visible."""
    return facts_for(tuple(prefix) + tuple(extra))


def entail_batch(prefix: Sequence[Term], queries: Sequence[Term],
                 stop_on_failure: bool = False) -> List[bool]:
    """Discharge a batch of entailment queries sharing an asserted prefix.

    The ``Facts`` state for ``prefix`` is built (or served from the
    prefix cache) once and every query is decided against it — results
    are element-wise identical to building a fresh state per query.
    """
    obs.incr("solver.batch")
    obs.incr("solver.batch.queries", len(queries))
    registry = obs.metrics_active()
    if registry is not None:
        registry.observe("solver.batch.size", len(queries))
    facts = facts_for(prefix)
    return facts.implies_all(queries, stop_on_failure=stop_on_failure)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _is_numeric(t: Term) -> bool:
    try:
        return term_type(t) == ty.NUM
    except Exception:
        return False


def _reduce_row(row: Linear, reduced: List[Linear]) -> Linear:
    const, items = row
    coeffs = dict(items)
    for r_const, r_items in reduced:
        lead_atom, lead_coeff = r_items[0]
        c = coeffs.get(lead_atom)
        if not c:
            continue
        factor = c / lead_coeff
        const -= factor * r_const
        for atom, coeff in r_items:
            coeffs[atom] = coeffs.get(atom, Fraction(0)) - factor * coeff
    return const, tuple(sorted(
        ((a, c) for a, c in coeffs.items() if c != 0),
        key=lambda item: repr(item[0]),
    ))


def _scale_leading(row: Linear) -> Linear:
    const, items = row
    lead = items[0][1]
    return const / lead, tuple((a, c / lead) for a, c in items)


def cube_inconsistent(cube: Cube) -> bool:
    """Convenience: is a standalone cube unsatisfiable?"""
    facts = Facts()
    facts.assume_cube(cube)
    return facts.inconsistent()


def cube_implies(cube: Cube, t: Term) -> bool:
    """Convenience: does a standalone cube entail ``t``?"""
    facts = Facts()
    facts.assume_cube(cube)
    return facts.implies(t)
