"""Incremental re-verification benchmark (§6.4's future-work item,
implemented): the cost of re-verifying after a benign one-handler edit,
with and without derivation reuse."""

import pytest

from repro.frontend import parse_program
from repro.prover import Verifier
from repro.prover.incremental import IncrementalVerifier
from repro.systems import car


def edited_car():
    return parse_program(car.SOURCE.replace('"crank it up"',
                                            '"a bit louder"'))


def test_full_reverification(benchmark):
    """Baseline: re-verify the edited kernel from scratch."""
    edited = edited_car()

    def run():
        return Verifier(edited).verify_all()

    report = benchmark(run)
    assert report.all_proved


def test_incremental_reverification(benchmark, record_table):
    """Incremental: revalidate old derivations against the new
    abstraction; only the edited handler's dependents are re-searched."""
    edited = edited_car()

    def run():
        iv = IncrementalVerifier()
        iv.verify(car.load())  # warm round (counted: the honest workflow)
        return iv.verify(edited)

    report = benchmark(run)
    assert report.all_proved
    counts = report.counts()
    assert counts["revalidated"] >= 5
    record_table("incremental", str(report))


def test_incremental_second_round_only(benchmark):
    """Just the re-verification round, warm cache excluded from timing."""
    edited = edited_car()
    iv = IncrementalVerifier()
    iv.verify(car.load())

    def run():
        return iv.verify(edited)

    report = benchmark(run)
    assert report.all_proved
