"""Mutation-testing benchmark: the cost of re-verifying every
single-point mutant of every benchmark kernel, and the resulting kill
table (an extension of the paper's §6.3 utility claim)."""

import pytest

from repro.harness import mutation


def test_full_mutation_sweep(benchmark, record_table):
    outcomes = benchmark.pedantic(mutation.run_mutation, rounds=1,
                                  iterations=1)
    assert len(outcomes) > 50
    killed = sum(1 for o in outcomes if o.killed)
    # shape: guard/assign mutations dominate the kills; at least a third
    # of all mutants are caught by the pushbutton re-run
    assert killed / len(outcomes) > 0.3
    record_table("mutation", mutation.render_mutation(outcomes))


def test_single_benchmark_mutation(benchmark):
    """Per-kernel mutation cost (ssh: richest property suite)."""

    def run():
        return mutation.score_mutants(mutation.mutants_of("ssh"))

    outcomes = benchmark.pedantic(run, rounds=3, iterations=1)
    assert any(o.killed for o in outcomes)
