"""End-to-end benchmark of the symbolic caching layer.

Repeated ``verify_all`` runs (a fresh :class:`Verifier` per iteration,
mirroring incremental re-verification) on the two deepest kernels, with
the term caches on versus off.  Full mode asserts the ≥1.5× speedup the
caching layer is sold on; quick mode (``REPRO_BENCH_QUICK=1``, the CI
smoke job) only asserts the cached runs are not slower.  Timings and
speedups land in ``benchmarks/results/symbolic_caching.json`` and a
rendered table beside it.
"""

import json
import os
import time

from repro.prover import ProverOptions, Verifier
from repro.systems import BENCHMARKS
from repro.symbolic import cache as symcache

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
KERNELS = ("ssh2", "browser3")
ROUNDS = 3 if QUICK else 7
#: Quick mode runs on noisy shared CI runners: only insist the caches do
#: not make verification slower.  Full mode holds the headline claim.
REQUIRED_SPEEDUP = 1.0 if QUICK else 1.5


def _series(spec, term_cache: bool) -> list:
    """Seconds per ``verify_all`` round, coldest caches first."""
    symcache.clear_all()
    times = []
    for _ in range(ROUNDS):
        options = ProverOptions(term_cache=term_cache)
        start = time.perf_counter()
        report = Verifier(spec, options).verify_all()
        times.append(time.perf_counter() - start)
        assert report.all_proved
    return times


def _render(rows) -> str:
    lines = [
        "symbolic caching: verify_all seconds (best of "
        f"{ROUNDS} rounds)",
        f"{'kernel':<10} {'uncached':>10} {'cached':>10} {'speedup':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['kernel']:<10} {row['uncached_best']:>10.4f} "
            f"{row['cached_best']:>10.4f} {row['speedup']:>8.2f}x"
        )
    return "\n".join(lines)


def test_caching_speedup(results_dir, record_table):
    rows = []
    for name in KERNELS:
        spec = BENCHMARKS[name].load()
        uncached = _series(spec, term_cache=False)
        cached = _series(spec, term_cache=True)
        rows.append({
            "kernel": name,
            "rounds": ROUNDS,
            "uncached_seconds": uncached,
            "cached_seconds": cached,
            "uncached_best": min(uncached),
            "cached_best": min(cached),
            "speedup": min(uncached) / min(cached),
        })

    payload = {
        "benchmark": "symbolic_caching",
        "quick": QUICK,
        "required_speedup": REQUIRED_SPEEDUP,
        "kernels": rows,
    }
    (results_dir / "symbolic_caching.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record_table("symbolic_caching", _render(rows))

    best = max(row["speedup"] for row in rows)
    assert best >= REQUIRED_SPEEDUP, (
        f"caching speedup {best:.2f}x below the required "
        f"{REQUIRED_SPEEDUP}x (see symbolic_caching.json)"
    )
