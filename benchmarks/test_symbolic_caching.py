"""End-to-end benchmark of the symbolic caching and compiled-plan layers.

Repeated ``verify_all`` runs (a fresh :class:`Verifier` per iteration,
mirroring incremental re-verification) on the two deepest kernels, in
three configurations:

* **uncached** — term caches off, compiled plans off: every round
  re-simplifies, re-queries, and re-walks the handler ASTs;
* **baseline** — term caches on, compiled plans off: the memoized
  simplifier and solver query cache, the state of the repo before
  compiled plans landed;
* **compiled** — term caches on, compiled plans on: the first round
  compiles each handler path into closure form and records hot verdicts
  process-wide, so warm rounds execute plans instead of re-walking ASTs.

Full mode asserts the ≥1.5× cached-over-uncached speedup the caching
layer is sold on *and* the ≥3× compiled-over-baseline speedup of the
compiled-plan hot path; quick mode (``REPRO_BENCH_QUICK=1``, the CI
smoke job) only asserts neither layer makes verification slower.
Timings and speedups land in ``benchmarks/results/symbolic_caching.json``
and a rendered table beside it.
"""

import json
import os
import time

from repro.prover import ProverOptions, Verifier
from repro.symbolic import cache as symcache
from repro.symbolic import compile as symcompile
from repro.systems import BENCHMARKS

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
KERNELS = ("ssh2", "browser3")
ROUNDS = 3 if QUICK else 7
#: Quick mode runs on noisy shared CI runners: only insist the layers do
#: not make verification slower.  Full mode holds the headline claims.
REQUIRED_CACHE_SPEEDUP = 1.0 if QUICK else 1.5
REQUIRED_COMPILE_SPEEDUP = 1.0 if QUICK else 3.0

CONFIGS = (
    ("uncached", dict(term_cache=False, compile_plans=False)),
    ("baseline", dict(term_cache=True, compile_plans=False)),
    ("compiled", dict(term_cache=True, compile_plans=True)),
)


def _series(spec, **options) -> list:
    """Seconds per ``verify_all`` round, coldest caches first.

    Both process-wide layers are cleared up front — the term/query memo
    tables *and* the compiled-plan cache — so each configuration pays
    its own cold start and earns its own warm rounds.
    """
    symcache.clear_all()
    symcompile.clear_plans()
    times = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        report = Verifier(spec, ProverOptions(**options)).verify_all()
        times.append(time.perf_counter() - start)
        assert report.all_proved
    return times


def _render(rows) -> str:
    lines = [
        "symbolic caching + compiled plans: verify_all seconds "
        f"(best of {ROUNDS} rounds)",
        f"{'kernel':<10} {'uncached':>10} {'baseline':>10} "
        f"{'compiled':>10} {'cache':>8} {'compile':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['kernel']:<10} {row['uncached_best']:>10.4f} "
            f"{row['baseline_best']:>10.4f} {row['compiled_best']:>10.4f} "
            f"{row['cache_speedup']:>7.2f}x {row['compile_speedup']:>7.2f}x"
        )
    return "\n".join(lines)


def test_caching_speedup(results_dir, record_table):
    rows = []
    for name in KERNELS:
        spec = BENCHMARKS[name].load()
        row = {"kernel": name, "rounds": ROUNDS}
        for label, options in CONFIGS:
            series = _series(spec, **options)
            row[f"{label}_seconds"] = series
            row[f"{label}_best"] = min(series)
        row["cache_speedup"] = row["uncached_best"] / row["baseline_best"]
        row["compile_speedup"] = row["baseline_best"] / row["compiled_best"]
        rows.append(row)

    payload = {
        "benchmark": "symbolic_caching",
        "quick": QUICK,
        "required_cache_speedup": REQUIRED_CACHE_SPEEDUP,
        "required_compile_speedup": REQUIRED_COMPILE_SPEEDUP,
        "kernels": rows,
    }
    (results_dir / "symbolic_caching.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record_table("symbolic_caching", _render(rows))

    best_cache = max(row["cache_speedup"] for row in rows)
    assert best_cache >= REQUIRED_CACHE_SPEEDUP, (
        f"caching speedup {best_cache:.2f}x below the required "
        f"{REQUIRED_CACHE_SPEEDUP}x (see symbolic_caching.json)"
    )
    best_compile = max(row["compile_speedup"] for row in rows)
    assert best_compile >= REQUIRED_COMPILE_SPEEDUP, (
        f"compiled-plan speedup {best_compile:.2f}x below the required "
        f"{REQUIRED_COMPILE_SPEEDUP}x (see symbolic_caching.json)"
    )
