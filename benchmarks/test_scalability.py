"""Scalability of the prover in kernel size.

Not a paper figure, but the natural follow-up question to Figure 6: how
does pushbutton verification scale as kernels grow?  Synthetic kernels
with n request/response handler groups (each group: a guarded forward, a
state latch, and a gated response — the SSH idiom) are verified with a
representative property per group size.
"""

import pytest

from repro.lang import STR
from repro.lang.builder import (
    ProgramBuilder, assign, eq, ite, lit, name, send, spawn, tup,
)
from repro.props import TraceProperty, comp_pat, msg_pat, recv_pat, send_pat
from repro.props.spec import specify
from repro.prover import Verifier


def synthetic_kernel(groups: int):
    """A kernel with ``groups`` independent auth-style protocols."""
    b = ProgramBuilder(f"scale{groups}")
    b.component("Front", "front.py")
    b.component("Back", "back.py")
    b.message("Go", STR)  # pre-declare a shared message for realism
    init_cmds = [spawn("F", "Front"), spawn("K", "Back")]
    props = []
    for g in range(groups):
        b.message(f"Req{g}", STR)
        b.message(f"Ok{g}", STR)
        b.message(f"Use{g}", STR)
        b.message(f"Grant{g}", STR)
        init_cmds.append(assign(f"auth{g}", lit(("", False))))
        b.handler("Front", f"Req{g}", ["u"],
                  send(name("K"), f"Req{g}", name("u")))
        b.handler("Back", f"Ok{g}", ["u"],
                  assign(f"auth{g}", tup(name("u"), True)))
        b.handler("Front", f"Use{g}", ["u"],
                  ite(eq(tup(name("u"), True), name(f"auth{g}")),
                      send(name("K"), f"Grant{g}", name("u"))))
        props.append(TraceProperty(
            f"AuthFirst{g}", "Enables",
            recv_pat(comp_pat("Back"), msg_pat(f"Ok{g}", "?u")),
            send_pat(comp_pat("Back"), msg_pat(f"Grant{g}", "?u")),
        ))
    b.init(*init_cmds)
    return specify(b.build_validated(), *props)


@pytest.mark.parametrize("groups", [1, 2, 4, 8, 16])
def test_scaling_in_handler_count(benchmark, groups):
    spec = synthetic_kernel(groups)

    def run():
        return Verifier(spec).verify_all()

    report = benchmark(run)
    assert report.all_proved
    benchmark.extra_info["handlers"] = groups * 3
    benchmark.extra_info["properties"] = groups


def test_scaling_is_subquadratic_per_property(benchmark, record_table):
    """With the syntactic skip on, per-property cost should grow mildly
    with unrelated-handler count (most exchanges are skipped), keeping
    total cost roughly quadratic-at-worst in kernel size."""
    import time

    def sweep():
        out = []
        for groups in (2, 4, 8, 16):
            spec = synthetic_kernel(groups)
            start = time.perf_counter()
            report = Verifier(spec).verify_all()
            elapsed = time.perf_counter() - start
            assert report.all_proved
            out.append((groups, elapsed, elapsed / groups))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = ["prover scaling (synthetic auth kernels)",
             f"{'groups':>7s} {'total s':>9s} {'s/property':>11s}"]
    for groups, total, per in rows:
        table.append(f"{groups:7d} {total:9.4f} {per:11.5f}")
    # Doubling the kernel should not blow up per-property cost by more
    # than ~the size factor (i.e. total stays ~quadratic or better).
    first_per, last_per = rows[0][2], rows[-1][2]
    assert last_per < first_per * 16
    record_table("scalability", "\n".join(table))
