"""Section 6.3 regeneration benchmark: the time to reject every false
policy and every injected kernel bug (the developer feedback-loop cost)."""

from repro.harness import utility


def test_utility_scenarios(benchmark, record_table):
    outcomes = benchmark.pedantic(utility.run_utility, rounds=3,
                                  iterations=1)
    assert len(outcomes) == 5
    assert all(o.reproduced for o in outcomes)
    record_table("sec63_utility", utility.render_utility(outcomes))
