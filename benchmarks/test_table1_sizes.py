"""Table 1 regeneration benchmark: benchmark sizes (and the cost of the
size accounting itself, which includes parsing every kernel)."""

from repro.harness import table1


def test_table1(benchmark, record_table):
    rows = benchmark(table1.run_table1)
    assert len(rows) == 7
    for row in rows:
        assert 0 < row.kernel_loc < 100
        assert 0 < row.properties_loc < 50
        assert row.component_loc > 0
    record_table("table1", table1.render_table1(rows))
