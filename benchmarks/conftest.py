"""Shared benchmark plumbing: every benchmark writes its rendered
paper-versus-measured table under ``benchmarks/results/`` so the
regenerated figures are inspectable artifacts, not just timings."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_table(results_dir):
    """record_table(name, text): persist and echo a rendered table."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
