"""Section 6.4 regeneration benchmark: the optimization ablation.

Each configuration is its own pytest benchmark (full / no-skip / no-memo /
no-subproof-cache / none over the whole 41-property figure), and the
combined table with speedups is written to
``benchmarks/results/sec64_ablation.txt``.
"""

import os

import pytest

from repro.harness import ablation
from repro.prover import Verifier
from repro.systems import BENCHMARKS


def verify_everything(options):
    for module in BENCHMARKS.values():
        report = Verifier(module.load(), options).verify_all()
        assert report.all_proved


@pytest.mark.parametrize("config", sorted(ablation.CONFIGURATIONS))
def test_prover_configuration(benchmark, config):
    options = ablation.CONFIGURATIONS[config]
    benchmark.pedantic(verify_everything, args=(options,), rounds=3,
                       iterations=1)


def test_ablation_table(benchmark, record_table):
    rows = benchmark.pedantic(ablation.run_ablation, kwargs={"repeats": 2},
                              rounds=1, iterations=1)
    assert len(rows) == 7
    # The combined optimizations must beat the unoptimized prover overall
    # (per-benchmark noise tolerated at sub-millisecond scales).
    total_full = sum(r.seconds["full"] for r in rows)
    total_none = sum(r.seconds["none"] for r in rows)
    assert total_none > total_full
    record_table("sec64_ablation", ablation.render_ablation(rows))


def test_runtime_pipeline_table(benchmark, record_table):
    rows = benchmark.pedantic(
        ablation.run_runtime_ablation,
        kwargs={"jobs": 4, "repeats": 2}, rounds=1, iterations=1,
    )
    assert len(rows) == 7
    # Verdicts and checked derivation keys must be bitwise-identical
    # across cold, warm-store, and parallel runs on every benchmark.
    assert all(r.invariant for r in rows)
    # A warm proof store must beat the cold serial run overall.
    total_cold = sum(r.serial_cold for r in rows)
    total_warm = sum(r.warm_store for r in rows)
    assert total_warm < total_cold
    # Parallel verification only wins with real cores to fan out to;
    # single-CPU containers pay pure process overhead, so gate on the
    # scheduler's affinity mask.
    if len(os.sched_getaffinity(0)) > 1:
        total_parallel = sum(r.parallel for r in rows)
        assert total_parallel < total_cold
    record_table("runtime_pipeline",
                 ablation.render_runtime_ablation(rows))
