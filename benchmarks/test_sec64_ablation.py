"""Section 6.4 regeneration benchmark: the optimization ablation.

Each configuration is its own pytest benchmark (full / no-skip / no-memo /
no-subproof-cache / none over the whole 41-property figure), and the
combined table with speedups is written to
``benchmarks/results/sec64_ablation.txt``.
"""

import pytest

from repro.harness import ablation
from repro.prover import Verifier
from repro.systems import BENCHMARKS


def verify_everything(options):
    for module in BENCHMARKS.values():
        report = Verifier(module.load(), options).verify_all()
        assert report.all_proved


@pytest.mark.parametrize("config", sorted(ablation.CONFIGURATIONS))
def test_prover_configuration(benchmark, config):
    options = ablation.CONFIGURATIONS[config]
    benchmark.pedantic(verify_everything, args=(options,), rounds=3,
                       iterations=1)


def test_ablation_table(benchmark, record_table):
    rows = benchmark.pedantic(ablation.run_ablation, kwargs={"repeats": 2},
                              rounds=1, iterations=1)
    assert len(rows) == 7
    # The combined optimizations must beat the unoptimized prover overall
    # (per-benchmark noise tolerated at sub-millisecond scales).
    total_full = sum(r.seconds["full"] for r in rows)
    total_none = sum(r.seconds["none"] for r in rows)
    assert total_none > total_full
    record_table("sec64_ablation", ablation.render_ablation(rows))
