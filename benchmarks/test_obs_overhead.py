"""Overhead guard for the observability layer.

The obs subsystem is sold as *cheap when off*: with no sink installed,
every ``obs.incr``/``obs.span``/``obs.event`` call site is a module
global read plus a ``None`` check.  This benchmark holds that claim
end-to-end — repeated ``verify_all`` runs with no sink versus a fully
instrumented sink (trace + metrics + events) — and bounds the fully-on
cost too, since a tracing run that doubles verification time would never
get used.

Full mode bounds fully-on overhead at 1.5× the uninstrumented run;
quick mode (``REPRO_BENCH_QUICK=1``, the CI smoke job) runs fewer
rounds on noisier machines and relaxes the bound to 2×.  Timings land
in ``benchmarks/results/obs_overhead.json`` and a rendered table beside
it.
"""

import json
import os
import time

from repro import obs
from repro.prover import ProverOptions, Verifier
from repro.symbolic import cache as symcache
from repro.systems import BENCHMARKS

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
KERNEL = "ssh2"
ROUNDS = 3 if QUICK else 5
#: Fully-on observability (trace + metrics + events) may cost at most
#: this factor over the uninstrumented run; quick mode runs on noisy
#: shared CI runners and gets headroom.
MAX_OVERHEAD = 2.0 if QUICK else 1.5


def _series(instrumented: bool) -> list:
    """Seconds per ``verify_all`` round (fresh caches each round, so
    both series pay the same cold-start work)."""
    times = []
    for _ in range(ROUNDS):
        symcache.clear_all()
        verifier = Verifier(BENCHMARKS[KERNEL].load(), ProverOptions())
        if instrumented:
            sink = obs.Telemetry(trace=True, metrics=True, events=True)
            start = time.perf_counter()
            with obs.use(sink):
                report = verifier.verify_all()
            elapsed = time.perf_counter() - start
            assert sink.spans and sink.counters
        else:
            assert obs.active() is None
            start = time.perf_counter()
            report = verifier.verify_all()
            elapsed = time.perf_counter() - start
        times.append(elapsed)
        assert report.all_proved
    return times


def _render(row) -> str:
    return "\n".join([
        f"observability overhead: {KERNEL} verify_all seconds "
        f"(best of {ROUNDS} rounds)",
        f"{'mode':<14} {'best':>10} {'mean':>10}",
        f"{'off':<14} {row['off_best']:>10.4f} {row['off_mean']:>10.4f}",
        f"{'fully on':<14} {row['on_best']:>10.4f} "
        f"{row['on_mean']:>10.4f}",
        f"overhead {row['overhead']:.2f}x (bound {MAX_OVERHEAD:.1f}x)",
    ])


def test_observability_overhead_is_bounded(results_dir, record_table):
    """Fully-on observability stays within ``MAX_OVERHEAD`` of an
    uninstrumented run (min-of-rounds, the noise-robust comparison)."""
    off = _series(instrumented=False)
    on = _series(instrumented=True)
    row = {
        "kernel": KERNEL,
        "rounds": ROUNDS,
        "off_seconds": off,
        "on_seconds": on,
        "off_best": min(off),
        "off_mean": sum(off) / len(off),
        "on_best": min(on),
        "on_mean": sum(on) / len(on),
        "overhead": min(on) / min(off),
    }
    payload = {
        "benchmark": "obs_overhead",
        "quick": QUICK,
        "max_overhead": MAX_OVERHEAD,
        "result": row,
    }
    (results_dir / "obs_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record_table("obs_overhead", _render(row))
    assert row["overhead"] <= MAX_OVERHEAD, (
        f"fully-on observability costs {row['overhead']:.2f}x "
        f"(bound {MAX_OVERHEAD:.1f}x)"
    )
