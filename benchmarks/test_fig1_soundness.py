"""Figure 1 regeneration benchmark: the "sats" arrow as a randomized
oracle — the cost of fuzzing every kernel and checking every produced
trace against the abstraction and the proved properties."""

from repro.harness import soundness


def test_soundness_sweep(benchmark, record_table):
    verdicts = benchmark.pedantic(
        soundness.run_soundness,
        kwargs={"seeds": range(3), "events": 25},
        rounds=1, iterations=1,
    )
    assert all(v.sound for v in verdicts)
    assert sum(v.trace_length for v in verdicts) > 500
    record_table("fig1_soundness", soundness.render_soundness(verdicts))


def test_single_session_throughput(benchmark):
    """Interpreter + oracle cost for one 40-event browser session."""

    def run():
        session = soundness.fuzz_session("browser", seed=1, events=40)
        return soundness.check_session(session, "browser", 1)

    verdict = benchmark(run)
    assert verdict.sound
