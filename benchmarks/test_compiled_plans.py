"""CI smoke benchmark for compiled proof plans.

One kernel, two configurations: ``compile_plans=True`` versus the
``--no-compile`` interpreter path.  This is the differential the CI
bench-smoke job runs on every push:

* **semantics** — per-property statuses, checker approvals, derivation
  keys, and error text must be identical between the two paths (the
  compiled executor is a pure optimization);
* **regression guard** — best-of-rounds compiled time must not exceed
  the interpreted time by more than the noise allowance: a change that
  makes compilation a pessimization fails the job.

The measured timings land in ``benchmarks/results/compiled_plans.json``
(uploaded as a CI artifact) so regressions are diagnosable from the run
without reproducing locally.
"""

import json
import os
import time

from repro.prover import ProverOptions, Verifier
from repro.symbolic import cache as symcache
from repro.symbolic import compile as symcompile
from repro.systems import BENCHMARKS

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
KERNEL = "ssh2"
ROUNDS = 3 if QUICK else 5
#: Shared CI runners are noisy; the guard only trips when the compiled
#: path is *meaningfully* slower than interpreting, which would mean the
#: compile stage stopped paying for itself.
NOISE_ALLOWANCE = 1.25


def _signature(report):
    return [
        (r.property.name, r.status, r.checked, r.derivation_key(), r.error)
        for r in report.results
    ]


def _series(spec, compile_plans: bool):
    """(seconds per round, signature) — cold caches at the start."""
    symcache.clear_all()
    symcompile.clear_plans()
    times, signature = [], None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        report = Verifier(
            spec, ProverOptions(compile_plans=compile_plans)
        ).verify_all()
        times.append(time.perf_counter() - start)
        assert report.all_proved
        signature = _signature(report)
    return times, signature


def test_compiled_plans_smoke(results_dir, record_table):
    spec = BENCHMARKS[KERNEL].load()
    interpreted, interpreted_sig = _series(spec, compile_plans=False)
    compiled, compiled_sig = _series(spec, compile_plans=True)

    payload = {
        "benchmark": "compiled_plans",
        "kernel": KERNEL,
        "quick": QUICK,
        "rounds": ROUNDS,
        "noise_allowance": NOISE_ALLOWANCE,
        "interpreted_seconds": interpreted,
        "compiled_seconds": compiled,
        "interpreted_best": min(interpreted),
        "compiled_best": min(compiled),
        "speedup": min(interpreted) / min(compiled),
        "verdicts_identical": compiled_sig == interpreted_sig,
    }
    (results_dir / "compiled_plans.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    record_table("compiled_plans", (
        f"compiled plans smoke ({KERNEL}, best of {ROUNDS} rounds)\n"
        f"interpreted {min(interpreted):.4f}s  "
        f"compiled {min(compiled):.4f}s  "
        f"speedup {payload['speedup']:.2f}x"
    ))

    assert compiled_sig == interpreted_sig, (
        "compiled and interpreted runs disagree on verdicts or keys "
        "(see compiled_plans.json)"
    )
    assert min(compiled) <= min(interpreted) * NOISE_ALLOWANCE, (
        f"compiled path {min(compiled):.4f}s is slower than interpreted "
        f"{min(interpreted):.4f}s beyond the {NOISE_ALLOWANCE}x noise "
        "allowance (see compiled_plans.json)"
    )
