"""Figure 6 regeneration benchmark: the 41 properties, per benchmark and
as the full figure.

Timings here are the reproduction's analog of Figure 6's T(s) column; the
rendered table (written to ``benchmarks/results/figure6.txt``) places the
paper's numbers alongside ours and asserts the shape claims.
"""

import pytest

from repro.harness import figure6
from repro.prover import ProverOptions, Verifier
from repro.systems import BENCHMARKS


@pytest.mark.parametrize("bench_name", sorted(BENCHMARKS))
def test_verify_benchmark(benchmark, bench_name):
    """Per-benchmark pushbutton verification time (all properties,
    including proof checking — the full user-facing pipeline)."""
    spec = BENCHMARKS[bench_name].load()

    def run():
        return Verifier(spec).verify_all()

    report = benchmark(run)
    assert report.all_proved
    benchmark.extra_info["properties"] = len(report.results)


def test_full_figure6(benchmark, record_table):
    """The whole figure: all 41 properties across all seven kernels."""
    options = ProverOptions()

    def run():
        return figure6.run_figure6(options)

    rows = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(rows) == 41
    assert all(r.proved for r in rows)
    for line in figure6.shape_checks(rows):
        assert "FAIL" not in line, line
    record_table("figure6", figure6.render_figure6(rows))
