"""Section 6.5 regeneration: development-effort accounting by role."""

from repro.harness import effort


def test_effort_breakdown(benchmark, record_table):
    rows = benchmark(effort.run_effort)
    assert {r.role for r in rows} == set(effort.PAPER_EFFORT)
    ours_total = sum(r.our_loc for r in rows)
    paper_total = sum(r.paper_loc for r in rows)
    # same order of magnitude as the paper's once-and-for-all effort
    assert 0.3 < ours_total / paper_total < 3.0
    record_table("sec65_effort", effort.render_effort(rows))
