"""Online-monitor overhead: incremental checking vs. re-scanning.

The :class:`~repro.runtime.monitor.TraceMonitor` does O(1) amortized work
per action per property; the naive alternative re-runs the offline oracle
on the whole trace at every boundary (O(n²) overall).  This benchmark
shows the gap on a long SSH session and measures the monitored
interpreter's overhead over a bare one.
"""

import pytest

from repro.props import holds
from repro.runtime import (
    Interpreter, MonitoredInterpreter, TraceMonitor, Trace, World,
)
from repro.systems import ssh


def drive(interp_factory, events=120):
    spec = ssh.load()
    world = World(seed=9)
    ssh.register_components(world)
    driver = interp_factory(spec, world)
    state = driver.run_init()
    conn = state.comps[0]
    for i in range(events):
        if i % 3 == 0:
            world.stimulate(conn, "ReqAuth", "alice",
                            ssh.PASSWORD_DB["alice"])
        else:
            world.stimulate(conn, "ReqTerm", "alice")
        driver.run(state)
    return driver, state


def test_bare_interpreter(benchmark):
    def run():
        class Bare:
            def __init__(self, spec, world):
                self.inner = Interpreter(spec.info, world)

            def run_init(self):
                return self.inner.run_init()

            def run(self, state):
                return self.inner.run(state)

        return drive(Bare)

    _driver, state = benchmark(run)
    assert len(state.trace) > 200


def test_monitored_interpreter(benchmark):
    def run():
        return drive(MonitoredInterpreter)

    driver, state = benchmark(run)
    assert driver.monitor.ok


def test_rescan_at_every_boundary(benchmark):
    """The naive O(n²) alternative the monitor replaces."""
    spec = ssh.load()
    props = spec.trace_properties()

    def run():
        class Rescanning:
            def __init__(self, spec, world):
                self.inner = Interpreter(spec.info, world)

            def run_init(self):
                state = self.inner.run_init()
                self._rescan(state)
                return state

            def run(self, state):
                while self.inner.step(state):
                    self._rescan(state)

            def _rescan(self, state):
                for prop in props:
                    assert holds(prop.primitive, prop.a, prop.b,
                                 state.trace)

        return drive(Rescanning)

    benchmark.pedantic(run, rounds=3, iterations=1)
